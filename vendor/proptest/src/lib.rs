//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! miniature property-testing harness that is **API-compatible with the
//! subset of proptest this repository's tests use**: the [`Strategy`]
//! trait (with `prop_map` / `prop_perturb`), range, tuple and array
//! strategies, [`Just`], [`any`], `prop::collection::vec`,
//! `prop::option::of`, the weighted [`prop_oneof!`] macro, and the
//! [`proptest!`] test macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed instead), and a fixed deterministic seed sequence per test, so
//! failures reproduce exactly across runs.

use std::rc::Rc;

pub mod test_runner {
    /// The deterministic generator handed to strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case.
        pub fn seeded(seed: u64) -> Self {
            let mut rng = Self { state: seed };
            let _ = rng.next_u64();
            rng
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// The next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A usize in `[0, bound)`; `bound > 0`.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// An independent generator split off this one (for
        /// `prop_perturb`).
        pub fn fork(&mut self) -> Self {
            Self::seeded(self.next_u64())
        }
    }
}

use test_runner::TestRng;

/// Run configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of test values.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// simply draws a value from the test RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Transforms generated values with access to an RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O + Clone,
    {
        Perturb { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let v = self.inner.generate(rng);
        (self.f)(v, rng.fork())
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted union of strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Rc<Vec<(u32, BoxedStrategy<V>)>>,
    total: u32,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: Rc::clone(&self.arms),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self {
            arms: Rc::new(arms),
            total,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in self.arms.iter() {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                self.start().wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        core::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(core::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// A strategy for vectors of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy for `Option<S::Value>`, `Some` half the time.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u32() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `prop::option::of(element)`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, Union,
    };

    /// The `prop::` path used by `prop::collection::vec` and
    /// `prop::option::of`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Builds a (optionally weighted) union strategy.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` under a generated case (reports the failing seed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a generated case (reports the failing seed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0u32..4, 1..8)) {
///         prop_assert!(x < 10 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    // A fixed per-case seed keeps failures reproducible.
                    let seed = 0x5DEE_CE66_D0C3_3D25u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut rng = $crate::test_runner::TestRng::seeded(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let run = move || {
                        $body
                    };
                    // Attribute a panic to its case for reproduction.
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case} (seed {seed:#x}) of {} failed",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::seeded(3);
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(hits > 800, "hits {hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_in_range(
            x in 3u32..9,
            v in prop::collection::vec(0u32..4, 1..6),
            o in prop::option::of(0u32..2),
            b in any::<bool>(),
            t in (0u32..2, 10u32..12),
            a in [0u32..3, 5u32..8],
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert!(o.is_none() || o.unwrap() < 2);
            prop_assert!(b || !b);
            prop_assert!(t.0 < 2 && (10..12).contains(&t.1));
            prop_assert!(a[0] < 3 && (5..8).contains(&a[1]));
        }

        #[test]
        fn map_and_perturb_compose(
            y in (0u32..5).prop_map(|v| v * 2),
            z in Just(()).prop_perturb(|_, mut rng| rng.next_u32() % 7),
        ) {
            prop_assert!(y % 2 == 0 && y < 10);
            prop_assert!(z < 7);
        }
    }
}
