//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the slice of the criterion API its micro-benchmarks use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (including the
//! `name = …; config = …; targets = …` form).
//!
//! Instead of criterion's statistical analysis it runs a warm-up, sizes
//! the iteration count to the configured measurement time, and prints
//! mean ns/iter — enough to compare hot paths between commits.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Every `(name, mean ns/iter)` recorded by [`Criterion::bench_function`]
/// in this process, in run order. Real criterion persists measurements
/// under `target/criterion/`; this shim records them in memory so bench
/// mains can emit machine-readable summaries.
static MEASUREMENTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Drains the measurements recorded so far (name, mean ns/iter).
pub fn take_measurements() -> Vec<(String, f64)> {
    std::mem::take(&mut *MEASUREMENTS.lock().expect("measurement lock poisoned"))
}

/// How batched inputs are grouped; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration pass.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let total_iters = ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000)
            .max(self.sample_size as u64);
        let start = Instant::now();
        for _ in 0..total_iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut spent = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.warm_up + self.measurement;
        while Instant::now() < deadline || iters == 0 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        self.mean_ns = spent.as_nanos() as f64 / iters as f64;
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (used as a minimum iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            mean_ns: f64::NAN,
        };
        f(&mut b);
        if !b.mean_ns.is_nan() {
            MEASUREMENTS
                .lock()
                .expect("measurement lock poisoned")
                .push((name.to_string(), b.mean_ns));
        }
        if b.mean_ns.is_nan() {
            println!("{name:<40} (no measurement)");
        } else if b.mean_ns >= 1e6 {
            println!("{name:<40} {:>12.3} ms/iter", b.mean_ns / 1e6);
        } else if b.mean_ns >= 1e3 {
            println!("{name:<40} {:>12.3} µs/iter", b.mean_ns / 1e3);
        } else {
            println!("{name:<40} {:>12.1} ns/iter", b.mean_ns);
        }
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut x = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        let recorded = take_measurements();
        assert_eq!(recorded.len(), 2);
        assert_eq!(recorded[0].0, "smoke/add");
        assert!(recorded.iter().all(|(_, ns)| ns.is_finite() && *ns >= 0.0));
        assert!(take_measurements().is_empty(), "take drains the buffer");
    }
}
