//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.9` API it actually
//! uses: [`SmallRng`](rngs::SmallRng) seeded with [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `random`, `random_bool` and `random_range`.
//!
//! The generator is splitmix64 — statistically fine for synthetic-workload
//! generation, deterministic per seed, and dependency-free. It makes no
//! attempt to match the upstream value streams, only the API.

/// Low-level generator interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Integer types usable as [`Rng::random_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)`; `high > low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor value (for inclusive upper bounds).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                debug_assert!(span > 0, "empty random_range");
                // Multiply-shift rejection-free mapping; bias is negligible
                // for the workload-generation spans used here (< 2^32).
                let r = rng.next_u64() % span;
                low.wrapping_add(r as $t)
            }
            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Range argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.successor())
    }
}

/// The user-facing generator methods.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// A uniform value from `range`.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self { state: seed };
            // Warm up so small seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(1..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
