//! Storage-tuning advisor: how the cost weights steer the recommendation.
//!
//! The paper's cost model exposes three knobs (Section 3.3): "if storage
//! space is cheap cs can be set very low, if the triple table is rarely
//! updated cm can be reduced etc." This example sweeps those regimes on
//! one workload through a **single advisor session** — the statistics
//! catalog is weight-independent, so after the first regime every search
//! runs without touching the store again.
//!
//! Run with: `cargo run --release --example storage_advisor`

use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    let data = generate_barton(&BartonSpec::default().with_size(2_000, 20_000));
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(4, 5, Shape::Star));

    let regimes: [(&str, CostWeights); 4] = [
        ("balanced (paper defaults)", CostWeights::default()),
        (
            "storage is cheap (cs ≪)",
            CostWeights {
                cs: 0.01,
                ..CostWeights::default()
            },
        ),
        (
            "storage is precious (cs ≫)",
            CostWeights {
                cs: 100.0,
                ..CostWeights::default()
            },
        ),
        (
            "update-heavy feed (cm ≫, f = 3)",
            CostWeights {
                cm: 50.0,
                f: 3.0,
                ..CostWeights::default()
            },
        ),
    ];

    // One session for the whole sweep. Keep cm as configured: this sweep
    // explores raw weights.
    let mut advisor = Advisor::builder(&data.db)
        .calibrate_cm(false)
        .budget(std::time::Duration::from_secs(3))
        .build()?;

    println!(
        "{:<32} {:>6} {:>12} {:>12} {:>8}",
        "regime", "views", "est. bytes", "avg atoms", "rcr"
    );
    let mut collected_after_first = None;
    for (name, weights) in regimes {
        advisor.set_weights(weights);
        let rec = advisor.recommend(&workload)?;
        let cat = &rec.catalog;
        let model = CostModel::new(cat, weights);
        let b = model.breakdown(&rec.outcome.best_state);
        let total_atoms: usize = rec.views.iter().map(|v| v.atoms.len()).sum();
        let avg_atoms = total_atoms as f64 / rec.views.len().max(1) as f64;
        println!(
            "{:<32} {:>6} {:>12.0} {:>12.2} {:>8.3}",
            name,
            rec.views.len(),
            b.vso,
            avg_atoms,
            rec.rcr()
        );
        match collected_after_first {
            None => collected_after_first = Some(advisor.stats_collections()),
            Some(n) => assert_eq!(
                advisor.stats_collections(),
                n,
                "later regimes must reuse the session's statistics"
            ),
        }
    }
    println!(
        "\n(all {} atom counts collected once, reused across {} regimes)",
        collected_after_first.unwrap_or(0),
        regimes.len()
    );

    println!(
        "\nreading: cheap storage favors fewer, fatter views (less joining at query time); \
         expensive storage and heavy updates favor smaller, more factorized views."
    );
    Ok(())
}
