//! Storage-tuning advisor: how the cost weights steer the recommendation.
//!
//! The paper's cost model exposes three knobs (Section 3.3): "if storage
//! space is cheap cs can be set very low, if the triple table is rarely
//! updated cm can be reduced etc." This example sweeps those regimes on
//! one workload and reports how the recommended design changes.
//!
//! Run with: `cargo run --release --example storage_advisor`

use rdfviews::prelude::*;

fn main() {
    let data = generate_barton(&BartonSpec::default().with_size(2_000, 20_000));
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(4, 5, Shape::Star));

    let regimes: [(&str, CostWeights); 4] = [
        ("balanced (paper defaults)", CostWeights::default()),
        (
            "storage is cheap (cs ≪)",
            CostWeights {
                cs: 0.01,
                ..CostWeights::default()
            },
        ),
        (
            "storage is precious (cs ≫)",
            CostWeights {
                cs: 100.0,
                ..CostWeights::default()
            },
        ),
        (
            "update-heavy feed (cm ≫, f = 3)",
            CostWeights {
                cm: 50.0,
                f: 3.0,
                ..CostWeights::default()
            },
        ),
    ];

    println!(
        "{:<32} {:>6} {:>12} {:>12} {:>8}",
        "regime", "views", "est. bytes", "avg atoms", "rcr"
    );
    for (name, weights) in regimes {
        let rec = select_views(
            data.db.store(),
            data.db.dict(),
            Some((&data.schema, &data.vocab)),
            &workload,
            &SelectionOptions {
                weights,
                // Keep cm as configured: this sweep explores raw weights.
                calibrate_cm: false,
                search: SearchConfig {
                    time_budget: Some(std::time::Duration::from_secs(3)),
                    ..SearchConfig::default()
                },
                reasoning: ReasoningMode::Plain,
            },
        );
        let cat = &rec.catalog;
        let model = CostModel::new(cat, weights);
        let b = model.breakdown(&rec.outcome.best_state);
        let total_atoms: usize = rec.views.iter().map(|v| v.atoms.len()).sum();
        let avg_atoms = total_atoms as f64 / rec.views.len().max(1) as f64;
        println!(
            "{:<32} {:>6} {:>12.0} {:>12.2} {:>8.3}",
            name,
            rec.views.len(),
            b.vso,
            avg_atoms,
            rec.rcr()
        );
    }

    println!(
        "\nreading: cheap storage favors fewer, fatter views (less joining at query time); \
         expensive storage and heavy updates favor smaller, more factorized views."
    );
}
