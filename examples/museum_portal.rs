//! A cultural-heritage portal with RDFS reasoning: the recommended views
//! must contain the *implicit* triples too, or the portal would silently
//! lose answers (Section 4 of the paper).
//!
//! The example contrasts the three entailment strategies: saturation,
//! pre-reformulation and the paper's post-reformulation, and checks that
//! all three return complete answers.
//!
//! Run with: `cargo run --example museum_portal`

use rdfviews::prelude::*;

fn main() {
    // -- 1. Museum data with an RDFS. -------------------------------------
    let mut db = Dataset::new();
    let vocab = VocabIds::intern(db.dict_mut());
    let painting = db.dict_mut().intern_uri("museum:Painting");
    let picture = db.dict_mut().intern_uri("museum:Picture");
    let artwork = db.dict_mut().intern_uri("museum:Artwork");
    let exhibited_in = db.dict_mut().intern_uri("museum:exhibitedIn");
    let located_in = db.dict_mut().intern_uri("museum:locatedIn");

    // Painting ⊑ Picture ⊑ Artwork; exhibitedIn ⊑ locatedIn;
    // domain(locatedIn) = Artwork.
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubClassOf(painting, picture));
    schema.add(SchemaStatement::SubClassOf(picture, artwork));
    schema.add(SchemaStatement::SubPropertyOf(exhibited_in, located_in));
    schema.add(SchemaStatement::Domain(located_in, artwork));

    for i in 0..60 {
        let item = db.dict_mut().intern_uri(&format!("museum:item{i}"));
        let class = match i % 3 {
            0 => painting,
            1 => picture,
            _ => artwork,
        };
        db.store_mut().insert([item, vocab.rdf_type, class]);
        let site = db.dict_mut().intern_uri(&format!("museum:site{}", i % 5));
        let prop = if i % 2 == 0 { exhibited_in } else { located_in };
        db.store_mut().insert([item, prop, site]);
    }
    println!("explicit triples: {}", db.len());

    // -- 2. The portal's workload. ----------------------------------------
    // "Every picture and where it is located" — the answers must include
    // paintings (subclass) and exhibited items (subproperty).
    let q = parse_query(
        "q(X, W) :- t(X, rdf:type, <museum:Picture>), t(X, <museum:locatedIn>, W)",
        db.dict_mut(),
    )
    .expect("valid query");
    let workload = vec![q.query];

    // Ground truth: evaluate on a saturated copy.
    let saturated = rdfviews::schema::saturated_copy(db.store(), &schema, &vocab);
    println!(
        "saturated triples: {} (+{} implicit)",
        saturated.len(),
        saturated.len() - db.len()
    );
    let truth = evaluate(&saturated, &workload[0]);
    println!("complete answers: {}", truth.len());

    // -- 3. Compare the three entailment strategies. ----------------------
    for mode in [
        ReasoningMode::Saturation,
        ReasoningMode::PreReformulation,
        ReasoningMode::PostReformulation,
    ] {
        let rec = select_views(
            db.store(),
            db.dict(),
            Some((&schema, &vocab)),
            &workload,
            &SelectionOptions {
                reasoning: mode,
                calibrate_cm: true,
                ..Default::default()
            },
        );
        // Saturation materializes over the saturated store; the
        // reformulation modes stay on the original one.
        let mv = match mode {
            ReasoningMode::Saturation => {
                rdfviews::exec::materialize_recommendation(&saturated, &rec)
            }
            _ => rdfviews::exec::materialize_recommendation(db.store(), &rec),
        };
        let answers = answer_original_query(&rec, &mv, 0);
        println!(
            "{mode:?}: {} views, {} rows materialized, rcr {:.2}, answers {}",
            rec.views.len(),
            mv.total_rows(),
            rec.rcr(),
            answers.len()
        );
        assert_eq!(answers, truth, "{mode:?} must return the complete answers");
    }
    println!("\nall three strategies return the complete answers ✓");
}
