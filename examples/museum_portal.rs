//! A cultural-heritage portal with RDFS reasoning: the recommended views
//! must contain the *implicit* triples too, or the portal would silently
//! lose answers (Section 4 of the paper).
//!
//! The example contrasts the three entailment strategies: saturation,
//! pre-reformulation and the paper's post-reformulation — one advisor
//! session per mode — and checks that all three deployments return
//! complete answers. (Deployment picks the right materialization store
//! automatically: the session's cached saturated copy under saturation,
//! the original store under the reformulation modes.)
//!
//! Run with: `cargo run --example museum_portal`

use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    // -- 1. Museum data with an RDFS. -------------------------------------
    let mut db = Dataset::new();
    let vocab = VocabIds::intern(db.dict_mut());
    let painting = db.dict_mut().intern_uri("museum:Painting");
    let picture = db.dict_mut().intern_uri("museum:Picture");
    let artwork = db.dict_mut().intern_uri("museum:Artwork");
    let exhibited_in = db.dict_mut().intern_uri("museum:exhibitedIn");
    let located_in = db.dict_mut().intern_uri("museum:locatedIn");

    // Painting ⊑ Picture ⊑ Artwork; exhibitedIn ⊑ locatedIn;
    // domain(locatedIn) = Artwork.
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubClassOf(painting, picture));
    schema.add(SchemaStatement::SubClassOf(picture, artwork));
    schema.add(SchemaStatement::SubPropertyOf(exhibited_in, located_in));
    schema.add(SchemaStatement::Domain(located_in, artwork));

    for i in 0..60 {
        let item = db.dict_mut().intern_uri(&format!("museum:item{i}"));
        let class = match i % 3 {
            0 => painting,
            1 => picture,
            _ => artwork,
        };
        db.store_mut().insert([item, vocab.rdf_type, class]);
        let site = db.dict_mut().intern_uri(&format!("museum:site{}", i % 5));
        let prop = if i % 2 == 0 { exhibited_in } else { located_in };
        db.store_mut().insert([item, prop, site]);
    }
    println!("explicit triples: {}", db.len());

    // -- 2. The portal's workload. ----------------------------------------
    // "Every picture and where it is located" — the answers must include
    // paintings (subclass) and exhibited items (subproperty).
    let q = parse_query(
        "q(X, W) :- t(X, rdf:type, <museum:Picture>), t(X, <museum:locatedIn>, W)",
        db.dict_mut(),
    )
    .expect("valid query");
    let workload = vec![q.query];

    // Ground truth: evaluate on a saturated copy.
    let saturated = rdfviews::schema::saturated_copy(db.store(), &schema, &vocab);
    println!(
        "saturated triples: {} (+{} implicit)",
        saturated.len(),
        saturated.len() - db.len()
    );
    let truth = evaluate(&saturated, &workload[0]);
    println!("complete answers: {}", truth.len());

    // A misconfigured session fails fast instead of panicking mid-search.
    let err = Advisor::builder(&db)
        .reasoning(ReasoningMode::Saturation)
        .build()
        .unwrap_err();
    println!("(without a schema: {err})");

    // -- 3. Compare the three entailment strategies. ----------------------
    for mode in [
        ReasoningMode::Saturation,
        ReasoningMode::PreReformulation,
        ReasoningMode::PostReformulation,
    ] {
        let mut advisor = Advisor::builder(&db)
            .schema(&schema, &vocab)
            .reasoning(mode)
            .build()?;
        let rec = advisor.recommend(&workload)?;
        let view_count = rec.views.len();
        let rcr = rec.rcr();
        let mut deployment = advisor.deploy(rec)?;
        let answers = deployment.answer(0)?;
        println!(
            "{mode:?}: {} views, {} rows materialized, rcr {:.2}, answers {}",
            view_count,
            deployment.total_rows()?,
            rcr,
            answers.len()
        );
        assert_eq!(answers, truth, "{mode:?} must return the complete answers");
    }
    println!("\nall three strategies return the complete answers ✓");
    Ok(())
}
