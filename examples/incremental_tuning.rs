//! Incremental workload tuning: a session absorbs query-at-a-time
//! workload changes, and every ±1 delta warm-starts the search from the
//! previous best state instead of searching cold.
//!
//! Run with: `cargo run --release --example incremental_tuning`

use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    // A small catalog: works with painters, locations and types.
    let mut db = Dataset::new();
    for i in 0..60 {
        let w = format!("work{i}");
        db.insert_terms(
            Term::uri(w.as_str()),
            Term::uri("paintedBy"),
            Term::uri(format!("painter{}", i % 12)),
        );
        db.insert_terms(
            Term::uri(w.as_str()),
            Term::uri("exhibitedIn"),
            Term::uri(format!("museum{}", i % 5)),
        );
        db.insert_terms(
            Term::uri(w.as_str()),
            Term::uri("type"),
            Term::uri("painting"),
        );
    }

    let q1 = parse_query(
        "q1(W, P) :- t(W, <paintedBy>, P), t(W, <type>, <painting>)",
        db.dict_mut(),
    )?;
    let q2 = parse_query(
        "q2(V, Q) :- t(V, <paintedBy>, Q), t(V, <type>, <painting>)",
        db.dict_mut(),
    )?;
    let q3 = parse_query(
        "q3(W, M) :- t(W, <exhibitedIn>, M), t(W, <type>, <painting>)",
        db.dict_mut(),
    )?;

    let mut advisor = Advisor::builder(&db).build()?;

    // Queries arrive one at a time; each call re-recommends for the whole
    // session workload. From the second call on, the search warm-starts.
    let mut created_log = Vec::new();
    for (name, q) in [("q1", q1.query), ("q2", q2.query), ("q3", q3.query)] {
        let rec = advisor.recommend_incremental(WorkloadChange::Add(q))?;
        created_log.push((name, rec.outcome.stats.created, rec.outcome.best_cost));
        println!(
            "+{name}: {} views, best cost {:.1}, {} states created",
            rec.views.len(),
            rec.outcome.best_cost,
            rec.outcome.stats.created
        );
    }

    // A cold session over the same final workload pays the full search.
    let mut cold = Advisor::builder(&db).build()?;
    let cold_rec = cold.recommend(advisor.workload())?;
    println!(
        "cold re-run: best cost {:.1}, {} states created (warm run created {})",
        cold_rec.outcome.best_cost,
        cold_rec.outcome.stats.created,
        created_log.last().unwrap().1,
    );
    assert!(created_log.last().unwrap().2 <= cold_rec.outcome.best_cost + 1e-9);

    // Retiring a query also warm-starts, dropping the views only it used.
    let rec = advisor.recommend_incremental(WorkloadChange::Remove(1))?;
    println!(
        "-q2: {} views, best cost {:.1}, {} states created",
        rec.views.len(),
        rec.outcome.best_cost,
        rec.outcome.stats.created
    );
    Ok(())
}
