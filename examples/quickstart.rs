//! Quickstart: open an advisor session, recommend views for a small
//! painter database and answer the workload from the deployed views alone.
//!
//! Run with: `cargo run --example quickstart`

use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    // -- 1. Build a small RDF database (the paper's running example). ----
    let mut db = Dataset::new();
    let mut add = |s: &str, p: &str, o: &str| {
        db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
    };
    add("vanGogh", "hasPainted", "starryNight");
    add("vanGogh", "isParentOf", "vincentJr");
    add("vincentJr", "hasPainted", "sunflowerSketch");
    add("rembrandt", "hasPainted", "nightWatch");
    add("rembrandt", "isParentOf", "titus");
    add("titus", "hasPainted", "titusPortrait");
    for i in 0..40 {
        let painter = format!("painter{i}");
        db.insert_terms(
            Term::uri(painter.as_str()),
            Term::uri("hasPainted"),
            Term::uri(format!("work{i}")),
        );
    }

    // -- 2. The workload: q1 from the paper's Section 2. -----------------
    // "Painters that have painted Starry Night and having a child that is
    // also a painter, as well as the paintings of their children."
    let q1 = parse_query(
        "q1(X, Z) :- t(X, <hasPainted>, <starryNight>), t(X, <isParentOf>, Y), \
         t(Y, <hasPainted>, Z)",
        db.dict_mut(),
    )
    .expect("valid query");
    let workload = vec![q1.query];

    // -- 3. Open a session and select views (DFS-AVF-STV, the paper's
    //       best configuration, is the builder default). `.parallelism(2)`
    //       expands the search's state space on two explorer threads; the
    //       result is the same as a sequential run, just sooner. ---------
    let mut advisor = Advisor::builder(&db).parallelism(2).build()?;
    let rec = advisor.recommend(&workload)?;

    println!("== search ==");
    println!("initial state cost : {:.1}", rec.outcome.initial_cost);
    println!("best state cost    : {:.1}", rec.outcome.best_cost);
    println!("relative reduction : {:.1}%", rec.rcr() * 100.0);
    println!(
        "states created/dup/discarded: {}/{}/{}",
        rec.outcome.stats.created, rec.outcome.stats.duplicates, rec.outcome.stats.discarded
    );

    println!("\n== recommended views & rewritings ==");
    print!(
        "{}",
        rdfviews::core::display::state_to_string(&rec.outcome.best_state, db.dict())
    );

    // A second recommendation over the same workload reuses every cached
    // statistic — the session counter stays flat.
    let collected = advisor.stats_collections();
    advisor.recommend(&workload)?;
    assert_eq!(advisor.stats_collections(), collected);
    println!("\n(second recommend() reused all {collected} cached atom counts)");

    // -- 4. Deploy: materialize and answer the workload offline. ---------
    let mut deployment = advisor.deploy(rec)?;
    println!("\n== deployment ==");
    println!(
        "{} views, {} total rows",
        deployment.view_count(),
        deployment.total_rows()?
    );

    let answers = deployment.answer(0)?;
    println!("\n== q1 answers (from views only) ==");
    for t in answers.tuples() {
        let x = db.dict().term(t[0]);
        let z = db.dict().term(t[1]);
        println!("  X = {x}, Z = {z}");
    }

    // Sanity: identical to evaluating q1 directly on the triple table.
    let direct = evaluate(db.store(), &deployment.recommendation().workload[0]);
    assert_eq!(answers, direct);
    println!("\n(matches direct evaluation on the triple table)");
    Ok(())
}
