//! Quickstart: recommend views for a small painter database and answer the
//! workload from the views alone.
//!
//! Run with: `cargo run --example quickstart`

use rdfviews::prelude::*;

fn main() {
    // -- 1. Build a small RDF database (the paper's running example). ----
    let mut db = Dataset::new();
    let mut add = |s: &str, p: &str, o: &str| {
        db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
    };
    add("vanGogh", "hasPainted", "starryNight");
    add("vanGogh", "isParentOf", "vincentJr");
    add("vincentJr", "hasPainted", "sunflowerSketch");
    add("rembrandt", "hasPainted", "nightWatch");
    add("rembrandt", "isParentOf", "titus");
    add("titus", "hasPainted", "titusPortrait");
    for i in 0..40 {
        let painter = format!("painter{i}");
        db.insert_terms(
            Term::uri(painter.as_str()),
            Term::uri("hasPainted"),
            Term::uri(format!("work{i}")),
        );
    }

    // -- 2. The workload: q1 from the paper's Section 2. -----------------
    // "Painters that have painted Starry Night and having a child that is
    // also a painter, as well as the paintings of their children."
    let q1 = parse_query(
        "q1(X, Z) :- t(X, <hasPainted>, <starryNight>), t(X, <isParentOf>, Y), \
         t(Y, <hasPainted>, Z)",
        db.dict_mut(),
    )
    .expect("valid query");
    let workload = vec![q1.query];

    // -- 3. Select views (DFS-AVF-STV, the paper's best configuration). --
    let rec = select_views(
        db.store(),
        db.dict(),
        None,
        &workload,
        &SelectionOptions::recommended(),
    );

    println!("== search ==");
    println!("initial state cost : {:.1}", rec.outcome.initial_cost);
    println!("best state cost    : {:.1}", rec.outcome.best_cost);
    println!("relative reduction : {:.1}%", rec.rcr() * 100.0);
    println!(
        "states created/dup/discarded: {}/{}/{}",
        rec.outcome.stats.created, rec.outcome.stats.duplicates, rec.outcome.stats.discarded
    );

    println!("\n== recommended views & rewritings ==");
    print!(
        "{}",
        rdfviews::core::display::state_to_string(&rec.outcome.best_state, db.dict())
    );

    // -- 4. Materialize and answer the workload offline. -----------------
    let mv = materialize_recommendation(db.store(), &rec);
    println!("\n== materialization ==");
    println!("{} views, {} total rows", mv.len(), mv.total_rows());

    let answers = answer_original_query(&rec, &mv, 0);
    println!("\n== q1 answers (from views only) ==");
    for t in answers.tuples() {
        let x = db.dict().term(t[0]);
        let z = db.dict().term(t[1]);
        println!("  X = {x}, Z = {z}");
    }

    // Sanity: identical to evaluating q1 directly on the triple table.
    let direct = evaluate(db.store(), &rec.workload[0]);
    assert_eq!(answers, direct);
    println!("\n(matches direct evaluation on the triple table)");
}
