//! Ad-hoc querying: answering queries that were **not** in the tuned
//! workload from an already-deployed recommendation.
//!
//! The advisor tunes a museum portal for its registered workload; then two
//! queries arrive that the workload never mentioned. The deployment's
//! planner rewrites them over the deployed views (bucket/MiniCon cover
//! verified by unfolding equivalence):
//!
//! * one is **fully view-covered** — answered from the views alone, no
//!   base store needed (the paper's offline-client story extended to
//!   ad-hoc queries);
//! * one touches a predicate no view kept — the planner emits a **hybrid**
//!   plan mixing a view scan with a base-store scan.
//!
//! Run with: `cargo run --example adhoc_query`

use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    // -- 1. Museum data. ---------------------------------------------------
    let mut db = Dataset::new();
    let painted_by = db.dict_mut().intern_uri("museum:paintedBy");
    let exhibited_in = db.dict_mut().intern_uri("museum:exhibitedIn");
    let born_in = db.dict_mut().intern_uri("museum:bornIn");
    for i in 0..40 {
        let painting = db.dict_mut().intern_uri(&format!("museum:painting{i}"));
        let artist = db.dict_mut().intern_uri(&format!("museum:artist{}", i % 8));
        let site = db.dict_mut().intern_uri(&format!("museum:site{}", i % 5));
        db.store_mut().insert([painting, painted_by, artist]);
        db.store_mut().insert([painting, exhibited_in, site]);
    }
    for a in 0..8 {
        let artist = db.dict_mut().intern_uri(&format!("museum:artist{a}"));
        let city = db.dict_mut().intern_uri(&format!("museum:city{}", a % 3));
        db.store_mut().insert([artist, born_in, city]);
    }
    println!("triples: {}", db.len());

    // -- 2. Tune for the portal's registered workload. ---------------------
    let workload = vec![
        parse_query("q1(P, A) :- t(P, <museum:paintedBy>, A)", db.dict_mut())
            .unwrap()
            .query,
        parse_query("q2(P, M) :- t(P, <museum:exhibitedIn>, M)", db.dict_mut())
            .unwrap()
            .query,
        parse_query(
            "q3(A, M) :- t(P, <museum:paintedBy>, A), t(P, <museum:exhibitedIn>, M)",
            db.dict_mut(),
        )
        .unwrap()
        .query,
    ];

    // The ad-hoc queries arrive *after* tuning — neither is in `workload`.
    let covered = parse_query(
        "works(P, M) :- t(P, <museum:paintedBy>, <museum:artist3>), \
         t(P, <museum:exhibitedIn>, M)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let hybrid = parse_query(
        "origin(P, C) :- t(P, <museum:paintedBy>, A), t(A, <museum:bornIn>, C)",
        db.dict_mut(),
    )
    .unwrap()
    .query;

    let mut advisor = Advisor::builder(&db).build()?;
    let rec = advisor.recommend(&workload)?;
    println!(
        "tuned: {} views for {} workload queries (rcr {:.2})",
        rec.views.len(),
        workload.len(),
        rec.rcr()
    );
    let mut deployment = advisor.deploy(rec)?;

    // -- 3. Ad-hoc query #1: fully view-covered. ---------------------------
    let plan = deployment.plan(&covered)?;
    println!("\nad-hoc #1 — works of artist3 and where they hang:");
    print!("{}", plan.describe(db.dict()));
    assert!(
        plan.is_views_only(),
        "the deployed views cover every atom of this query"
    );
    let answers = deployment.answer_query(&plan)?;
    println!("answers: {}", answers.len());
    assert_eq!(answers, evaluate(db.store(), &covered));

    // -- 4. Ad-hoc query #2: hybrid (bornIn was never in any view). --------
    let plan = deployment.plan(&hybrid)?;
    println!("\nad-hoc #2 — paintings and their artist's birth city:");
    print!("{}", plan.describe(db.dict()));
    assert!(!plan.is_views_only() && plan.residual_atoms() > 0);
    assert!(
        !plan.views_used().is_empty(),
        "the paintedBy atom still scans a view"
    );
    let answers = deployment.answer_query(&plan)?;
    println!("answers: {}", answers.len());
    assert_eq!(answers, evaluate(db.store(), &hybrid));

    // Under the strict views-only policy the same query is a typed error,
    // never a wrong (or silently empty) result.
    let err = deployment
        .plan_with(&hybrid, AnswerPolicy::ViewsOnly)
        .unwrap_err();
    println!("\nviews-only policy on ad-hoc #2: {err}");
    assert!(matches!(err, SelectionError::NoViewsOnlyPlan { .. }));

    println!("\nboth ad-hoc queries answered correctly from the deployment ✓");
    Ok(())
}
