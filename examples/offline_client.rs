//! Three-tier / offline deployment (the paper's Section 1 motivation):
//! the client receives only the deployed views and answers its whole
//! workload without ever connecting to the database server.
//!
//! Uses a Barton-like dataset and a satisfiable workload, then measures
//! view footprint and per-query latency of views vs the triple table
//! (the flavor of the paper's Figure 8). Finally ships the deployment to
//! the client as a **snapshot bundle** on disk and answers the workload
//! again from the reopened copy — the offline story made literal: the
//! client machine gets a directory, not a database connection.
//!
//! Run with: `cargo run --release --example offline_client`

use std::time::Instant;

use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    // -- 1. The server side: data + workload. ----------------------------
    let data = generate_barton(&BartonSpec::default().with_size(3_000, 30_000));
    println!(
        "dataset: {} triples, schema: {} statements",
        data.db.len(),
        data.schema.len()
    );

    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(5, 4, Shape::Mixed));
    for (i, q) in workload.iter().enumerate() {
        println!(
            "q{i}: {}",
            rdfviews::query::display::query_to_string(&format!("q{i}"), q, data.db.dict())
        );
    }

    // -- 2. The advisor session: select and deploy the views. ------------
    let started = Instant::now();
    let mut advisor = Advisor::builder(&data.db)
        .schema(&data.schema, &data.vocab)
        .reasoning(ReasoningMode::PostReformulation)
        .budget(std::time::Duration::from_secs(5))
        .build()?;
    let rec = advisor.recommend(&workload)?;
    println!(
        "\nsearch: {:.2}s, rcr {:.3}, {} views recommended",
        started.elapsed().as_secs_f64(),
        rec.rcr(),
        rec.views.len()
    );

    let started = Instant::now();
    let mut client = advisor.deploy(rec)?;
    println!(
        "deployed {} views / {} rows in {:.2}s — this is ALL the client needs",
        client.view_count(),
        client.total_rows()?,
        started.elapsed().as_secs_f64()
    );
    let view_cells = client.total_cells()?;
    let base_cells = data.db.len() * 3;
    println!(
        "client footprint: {view_cells} cells vs {base_cells} cells in the full triple table \
         ({:.1}%)",
        100.0 * view_cells as f64 / base_cells as f64
    );

    // -- 3. The client side: answer everything from the views. -----------
    // Ground truth comes from the saturated database (complete answers).
    let saturated = rdfviews::schema::saturated_copy(data.db.store(), &data.schema, &data.vocab);
    println!("\nper-query latency (views vs saturated triple table):");
    for i in 0..workload.len() {
        let t0 = Instant::now();
        let offline = client.answer(i)?;
        let t_views = t0.elapsed();
        let t0 = Instant::now();
        let direct = evaluate(&saturated, &client.recommendation().workload[i]);
        let t_direct = t0.elapsed();
        assert_eq!(offline, direct, "offline answers must be complete");
        println!(
            "  q{i}: {} answers | views {:>8.1?} | triple table {:>8.1?}",
            offline.len(),
            t_views,
            t_direct
        );
    }
    println!("\nall workload queries answered offline, completely ✓");

    // -- 4. Ship it: persist the deployment, reopen it "on the client". --
    let dir = std::env::temp_dir().join(format!("rdfviews-offline-client-{}", std::process::id()));
    let started = Instant::now();
    let hash = client.persist(&dir, data.db.dict())?;
    let bundle_bytes = std::fs::metadata(dir.join(rdfviews::exec::SNAPSHOT_FILE))
        .map(|m| m.len())
        .unwrap_or(0);
    println!(
        "\npersisted the deployment: {bundle_bytes} bytes in {:.2}s, content hash {hash:032x}",
        started.elapsed().as_secs_f64()
    );

    let started = Instant::now();
    let (mut shipped, shipped_dict) = Deployment::open(&dir)?;
    println!(
        "reopened it in {:.2}s — every byte checksummed on the way in",
        started.elapsed().as_secs_f64()
    );
    assert_eq!(shipped.content_hash(&shipped_dict)?, hash);
    for i in 0..workload.len() {
        assert_eq!(
            shipped.answer(i)?,
            client.answer(i)?,
            "the shipped deployment must answer exactly like the live one"
        );
    }
    println!("the round-tripped deployment answers the whole workload identically ✓");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
