//! Keeping recommended views fresh under an update feed.
//!
//! The paper's cost model charges every view `f^len(v)` maintenance cost
//! per update (Section 3.3). This example closes the loop: it selects
//! views, deploys them, streams insertions *and deletions* into the
//! deployment, which applies incremental deltas — and shows that the
//! deployed views keep answering the workload exactly.
//!
//! Run with: `cargo run --release --example update_feed`

use rdfviews::engine::evaluate;
use rdfviews::model::Triple;
use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    // -- 1. Base data + workload + view selection. ------------------------
    let mut db = Dataset::new();
    let spec = rdfviews::workload::WorkloadSpec::new(3, 4, Shape::Chain, Commonality::High);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    rdfviews::workload::generate_matching_data(&spec, &mut dict, &mut store, 3_000);
    let mut db = Dataset::from_parts(dict, store);

    let mut advisor = Advisor::builder(&db).build()?;
    let rec = advisor.recommend(&workload)?;
    println!("selected {} views (rcr {:.3})", rec.views.len(), rec.rcr());

    // -- 2. Deploy: the views materialize as maintainable instances. ------
    let mut deployment = advisor.deploy(rec);
    let initial_rows = deployment.total_rows();
    println!(
        "deployed {initial_rows} rows across {} views",
        deployment.view_count()
    );

    // -- 3. Stream insertions and maintain incrementally. -----------------
    let feed: Vec<Triple> = {
        let mut feed_store = rdfviews::model::TripleStore::new();
        let mut feed_spec = spec.clone();
        feed_spec.seed = 0xfeed;
        let mut dict = db.dict().clone();
        rdfviews::workload::generate_matching_data(&feed_spec, &mut dict, &mut feed_store, 400);
        *db.dict_mut() = dict;
        feed_store
            .triples()
            .iter()
            .copied()
            .filter(|t| !deployment.store().contains(*t))
            .collect()
    };
    println!("applying {} insertions …", feed.len());
    let stats = deployment.insert_batch(&feed);
    println!(
        "incremental maintenance added {} view rows ({} delta tuples computed)",
        stats.added, stats.delta_tuples
    );

    // -- 4. Retract part of the feed again (delete-and-rederive). ---------
    let retractions: Vec<Triple> = feed.iter().copied().step_by(3).collect();
    let removed_rows = deployment.delete_batch(&retractions).removed;
    println!("retracted every third insertion — {removed_rows} view rows removed");

    // -- 5. The deployment still answers the workload exactly. ------------
    for qi in 0..workload.len() {
        let from_views = deployment.answer(qi)?;
        let direct = evaluate(
            deployment.store(),
            &deployment.recommendation().workload[qi],
        );
        assert_eq!(from_views, direct, "query {qi} diverged after maintenance");
        println!(
            "q{qi}: {} answers ✓ (views ≡ base after updates)",
            direct.len()
        );
    }
    println!("\nall views stayed consistent through the update feed ✓");
    Ok(())
}
