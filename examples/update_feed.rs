//! Keeping recommended views fresh under an update feed.
//!
//! The paper's cost model charges every view `f^len(v)` maintenance cost
//! per update (Section 3.3). This example closes the loop: it selects
//! views, materializes them as *maintainable* views, streams insertions
//! into the database, applies incremental deltas — and shows that the
//! maintained views keep answering the workload exactly.
//!
//! Run with: `cargo run --release --example update_feed`

use rdfviews::engine::maintain::MaintainedView;
use rdfviews::engine::{evaluate, evaluate_over_views, ViewAtom};
use rdfviews::model::Triple;
use rdfviews::prelude::*;

fn main() {
    // -- 1. Base data + workload + view selection. ------------------------
    let mut db = Dataset::new();
    let spec = rdfviews::workload::WorkloadSpec::new(3, 4, Shape::Chain, Commonality::High);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    rdfviews::workload::generate_matching_data(&spec, &mut dict, &mut store, 3_000);
    let mut db = Dataset::from_parts(dict, store);

    let rec = select_views(
        db.store(),
        db.dict(),
        None,
        &workload,
        &SelectionOptions::recommended(),
    );
    println!("selected {} views (rcr {:.3})", rec.views.len(), rec.rcr());

    // -- 2. Materialize as maintainable views. ----------------------------
    let mut maintained: Vec<(rdfviews::core::ViewId, MaintainedView)> = rec
        .views
        .iter()
        .map(|v| (v.id, MaintainedView::new(db.store(), v.as_query())))
        .collect();
    let initial_rows: usize = maintained.iter().map(|(_, v)| v.len()).sum();
    println!(
        "materialized {initial_rows} rows across {} views",
        maintained.len()
    );

    // -- 3. Stream updates and maintain incrementally. --------------------
    let feed: Vec<Triple> = {
        let mut feed_store = rdf_model::TripleStore::new();
        let mut feed_spec = spec.clone();
        feed_spec.seed = 0xfeed;
        let mut dict = db.dict().clone();
        rdfviews::workload::generate_matching_data(&feed_spec, &mut dict, &mut feed_store, 400);
        *db.dict_mut() = dict;
        feed_store
            .triples()
            .iter()
            .copied()
            .filter(|t| !db.store().contains(*t))
            .collect()
    };
    println!("applying {} insertions …", feed.len());
    let mut delta_total = 0usize;
    for &t in &feed {
        db.store_mut().insert(t);
        for (_, view) in &mut maintained {
            delta_total += view.apply_insert(db.store(), t).added;
        }
    }
    println!("incremental maintenance added {delta_total} view rows");

    // -- 4. The maintained views still answer the workload exactly. -------
    let tables: Vec<(rdfviews::core::ViewId, rdfviews::engine::ViewTable)> = maintained
        .iter()
        .map(|(id, v)| (*id, v.to_table()))
        .collect();
    for (qi, _q) in workload.iter().enumerate() {
        let r = &rec.outcome.best_state.rewritings()[qi];
        let atoms: Vec<ViewAtom<'_>> = r
            .atoms
            .iter()
            .map(|a| ViewAtom {
                table: &tables.iter().find(|(id, _)| *id == a.view).unwrap().1,
                args: a.args.clone(),
            })
            .collect();
        let from_views = evaluate_over_views(&atoms, &r.head);
        let direct = evaluate(db.store(), &rec.workload[qi]);
        assert_eq!(from_views, direct, "query {qi} diverged after maintenance");
        println!(
            "q{qi}: {} answers ✓ (views ≡ base after updates)",
            direct.len()
        );
    }
    println!("\nall views stayed consistent through the update feed ✓");
}
