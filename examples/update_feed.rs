//! Keeping recommended views fresh under an update feed — set-at-a-time.
//!
//! The paper's cost model charges every view `f^len(v)` maintenance cost
//! per update (Section 3.3). This example closes the loop: it selects
//! views, deploys them, and streams insertions *and deletions* into the
//! deployment as **batches** — each batch runs one saturation fixpoint and
//! one delta-set join per view (Δv = ⋃ᵢ π_head(a₁ ⋈ … ⋈ Δaᵢ ⋈ … ⋈ aₙ))
//! instead of one pass per triple. A per-triple control deployment absorbs
//! the same feed one triple at a time, so the run prints the measured
//! delta-tuple and pass savings of batching.
//!
//! Run with: `cargo run --release --example update_feed`

use rdfviews::engine::evaluate;
use rdfviews::model::Triple;
use rdfviews::prelude::*;

fn main() -> Result<(), SelectionError> {
    // -- 1. Base data + workload + view selection. ------------------------
    let mut db = Dataset::new();
    let spec = rdfviews::workload::WorkloadSpec::new(3, 4, Shape::Chain, Commonality::High);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    rdfviews::workload::generate_matching_data(&spec, &mut dict, &mut store, 3_000);
    let mut db = Dataset::from_parts(dict, store);

    let mut advisor = Advisor::builder(&db).build()?;
    let rec = advisor.recommend(&workload)?;
    println!("selected {} views (rcr {:.3})", rec.views.len(), rec.rcr());

    // -- 2. Deploy twice: one batched, one per-triple control. ------------
    let mut deployment = advisor.deploy(rec)?;
    let mut per_triple = deployment.clone();
    let initial_rows = deployment.total_rows()?;
    println!(
        "deployed {initial_rows} rows across {} views",
        deployment.view_count()
    );

    // -- 3. Stream insertions as one batch vs one at a time. --------------
    let feed: Vec<Triple> = {
        let mut feed_store = rdfviews::model::TripleStore::new();
        let mut feed_spec = spec.clone();
        feed_spec.seed = 0xfeed;
        let mut dict = db.dict().clone();
        rdfviews::workload::generate_matching_data(&feed_spec, &mut dict, &mut feed_store, 400);
        *db.dict_mut() = dict;
        feed_store
            .triples()
            .iter()
            .copied()
            .filter(|t| !deployment.store().contains(*t))
            .collect()
    };
    println!("\napplying {} insertions …", feed.len());
    let batched = deployment.insert_batch(&feed);
    let mut single = MaintenanceStats::default();
    for &t in &feed {
        single.merge(per_triple.insert(t));
    }
    println!(
        "  batched   : {} delta tuples, {} rows added, {} maintenance pass(es)",
        batched.delta_tuples, batched.added, batched.batches
    );
    println!(
        "  per-triple: {} delta tuples, {} rows added, {} maintenance passes",
        single.delta_tuples, single.added, single.batches
    );
    let savings = 100.0 * (1.0 - batched.delta_tuples as f64 / single.delta_tuples.max(1) as f64);
    println!(
        "  → the delta-set join saved {savings:.1}% of the delta tuples and \
         {} of {} passes",
        single.batches - batched.batches,
        single.batches
    );
    assert!(batched.delta_tuples <= single.delta_tuples);
    assert_eq!(batched.added, single.added);

    // -- 4. Retract part of the feed again (batched delete-and-rederive),
    //       serving reads from a pinned snapshot throughout. ---------------
    // Pin the post-insertion generation: a front end keeps answering from
    // it — same answers, wait-free — while the maintenance batch below
    // builds and publishes the next generation.
    let pinned = deployment.snapshot();
    let pinned_answers = pinned.answer(0)?;
    let retractions: Vec<Triple> = feed.iter().copied().step_by(3).collect();
    let bdel = deployment.delete_batch(&retractions);
    let live = deployment.snapshot();
    println!(
        "\nsnapshot reads across the maintenance batch: pinned generation v{} \
         still serves {} answers; live generation v{} serves {}",
        pinned.version(),
        pinned.answer(0)?.len(),
        live.version(),
        live.answer(0)?.len(),
    );
    assert_eq!(
        pinned.answer(0)?,
        pinned_answers,
        "pinned snapshot answers changed under a concurrent delete batch"
    );
    assert!(pinned.version() < live.version());
    let mut sdel = MaintenanceStats::default();
    for &t in &retractions {
        sdel.merge(per_triple.delete(t));
    }
    println!(
        "\nretracted every third insertion — batched: {} candidates re-derived in \
         {} pass(es); per-triple: {} candidates in {} passes",
        bdel.delta_tuples, bdel.batches, sdel.delta_tuples, sdel.batches
    );
    assert!(bdel.delta_tuples <= sdel.delta_tuples);
    assert_eq!(bdel.removed, sdel.removed);

    // -- 5. Both deployments still answer the workload exactly. -----------
    for qi in 0..workload.len() {
        let from_views = deployment.answer(qi)?;
        let direct = evaluate(
            deployment.store(),
            &deployment.recommendation().workload[qi],
        );
        assert_eq!(from_views, direct, "query {qi} diverged after maintenance");
        assert_eq!(
            from_views,
            per_triple.answer(qi)?,
            "batched and per-triple deployments diverged on query {qi}"
        );
        println!(
            "q{qi}: {} answers ✓ (views ≡ base after updates)",
            direct.len()
        );
    }
    println!("\nall views stayed consistent through the batched update feed ✓");
    Ok(())
}
