//! Property test for Theorem 4.2: for any database D, schema S and query q,
//! `evaluate(q, saturate(D, S)) = evaluate(Reformulate(q, S), D)`.
//!
//! Saturation and reformulation are implemented completely independently
//! (forward chaining over triples vs backward rule application over
//! queries), so agreement over randomized inputs is strong evidence that
//! both are correct.

use proptest::prelude::*;

use rdfviews::engine::{evaluate, evaluate_union};
use rdfviews::model::{Dataset, Id, Triple};
use rdfviews::query::{Atom, ConjunctiveQuery, QTerm, Var};
use rdfviews::reform::{reformulate, theorem_4_1_bound};
use rdfviews::schema::{saturated_copy, Schema, SchemaStatement, VocabIds};

/// Fixed vocabulary: 5 classes, 5 properties, 8 resources.
struct Vocab {
    vocab: VocabIds,
    classes: Vec<Id>,
    properties: Vec<Id>,
    resources: Vec<Id>,
}

fn build_vocab(db: &mut Dataset) -> Vocab {
    let vocab = VocabIds::intern(db.dict_mut());
    Vocab {
        vocab,
        classes: (0..5)
            .map(|i| db.dict_mut().intern_uri(&format!("c{i}")))
            .collect(),
        properties: (0..5)
            .map(|i| db.dict_mut().intern_uri(&format!("p{i}")))
            .collect(),
        resources: (0..8)
            .map(|i| db.dict_mut().intern_uri(&format!("r{i}")))
            .collect(),
    }
}

/// A schema statement described by indices into the fixed vocabulary.
#[derive(Debug, Clone)]
enum StmtSpec {
    SubClass(usize, usize),
    SubProp(usize, usize),
    Domain(usize, usize),
    Range(usize, usize),
}

fn stmt_strategy() -> impl Strategy<Value = StmtSpec> {
    prop_oneof![
        (0..5usize, 0..5usize).prop_map(|(a, b)| StmtSpec::SubClass(a, b)),
        (0..5usize, 0..5usize).prop_map(|(a, b)| StmtSpec::SubProp(a, b)),
        (0..5usize, 0..5usize).prop_map(|(p, c)| StmtSpec::Domain(p, c)),
        (0..5usize, 0..5usize).prop_map(|(p, c)| StmtSpec::Range(p, c)),
    ]
}

/// A data triple: either a type assertion or a property assertion.
#[derive(Debug, Clone)]
enum TripleSpec {
    Type(usize, usize),
    Prop(usize, usize, usize),
}

fn triple_strategy() -> impl Strategy<Value = TripleSpec> {
    prop_oneof![
        (0..8usize, 0..5usize).prop_map(|(r, c)| TripleSpec::Type(r, c)),
        (0..8usize, 0..5usize, 0..8usize).prop_map(|(s, p, o)| TripleSpec::Prop(s, p, o)),
    ]
}

/// A query atom over two query variables (v0, v1) or vocabulary constants.
#[derive(Debug, Clone)]
enum AtomSpec {
    /// t(?vs, rdf:type, class)
    TypeConst(u8, usize),
    /// t(?vs, rdf:type, ?vo) — exercises rule 5
    TypeVar(u8, u8),
    /// t(?vs, prop, ?vo)
    PropVarVar(u8, usize, u8),
    /// t(?vs, prop, resource)
    PropVarConst(u8, usize, usize),
    /// t(?vs, ?vp, ?vo) — exercises rule 6
    AllVar(u8, u8, u8),
}

fn atom_strategy() -> impl Strategy<Value = AtomSpec> {
    prop_oneof![
        (0..3u8, 0..5usize).prop_map(|(v, c)| AtomSpec::TypeConst(v, c)),
        (0..3u8, 0..3u8).prop_map(|(v, o)| AtomSpec::TypeVar(v, o)),
        (0..3u8, 0..5usize, 0..3u8).prop_map(|(s, p, o)| AtomSpec::PropVarVar(s, p, o)),
        (0..3u8, 0..5usize, 0..8usize).prop_map(|(s, p, o)| AtomSpec::PropVarConst(s, p, o)),
        (0..3u8, 1..3u8, 0..3u8).prop_map(|(s, p, o)| AtomSpec::AllVar(s, p, o)),
    ]
}

fn build_atom(spec: &AtomSpec, v: &Vocab) -> Atom {
    // Variable indexes: 0..3 are data variables, 3.. property variables
    // (kept distinct so property positions stay well-formed joins).
    match spec {
        AtomSpec::TypeConst(s, c) => Atom::new(Var(*s as u32), v.vocab.rdf_type, v.classes[*c]),
        AtomSpec::TypeVar(s, o) => Atom::new(Var(*s as u32), v.vocab.rdf_type, Var(*o as u32)),
        AtomSpec::PropVarVar(s, p, o) => {
            Atom::new(Var(*s as u32), v.properties[*p], Var(*o as u32))
        }
        AtomSpec::PropVarConst(s, p, o) => {
            Atom::new(Var(*s as u32), v.properties[*p], v.resources[*o])
        }
        AtomSpec::AllVar(s, p, o) => Atom::new(Var(*s as u32), Var(3 + *p as u32), Var(*o as u32)),
    }
}

fn build_query(atoms: &[AtomSpec], v: &Vocab) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = atoms.iter().map(|a| build_atom(a, v)).collect();
    // Head: all variables (maximally distinguishing — the strongest
    // equality check).
    let mut head: Vec<QTerm> = Vec::new();
    for a in &atoms {
        for var in a.vars() {
            if !head.contains(&QTerm::Var(var)) {
                head.push(QTerm::Var(var));
            }
        }
    }
    ConjunctiveQuery::new(head, atoms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn reformulation_equals_saturation(
        stmts in prop::collection::vec(stmt_strategy(), 0..8),
        triples in prop::collection::vec(triple_strategy(), 1..40),
        atoms in prop::collection::vec(atom_strategy(), 1..3),
    ) {
        let mut db = Dataset::new();
        let v = build_vocab(&mut db);
        let mut schema = Schema::new();
        for s in &stmts {
            let stmt = match *s {
                StmtSpec::SubClass(a, b) if a != b =>
                    SchemaStatement::SubClassOf(v.classes[a], v.classes[b]),
                StmtSpec::SubClass(..) => continue,
                StmtSpec::SubProp(a, b) if a != b =>
                    SchemaStatement::SubPropertyOf(v.properties[a], v.properties[b]),
                StmtSpec::SubProp(..) => continue,
                StmtSpec::Domain(p, c) => SchemaStatement::Domain(v.properties[p], v.classes[c]),
                StmtSpec::Range(p, c) => SchemaStatement::Range(v.properties[p], v.classes[c]),
            };
            schema.add(stmt);
        }
        for t in &triples {
            let triple: Triple = match *t {
                TripleSpec::Type(r, c) => [v.resources[r], v.vocab.rdf_type, v.classes[c]],
                TripleSpec::Prop(s, p, o) => [v.resources[s], v.properties[p], v.resources[o]],
            };
            db.store_mut().insert(triple);
        }
        let q = build_query(&atoms, &v);

        // Left side: plain evaluation over the saturated database.
        let saturated = saturated_copy(db.store(), &schema, &v.vocab);
        let lhs = evaluate(&saturated, &q);

        // Right side: reformulated evaluation over the original database.
        let ucq = reformulate(&q, &schema, &v.vocab);
        let rhs = evaluate_union(db.store(), &ucq);

        prop_assert_eq!(&lhs, &rhs, "query {:?}\nschema {:?}", &q, schema.statements());

        // Structural invariants of Algorithm 1: every branch keeps the
        // original atom count and head arity (rules replace atoms 1:1).
        for branch in ucq.branches() {
            prop_assert_eq!(branch.atoms.len(), q.atoms.len());
            prop_assert_eq!(branch.head.len(), q.head.len());
        }
    }
}

/// Theorem 4.1's size bound `(2|S|²)^m`, checked where it is meaningful:
/// on a Barton-scale schema (the asymptotic bound understates tiny
/// schemas, where rule 5's class enumeration can exceed `2|S|²`).
#[test]
fn theorem_4_1_bound_on_barton_schema() {
    use rdfviews::workload::{
        generate_barton, generate_satisfiable, BartonSpec, SatisfiableSpec, Shape,
    };
    let data = generate_barton(&BartonSpec::tiny());
    let qs = generate_satisfiable(&data.db, &SatisfiableSpec::new(4, 3, Shape::Mixed));
    for q in &qs {
        let ucq = reformulate(q, &data.schema, &data.vocab);
        let bound = theorem_4_1_bound(data.schema.len(), q.atoms.len());
        assert!((ucq.len() as u128) <= bound, "{} > {bound}", ucq.len());
        assert!(!ucq.is_empty());
    }
}

/// The reformulated union always contains the original query itself.
#[test]
fn reformulation_contains_original() {
    let mut db = Dataset::new();
    let v = build_vocab(&mut db);
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubClassOf(v.classes[0], v.classes[1]));
    let q = build_query(&[AtomSpec::TypeConst(0, 1)], &v);
    let ucq = reformulate(&q, &schema, &v.vocab);
    assert!(ucq.contains(&q.normalized()));
    assert_eq!(ucq.len(), 2);
}
