//! Durable deployments: snapshot bundles, the write-ahead log, and
//! deterministic replay recovery.
//!
//! * **Round trip** — `persist` → `open` reproduces the deployment
//!   exactly: equal content hash, equal answers, across plain,
//!   saturation-mode, and post-reformulation deployments.
//! * **Corruption is typed** — any flipped bit in the snapshot is a
//!   `CorruptBundle` at load time; filesystem failures are `Io`; a torn
//!   WAL tail under strict verification is `WalTornTail`. Never a panic,
//!   never a wrong answer.
//! * **Crash-point matrix** — the WAL is truncated at *every byte* from
//!   the header to the full length; every cut recovers to exactly the
//!   state whose batches were durably framed before the cut, proven by
//!   content hash against live checkpoints recorded batch by batch.
//! * **Compaction** — checkpoints absorb the log crash-safely: a newer
//!   snapshot with a stale un-reset WAL (the crash window between the two
//!   steps) recovers by skipping the absorbed records.
//! * **Golden fixture** — a committed v1 bundle keeps loading, and
//!   re-encoding it reproduces its bytes exactly (format stability; an
//!   intentional format change must bump the version and regenerate).
//! * **Proptest** — random feeds round-trip: live hash == recovered hash.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use rdfviews::engine::evaluate;
use rdfviews::exec::{SNAPSHOT_FILE, WAL_FILE};
use rdfviews::model::Triple;
use rdfviews::prelude::*;
use rdfviews::schema::saturated_copy;

/// A scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "rdfviews-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Paintings → artists → cities; `bornIn` deliberately untuned.
fn museum(entities: usize) -> Dataset {
    let mut db = Dataset::new();
    let painted_by = db.dict_mut().intern_uri("paintedBy");
    let exhibited_in = db.dict_mut().intern_uri("exhibitedIn");
    let born_in = db.dict_mut().intern_uri("bornIn");
    let artists = (entities / 6).max(2);
    for i in 0..entities {
        let painting = db.dict_mut().intern_uri(&format!("painting{i}"));
        let artist = db.dict_mut().intern_uri(&format!("artist{}", i % artists));
        let site = db.dict_mut().intern_uri(&format!("site{}", i % 4));
        db.store_mut().insert([painting, painted_by, artist]);
        db.store_mut().insert([painting, exhibited_in, site]);
    }
    for a in 0..artists {
        let artist = db.dict_mut().intern_uri(&format!("artist{a}"));
        let city = db.dict_mut().intern_uri(&format!("city{}", a % 2));
        db.store_mut().insert([artist, born_in, city]);
    }
    db
}

fn museum_workload(db: &mut Dataset) -> Vec<ConjunctiveQuery> {
    [
        "q1(P, A) :- t(P, <paintedBy>, A)",
        "q2(P, M) :- t(P, <exhibitedIn>, M)",
        "q3(A, M) :- t(P, <paintedBy>, A), t(P, <exhibitedIn>, M)",
    ]
    .iter()
    .map(|s| parse_query(s, db.dict_mut()).unwrap().query)
    .collect()
}

/// Tunes and deploys the museum workload, returning the deployment and
/// the dictionary its ids refer to.
fn deployed(entities: usize) -> (Deployment, Dictionary) {
    let mut db = museum(entities);
    let workload = museum_workload(&mut db);
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let dep = advisor.deploy(rec).unwrap();
    (dep, db.dict().clone())
}

/// A feed of fresh museum triples (new paintings by known artists).
fn feed(dict: &mut Dictionary, from: usize, n: usize) -> Vec<Triple> {
    let painted_by = dict.lookup_uri("paintedBy").unwrap();
    let exhibited_in = dict.lookup_uri("exhibitedIn").unwrap();
    (0..n)
        .map(|i| {
            let painting = dict.intern_uri(&format!("painting{}", from + i));
            if i % 3 == 2 {
                let site = dict.intern_uri(&format!("site{}", i % 5));
                [painting, exhibited_in, site]
            } else {
                let artist = dict.intern_uri(&format!("artist{}", i % 3));
                [painting, painted_by, artist]
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------

#[test]
fn persist_open_round_trips_plain_deployment() {
    let tmp = TempDir::new("roundtrip");
    let (mut dep, dict) = deployed(24);
    let hash = dep.persist(tmp.path(), &dict).unwrap();
    assert_eq!(dep.content_hash(&dict).unwrap(), hash);

    let (mut reopened, mut redict) = Deployment::open(tmp.path()).unwrap();
    assert_eq!(reopened.content_hash(&redict).unwrap(), hash);
    assert_eq!(redict.len(), dict.len());
    assert_eq!(reopened.lineage(), dep.lineage());
    assert_eq!(reopened.view_count(), dep.view_count());
    for idx in 0..dep.recommendation().workload.len() {
        assert_eq!(
            reopened.answer(idx).unwrap(),
            dep.answer(idx).unwrap(),
            "workload query {idx} must answer identically after reopen"
        );
    }
    // A reopened deployment keeps maintaining correctly.
    let batch = feed(&mut redict, 1000, 6);
    reopened.insert_batch(&batch);
    assert!(reopened.answer(0).unwrap().len() > dep.answer(0).unwrap().len());
}

#[test]
fn persist_open_round_trips_saturation_deployment() {
    let tmp = TempDir::new("saturation");
    let mut db = museum(18);
    let painter = db.dict_mut().intern_uri("painter");
    let sub = db.dict_mut().intern_uri("paintedBy");
    let vocab = VocabIds::intern(db.dict_mut());
    // paintedBy ⊑ painter: saturation adds implicit `painter` triples.
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubPropertyOf(sub, painter));
    let workload = vec![
        parse_query("q(P, A) :- t(P, <painter>, A)", db.dict_mut())
            .unwrap()
            .query,
    ];
    let mut advisor = Advisor::builder(&db)
        .schema(&schema, &vocab)
        .reasoning(ReasoningMode::Saturation)
        .build()
        .unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    let dict = db.dict().clone();
    let hash = dep.persist(tmp.path(), &dict).unwrap();

    let (mut reopened, redict) = Deployment::open(tmp.path()).unwrap();
    assert_eq!(reopened.content_hash(&redict).unwrap(), hash);
    let saturated = saturated_copy(db.store(), &schema, &vocab);
    assert_eq!(
        reopened.answer(0).unwrap(),
        evaluate(&saturated, &workload[0]),
        "saturation-mode answers must stay entailment-complete after reopen"
    );
    assert_eq!(reopened.answer(0).unwrap(), dep.answer(0).unwrap());
}

#[test]
fn persist_open_round_trips_post_reformulation_deployment() {
    let tmp = TempDir::new("postreform");
    let mut db = museum(18);
    let painter = db.dict_mut().intern_uri("painter");
    let sub = db.dict_mut().intern_uri("paintedBy");
    let vocab = VocabIds::intern(db.dict_mut());
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubPropertyOf(sub, painter));
    let workload = vec![
        parse_query("q(P, A) :- t(P, <painter>, A)", db.dict_mut())
            .unwrap()
            .query,
    ];
    let mut advisor = Advisor::builder(&db)
        .schema(&schema, &vocab)
        .reasoning(ReasoningMode::PostReformulation)
        .build()
        .unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    let dict = db.dict().clone();
    let hash = dep.persist(tmp.path(), &dict).unwrap();

    let (mut reopened, redict) = Deployment::open(tmp.path()).unwrap();
    assert_eq!(reopened.content_hash(&redict).unwrap(), hash);
    assert_eq!(reopened.answer(0).unwrap(), dep.answer(0).unwrap());
}

#[test]
fn reopened_deployment_gets_fresh_identity_but_keeps_lineage() {
    let tmp = TempDir::new("lineage");
    let (dep, dict) = deployed(12);
    dep.persist(tmp.path(), &dict).unwrap();
    let q = dep.recommendation().workload[0].clone();
    let plan = dep.plan(&q).unwrap();

    let (mut reopened, _) = Deployment::open(tmp.path()).unwrap();
    assert_eq!(reopened.lineage(), dep.lineage());
    // A plan from the pre-persist process must not execute on the
    // reloaded deployment — `open` issues a fresh process-scoped
    // identity, so the plan is foreign there, same as a plan from any
    // other deployment.
    assert!(matches!(
        reopened.answer_query(&plan),
        Err(SelectionError::ForeignPlan)
    ));
}

// ---------------------------------------------------------------------
// Typed failures.
// ---------------------------------------------------------------------

#[test]
fn every_corrupted_snapshot_byte_is_detected() {
    let tmp = TempDir::new("corrupt");
    let (dep, dict) = deployed(8);
    dep.persist(tmp.path(), &dict).unwrap();
    let snapshot = tmp.path().join(SNAPSHOT_FILE);
    let pristine = std::fs::read(&snapshot).unwrap();
    // Flipping a bit anywhere must be a typed CorruptBundle. Every 97th
    // byte keeps the test fast while still crossing every section; the
    // durability crate's own tests cover every byte of a small bundle.
    for pos in (0..pristine.len()).step_by(97).chain([pristine.len() - 1]) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0x10;
        std::fs::write(&snapshot, &bytes).unwrap();
        match Deployment::open(tmp.path()) {
            Err(SelectionError::CorruptBundle { .. }) => {}
            other => panic!("flipped byte {pos}: expected CorruptBundle, got {other:?}"),
        }
    }
    // Truncation anywhere is detected too.
    std::fs::write(&snapshot, &pristine[..pristine.len() / 2]).unwrap();
    assert!(matches!(
        Deployment::open(tmp.path()),
        Err(SelectionError::CorruptBundle { .. })
    ));
}

#[test]
fn missing_snapshot_is_a_typed_io_error() {
    let tmp = TempDir::new("missing");
    match Deployment::open(tmp.path()) {
        Err(SelectionError::Io { context, .. }) => {
            assert!(context.contains(SNAPSHOT_FILE), "context: {context}")
        }
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn strict_wal_verification_reports_torn_tail() {
    let tmp = TempDir::new("strict");
    let (dep, dict) = deployed(8);
    let mut durable = DurableDeployment::create(tmp.path(), dep, dict).unwrap();
    let batch = feed(durable.dict_mut(), 500, 3);
    durable.insert_batch(&batch).unwrap();
    drop(durable);
    assert_eq!(Deployment::verify_wal(tmp.path()).unwrap(), 1);

    // Chop the last byte: the record frame is incomplete.
    let wal = tmp.path().join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 1]).unwrap();
    match Deployment::verify_wal(tmp.path()) {
        Err(SelectionError::WalTornTail { offset }) => {
            assert!(offset < bytes.len() as u64)
        }
        other => panic!("expected WalTornTail, got {other:?}"),
    }
    // Recovery itself stays graceful: the torn record is dropped.
    let (_, _, report) = Deployment::recover(tmp.path()).unwrap();
    assert_eq!(report.records_replayed, 0);
    assert!(report.torn_tail.is_some());
}

// ---------------------------------------------------------------------
// The crash-point matrix.
// ---------------------------------------------------------------------

/// The WAL header length (magic + format version) — cuts shorter than
/// this simulate a crash during `create`, before any batch could have
/// been acknowledged.
const WAL_HEADER_LEN: usize = 12;

/// Truncates the WAL at **every byte offset** from the header to the full
/// log and recovers at each cut. Every cut must reproduce — by content
/// hash — exactly the deployment state whose batches were durably framed
/// before the cut, with any partial record dropped, never a panic.
#[test]
fn recovery_at_every_wal_cut_matches_the_live_state() {
    let tmp = TempDir::new("matrix");
    let (dep, dict) = deployed(8);
    let mut durable = DurableDeployment::create(tmp.path(), dep, dict)
        .unwrap()
        .with_compact_threshold(u64::MAX); // no auto-checkpoint: keep every record
                                           // `expected[k]` = live content hash after k batches; `frame_end[k]` =
                                           // first byte offset at which batch k is fully durable.
    let mut expected = vec![durable.deployment().content_hash(durable.dict()).unwrap()];
    let mut frame_end: Vec<u64> = Vec::new();
    let mut inserted: Vec<Triple> = Vec::new();
    for k in 0..4 {
        let batch = feed(durable.dict_mut(), 600 + 10 * k, 3);
        if k == 2 {
            // One deletion batch in the middle: replay must handle both
            // record kinds.
            let victims: Vec<Triple> = inserted.drain(..2).collect();
            durable.delete_batch(&victims).unwrap();
            frame_end.push(durable.wal_size());
            expected.push(durable.deployment().content_hash(durable.dict()).unwrap());
        }
        durable.insert_batch(&batch).unwrap();
        inserted.extend(batch);
        frame_end.push(durable.wal_size());
        expected.push(durable.deployment().content_hash(durable.dict()).unwrap());
    }
    let wal_path = tmp.path().join(WAL_FILE);
    let full = std::fs::read(&wal_path).unwrap();
    assert_eq!(full.len() as u64, *frame_end.last().unwrap());
    drop(durable);

    for cut in WAL_HEADER_LEN..=full.len() {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let (dep, dict, report) = Deployment::recover(tmp.path())
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover gracefully: {e}"));
        let durable_batches = frame_end.iter().filter(|&&end| end <= cut as u64).count();
        assert_eq!(
            report.records_replayed, durable_batches,
            "cut at byte {cut}: wrong replay count"
        );
        assert_eq!(
            report.state_hash, expected[durable_batches],
            "cut at byte {cut} must recover the state after {durable_batches} batches"
        );
        assert_eq!(dep.content_hash(&dict).unwrap(), report.state_hash);
        let clean_boundary = cut == WAL_HEADER_LEN || frame_end.contains(&(cut as u64));
        assert_eq!(
            report.torn_tail.is_some(),
            !clean_boundary,
            "cut at byte {cut}: torn-tail report"
        );
    }
}

// ---------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------

#[test]
fn compaction_resets_the_wal_and_recovery_still_matches() {
    let tmp = TempDir::new("compact");
    let (dep, dict) = deployed(10);
    // Threshold 0: every batch triggers a checkpoint.
    let mut durable = DurableDeployment::create(tmp.path(), dep, dict)
        .unwrap()
        .with_compact_threshold(0);
    let empty_wal = durable.wal_size();
    for k in 0..3 {
        let batch = feed(durable.dict_mut(), 700 + 10 * k, 3);
        durable.insert_batch(&batch).unwrap();
        assert_eq!(durable.wal_size(), empty_wal, "batch {k} must compact");
    }
    let live = durable.deployment().content_hash(durable.dict()).unwrap();
    drop(durable);
    let (recovered, report) = DurableDeployment::recover(tmp.path()).unwrap();
    assert_eq!(report.records_scanned, 0, "the wal was fully absorbed");
    assert_eq!(report.state_hash, live);
    drop(recovered);
}

/// The crash window *between* checkpoint's two steps: the new snapshot is
/// on disk but the WAL was not yet reset. Recovery must skip the absorbed
/// records (their version stamps predate the snapshot) instead of
/// replaying them twice.
#[test]
fn stale_wal_records_after_checkpoint_crash_are_skipped() {
    let tmp = TempDir::new("stalewal");
    let (dep, dict) = deployed(10);
    let mut durable = DurableDeployment::create(tmp.path(), dep, dict)
        .unwrap()
        .with_compact_threshold(u64::MAX);
    let batch = feed(durable.dict_mut(), 800, 4);
    durable.insert_batch(&batch).unwrap();
    // Simulate the crash: write the newer snapshot directly, leaving the
    // logged record in place (checkpoint() would have reset it).
    let live = durable
        .deployment()
        .persist(tmp.path(), durable.dict())
        .unwrap();
    drop(durable);

    let (recovered, report) = DurableDeployment::recover(tmp.path()).unwrap();
    assert_eq!(report.records_scanned, 1);
    assert_eq!(report.records_skipped, 1, "absorbed record must be skipped");
    assert_eq!(report.records_replayed, 0);
    assert_eq!(report.state_hash, live);
    drop(recovered);
}

#[test]
fn recovered_handle_keeps_logging_durably() {
    let tmp = TempDir::new("relog");
    let (dep, dict) = deployed(10);
    let durable = DurableDeployment::create(tmp.path(), dep, dict).unwrap();
    drop(durable);
    let (mut durable, _) = DurableDeployment::recover(tmp.path()).unwrap();
    let batch = feed(durable.dict_mut(), 900, 3);
    durable.insert_batch(&batch).unwrap();
    let live = durable.deployment().content_hash(durable.dict()).unwrap();
    drop(durable);
    let (_, report) = DurableDeployment::recover(tmp.path()).unwrap();
    assert_eq!(report.records_replayed, 1);
    assert_eq!(report.state_hash, live);
}

// ---------------------------------------------------------------------
// Golden fixture: format stability.
// ---------------------------------------------------------------------

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v1.rdfb")
}

/// Regenerates `tests/fixtures/golden_v1.rdfb`. Run explicitly after an
/// *intentional* format change (with a `FORMAT_VERSION` bump):
/// `cargo test --test durability regenerate_golden_fixture -- --ignored`
#[test]
#[ignore = "writes the committed fixture; run only to regenerate it"]
fn regenerate_golden_fixture() {
    let tmp = TempDir::new("golden-gen");
    let (dep, dict) = deployed(6);
    dep.persist(tmp.path(), &dict).unwrap();
    std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
    std::fs::copy(tmp.path().join(SNAPSHOT_FILE), golden_path()).unwrap();
}

#[test]
fn golden_fixture_still_loads_and_reencodes_byte_for_byte() {
    let fixture = std::fs::read(golden_path())
        .expect("tests/fixtures/golden_v1.rdfb must be committed (see regenerate_golden_fixture)");
    let tmp = TempDir::new("golden");
    std::fs::create_dir_all(tmp.path()).unwrap();
    std::fs::write(tmp.path().join(SNAPSHOT_FILE), &fixture).unwrap();

    let (mut dep, dict) = Deployment::open(tmp.path()).unwrap();
    assert!(dep.view_count() > 0);
    // Structural sanity: the fixture deployment still answers.
    for idx in 0..dep.recommendation().workload.len() {
        let q = dep.recommendation().workload[idx].clone();
        assert_eq!(dep.answer(idx).unwrap(), evaluate(dep.store(), &q));
    }
    // Byte-for-byte stability: open → persist reproduces the exact file.
    let out = TempDir::new("golden-out");
    dep.persist(out.path(), &dict).unwrap();
    let rewritten = std::fs::read(out.path().join(SNAPSHOT_FILE)).unwrap();
    assert_eq!(
        rewritten, fixture,
        "re-encoding the golden bundle changed its bytes — a format change \
         requires a FORMAT_VERSION bump and a regenerated fixture"
    );
}

// ---------------------------------------------------------------------
// Proptest: random feeds round-trip.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any sequence of insert/delete batches over a durable deployment
    /// recovers to the live state, by content hash.
    #[test]
    fn random_feeds_recover_exactly(
        seed in 0u32..1000,
        sizes in prop::collection::vec(1usize..5, 1..4),
        deletes in prop::collection::vec(any::<bool>(), 3),
    ) {
        let tmp = TempDir::new(&format!("prop{seed}"));
        let (dep, dict) = deployed(8);
        let mut durable = DurableDeployment::create(tmp.path(), dep, dict)
            .unwrap()
            .with_compact_threshold(u64::MAX);
        let mut inserted: Vec<Triple> = Vec::new();
        for (k, &n) in sizes.iter().enumerate() {
            let batch = feed(durable.dict_mut(), 2000 + 100 * k + seed as usize % 7, n);
            if deletes[k % deletes.len()] && !inserted.is_empty() {
                let victims: Vec<Triple> = inserted.drain(..1).collect();
                durable.delete_batch(&victims).unwrap();
            }
            durable.insert_batch(&batch).unwrap();
            inserted.extend(batch);
        }
        let live = durable.deployment().content_hash(durable.dict()).unwrap();
        drop(durable);
        let (_, report) = DurableDeployment::recover(tmp.path()).unwrap();
        prop_assert_eq!(report.state_hash, live);
        prop_assert!(report.torn_tail.is_none());
    }

    /// persist → open is the identity on content hash for deployments of
    /// any museum size.
    #[test]
    fn persist_open_identity(entities in 4usize..20) {
        let tmp = TempDir::new(&format!("ident{entities}"));
        let (dep, dict) = deployed(entities);
        let hash = dep.persist(tmp.path(), &dict).unwrap();
        let (reopened, redict) = Deployment::open(tmp.path()).unwrap();
        prop_assert_eq!(reopened.content_hash(&redict).unwrap(), hash);
    }
}
