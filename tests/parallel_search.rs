//! Parallel search core: result determinism across explorer-thread
//! counts, the cross-thread counter invariant, the bounded group
//! scheduler's panic capture, and warm-started incremental search.
//!
//! The contract under test: exploration *order* changes with the thread
//! count, but the reachable state set of a completed run does not — so
//! sequential and parallel runs of the same strategy report the same best
//! cost (and, thanks to signature tie-breaking, the same best state), and
//! the counters always satisfy
//! `created + reexpansions == duplicates + discarded + explored +
//! frontier_remaining`.

use proptest::prelude::*;

use rdfviews::core::{
    search, select_views_partitioned_session, try_select_views_partitioned, CostModel, CostWeights,
    Preparation, ReasoningMode, SearchConfig, SearchOutcome, SearchStats, SelectionError,
    SelectionOptions, State, StrategyKind,
};
use rdfviews::model::Dataset;
use rdfviews::prelude::parse_query;
use rdfviews::query::ConjunctiveQuery;
use rdfviews::stats::collect_stats;
use rdfviews::workload::{
    generate_matching_data, generate_workload, Commonality, Shape, WorkloadSpec,
};

fn setup(
    seed: u64,
    shape: Shape,
    commonality: Commonality,
    queries: usize,
    atoms: usize,
    triples: usize,
) -> (Dataset, Vec<ConjunctiveQuery>) {
    let mut db = Dataset::new();
    let spec = WorkloadSpec::new(queries, atoms, shape, commonality).with_seed(seed);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, triples);
    (Dataset::from_parts(dict, store), workload)
}

fn cfg(strategy: StrategyKind, parallelism: usize) -> SearchConfig {
    SearchConfig {
        strategy,
        parallelism,
        max_states: Some(200_000),
        ..SearchConfig::default()
    }
}

/// `created + reexpansions == duplicates + discarded + explored +
/// frontier_remaining` — the ledger every explorer thread writes into must
/// balance whether or not the run was truncated.
fn assert_counter_invariant(stats: &SearchStats, label: &str) {
    assert_eq!(
        stats.created + stats.reexpansions,
        stats.duplicates + stats.discarded + stats.explored + stats.frontier_remaining,
        "{label}: {stats:?}"
    );
}

fn run(
    workload: &[ConjunctiveQuery],
    model: &CostModel<'_>,
    strategy: StrategyKind,
    parallelism: usize,
) -> SearchOutcome {
    search(State::initial(workload), model, &cfg(strategy, parallelism))
}

#[test]
fn parallel_runs_match_sequential_across_strategies() {
    // A high-commonality chain workload keeps all queries in one sharing
    // group — the regime the parallel core exists for.
    let (db, workload) = setup(11, Shape::Chain, Commonality::High, 3, 3, 600);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    for strategy in [StrategyKind::Dfs, StrategyKind::ExStr, StrategyKind::Gstr] {
        let seq = run(&workload, &model, strategy, 1);
        assert!(!seq.stats.out_of_budget, "{strategy:?} must complete");
        assert_counter_invariant(&seq.stats, "sequential");
        for threads in [2, 4] {
            let par = run(&workload, &model, strategy, threads);
            assert!(!par.stats.out_of_budget);
            assert_eq!(
                par.best_cost, seq.best_cost,
                "{strategy:?} with {threads} explorers"
            );
            assert_counter_invariant(&par.stats, "parallel");
            assert_eq!(par.stats.frontier_remaining, 0, "completed run");
        }
    }
}

#[test]
fn parallel_exhaustive_reaches_the_same_distinct_states() {
    let (db, workload) = setup(5, Shape::Star, Commonality::High, 3, 2, 400);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let seq = run(&workload, &model, StrategyKind::Dfs, 1);
    let par = run(&workload, &model, StrategyKind::Dfs, 4);
    assert!(!seq.stats.out_of_budget && !par.stats.out_of_budget);
    // Orders differ, so created/duplicate totals may differ, but the
    // distinct reachable set (and hence the best state) is identical.
    assert_eq!(
        seq.stats.created - seq.stats.duplicates - seq.stats.discarded,
        par.stats.created - par.stats.duplicates - par.stats.discarded
    );
    assert_eq!(seq.best_cost, par.best_cost);
    assert_eq!(seq.best_state.signature(), par.best_state.signature());
}

#[test]
fn truncated_parallel_run_keeps_the_ledger_balanced() {
    let (db, workload) = setup(7, Shape::Mixed, Commonality::High, 4, 4, 500);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let mut c = cfg(StrategyKind::Dfs, 4);
    c.max_states = Some(50);
    let out = search(State::initial(&workload), &model, &c);
    assert!(out.stats.out_of_budget);
    assert!(out.stats.frontier_remaining > 0);
    assert_counter_invariant(&out.stats, "truncated");
    // Best-effort result still exists.
    assert!(out.best_cost <= out.initial_cost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random workloads: a 3-explorer run of every frontier strategy
    /// reports the sequential best cost and balances the counter ledger.
    #[test]
    fn parallel_determinism_over_random_workloads(
        seed in 0u64..500,
        queries in 2usize..5,
        atoms in 2usize..4,
        star in any::<bool>(),
        strat_pick in 0usize..3,
    ) {
        let shape = if star { Shape::Star } else { Shape::Chain };
        let strategy = [StrategyKind::Dfs, StrategyKind::ExStr, StrategyKind::Gstr][strat_pick];
        let (db, workload) = setup(seed, shape, Commonality::High, queries, atoms, 300);
        let cat = collect_stats(db.store(), db.dict(), &workload);
        let model = CostModel::new(&cat, CostWeights::default());
        let seq = run(&workload, &model, strategy, 1);
        let par = run(&workload, &model, strategy, 3);
        assert_counter_invariant(&seq.stats, "sequential");
        assert_counter_invariant(&par.stats, "parallel");
        // Equality of the optimum requires both runs to have completed.
        if !seq.stats.out_of_budget && !par.stats.out_of_budget {
            prop_assert_eq!(seq.best_cost, par.best_cost, "{:?}", strategy);
        }
    }
}

// ---------------------------------------------------------------------
// Group scheduler
// ---------------------------------------------------------------------

fn multi_group_db() -> (Dataset, Vec<ConjunctiveQuery>) {
    let mut db = Dataset::new();
    for i in 0..40 {
        let s = format!("s{i}");
        for p in 0..4 {
            db.insert_terms(
                rdfviews::model::Term::uri(s.as_str()),
                rdfviews::model::Term::uri(format!("p{p}")),
                rdfviews::model::Term::uri(format!("o{}", i % 5)),
            );
        }
    }
    // Four independent sharing groups (distinct predicates).
    let queries = (0..4)
        .map(|p| {
            parse_query(&format!("q{p}(X, Y) :- t(X, <p{p}>, Y)"), db.dict_mut())
                .unwrap()
                .query
        })
        .collect();
    (db, queries)
}

#[test]
fn bounded_scheduler_matches_unbounded_results() {
    let (db, queries) = multi_group_db();
    let mut opts = SelectionOptions::recommended();
    let sequential =
        try_select_views_partitioned(db.store(), db.dict(), None, &queries, &opts, false).unwrap();
    // A 2-thread budget over 4 groups: pool of 2, largest-first.
    opts.search.parallelism = 2;
    let bounded =
        try_select_views_partitioned(db.store(), db.dict(), None, &queries, &opts, true).unwrap();
    assert_eq!(sequential.outcome.best_cost, bounded.outcome.best_cost);
    assert_eq!(sequential.branch_of, bounded.branch_of);
    assert_eq!(sequential.views.len(), bounded.views.len());
}

#[test]
fn group_search_panic_is_captured_not_fatal() {
    // A Cartesian-product query makes `State::initial` panic inside the
    // group search. The scheduler must surface that as a SelectionError
    // instead of taking the process (and every other group) down.
    let (mut db, mut queries) = multi_group_db();
    queries.push(
        parse_query("qbad(X, A) :- t(X, <u1>, Y), t(A, <u2>, B)", db.dict_mut())
            .unwrap()
            .query,
    );
    for parallel in [false, true] {
        let mut prep = Preparation::new(db.store(), db.dict(), None, ReasoningMode::Plain).unwrap();
        let err = select_views_partitioned_session(
            &mut prep,
            db.store(),
            None,
            &queries,
            &SelectionOptions::recommended(),
            parallel,
        )
        .unwrap_err();
        match err {
            SelectionError::SearchPanicked { detail } => {
                assert!(detail.contains("Cartesian"), "detail: {detail}");
            }
            other => panic!("expected SearchPanicked, got {other:?}"),
        }
    }
}
