//! Edge cases and failure-mode tests across the stack.

use rdfviews::core::transitions::{apply, enumerate, TransitionConfig, TransitionKind};
use rdfviews::core::{
    search, select_views, CostModel, CostWeights, SearchConfig, SelectionOptions, State,
};
use rdfviews::engine::evaluate;
use rdfviews::exec::{
    answer_query, materialize_recommendation, materialize_state, try_answer_original_query,
};
use rdfviews::model::{Dataset, Term};
use rdfviews::query::parser::parse_query;
use rdfviews::stats::collect_stats;

fn small_db() -> Dataset {
    let mut db = Dataset::new();
    for i in 0..20 {
        let s = format!("s{i}");
        db.insert_terms(
            Term::uri(s.as_str()),
            Term::uri("p"),
            Term::uri(format!("o{}", i % 4)),
        );
        db.insert_terms(
            Term::uri(s.as_str()),
            Term::uri("loves"),
            Term::uri(s.as_str()),
        );
    }
    db
}

#[test]
fn boolean_query_workload() {
    // A query with an empty head: the view exports nothing; the rewriting
    // is a zero-arity scan. Selection must still handle it gracefully.
    let mut db = small_db();
    let q = parse_query("q() :- t(X, <p>, <o1>)", db.dict_mut())
        .unwrap()
        .query;
    let workload = vec![q.clone()];
    let s0 = State::initial(&workload);
    s0.check_invariants().unwrap();
    // SC on the constants keeps the state well-formed.
    let cfg = TransitionConfig::default();
    for t in enumerate(&s0, TransitionKind::Sc, &cfg) {
        let s1 = apply(&s0, &t);
        s1.check_invariants().unwrap();
        let unfolded = rdfviews::core::unfold::unfold(&s1, 0);
        assert!(rdfviews::query::containment::equivalent(&unfolded, &q));
    }
}

#[test]
fn single_atom_single_query() {
    let mut db = small_db();
    let q = parse_query("q(X) :- t(X, <p>, <o2>)", db.dict_mut())
        .unwrap()
        .query;
    let rec = select_views(
        db.store(),
        db.dict(),
        None,
        &[q],
        &SelectionOptions::recommended(),
    );
    let mv = materialize_recommendation(db.store(), &rec);
    let ans = try_answer_original_query(&rec, &mv, 0).unwrap();
    assert_eq!(ans.len(), 5); // s2, s6, s10, s14, s18
}

#[test]
fn duplicate_queries_fuse() {
    // Identical queries should collapse onto one view via AVF.
    let mut db = small_db();
    let q1 = parse_query("q(X) :- t(X, <p>, Y)", db.dict_mut())
        .unwrap()
        .query;
    let q2 = parse_query("q2(A) :- t(A, <p>, B)", db.dict_mut())
        .unwrap()
        .query;
    let workload = vec![q1, q2];
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let out = search(State::initial(&workload), &model, &SearchConfig::default());
    assert_eq!(out.best_state.view_count(), 1, "duplicates must fuse");
    let mv = materialize_state(db.store(), &out.best_state);
    for (i, q) in workload.iter().enumerate() {
        assert_eq!(
            answer_query(&out.best_state, &mv, i),
            evaluate(db.store(), q)
        );
    }
}

#[test]
fn intra_atom_repeated_variable() {
    // t(X, loves, X): the self-loop must survive transitions and evaluate
    // correctly through views.
    let mut db = small_db();
    let q = parse_query("q(X) :- t(X, <loves>, X), t(X, <p>, Y)", db.dict_mut())
        .unwrap()
        .query;
    let workload = vec![q.clone()];
    let cfg = TransitionConfig::default();
    let mut state = State::initial(&workload);
    // Cut every join, then check evaluation through materialized views.
    loop {
        let ts = enumerate(&state, TransitionKind::Jc, &cfg);
        let Some(t) = ts.first() else { break };
        state = apply(&state, t);
        state.check_invariants().unwrap();
    }
    let mv = materialize_state(db.store(), &state);
    assert_eq!(answer_query(&state, &mv, 0), evaluate(db.store(), &q));
    assert_eq!(answer_query(&state, &mv, 0).len(), 20);
}

#[test]
#[should_panic(expected = "unsafe")]
fn unsafe_query_rejected() {
    let mut db = small_db();
    let mut q = parse_query("q(X) :- t(X, <p>, Y)", db.dict_mut())
        .unwrap()
        .query;
    // Corrupt the head with a variable not in the body.
    q.head
        .push(rdfviews::query::QTerm::Var(rdfviews::query::Var(99)));
    let _ = State::initial(&[q]);
}

#[test]
fn empty_answer_query_still_rewrites() {
    // A satisfiable-looking query with zero matches: the machinery must
    // produce empty views and empty answers, not fail.
    let mut db = small_db();
    let q = parse_query("q(X) :- t(X, <p>, <nothingHasThis>)", db.dict_mut())
        .unwrap()
        .query;
    let rec = select_views(
        db.store(),
        db.dict(),
        None,
        &[q],
        &SelectionOptions::recommended(),
    );
    let mv = materialize_recommendation(db.store(), &rec);
    assert!(try_answer_original_query(&rec, &mv, 0).unwrap().is_empty());
}

#[test]
fn wide_star_smoke() {
    // A 14-atom star: transitions enumerate (clique graph!) without
    // blowing up, under a tight budget.
    let mut db = Dataset::new();
    let mut body = String::new();
    for i in 0..14 {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("t(X, <p{i}>, Y{i})"));
    }
    let q = parse_query(&format!("q(X) :- {body}"), db.dict_mut())
        .unwrap()
        .query;
    for i in 0..14 {
        db.insert_terms(
            Term::uri("hub"),
            Term::uri(format!("p{i}")),
            Term::uri(format!("v{i}")),
        );
    }
    let workload = vec![q];
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let out = search(
        State::initial(&workload),
        &model,
        &SearchConfig {
            time_budget: Some(std::time::Duration::from_millis(500)),
            max_states: Some(20_000),
            ..SearchConfig::default()
        },
    );
    assert!(out.best_cost <= out.initial_cost);
}

#[test]
fn state_budget_zero_returns_initial() {
    let mut db = small_db();
    let q = parse_query("q(X) :- t(X, <p>, <o1>)", db.dict_mut())
        .unwrap()
        .query;
    let workload = vec![q];
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let out = search(
        State::initial(&workload),
        &model,
        &SearchConfig {
            max_states: Some(1),
            ..SearchConfig::default()
        },
    );
    assert!(out.stats.out_of_budget);
    assert_eq!(out.best_cost, out.initial_cost);
    // The initial state is still a valid recommendation.
    out.best_state.check_invariants().unwrap();
}

#[test]
fn literals_and_blank_nodes_in_data_and_queries() {
    let mut db = Dataset::new();
    db.insert_terms(
        Term::blank("b1"),
        Term::uri("label"),
        Term::literal("thing one"),
    );
    db.insert_terms(
        Term::blank("b2"),
        Term::uri("label"),
        Term::literal("thing two"),
    );
    db.insert_terms(Term::blank("b1"), Term::uri("linksTo"), Term::blank("b2"));
    let q = parse_query(
        "q(L) :- t(X, <linksTo>, Y), t(Y, <label>, L)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let rec = select_views(
        db.store(),
        db.dict(),
        None,
        &[q],
        &SelectionOptions::recommended(),
    );
    let mv = materialize_recommendation(db.store(), &rec);
    let ans = try_answer_original_query(&rec, &mv, 0).unwrap();
    assert_eq!(ans.len(), 1);
    let lit = db.dict().lookup(&Term::literal("thing two")).unwrap();
    assert!(ans.contains(&[lit]));
}
