//! Property tests for the transition cost laws of Section 3.3:
//!
//! * "SC always increases the state cost";
//! * "VF always reduces the overall cost of a state" (never increases it
//!   in our model: the reduction is weak when the fused views' rewritings
//!   already coincide);
//! * JC and VB may go either way — so we only check they produce finite,
//!   non-negative costs.

use proptest::prelude::*;

use rdfviews::core::transitions::{apply, enumerate, TransitionConfig, TransitionKind};
use rdfviews::core::{CostModel, CostWeights, State};
use rdfviews::model::Dataset;
use rdfviews::stats::collect_stats;
use rdfviews::workload::{
    generate_matching_data, generate_workload, Commonality, Shape, WorkloadSpec,
};

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Star),
        Just(Shape::Chain),
        Just(Shape::Cycle),
        Just(Shape::RandomSparse),
        Just(Shape::RandomDense),
    ]
}

fn setup(seed: u64, shape: Shape) -> (Dataset, Vec<rdfviews::query::ConjunctiveQuery>) {
    let mut db = Dataset::new();
    let spec = WorkloadSpec::new(2, 3, shape, Commonality::High).with_seed(seed);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, 500);
    (Dataset::from_parts(dict, store), workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sc_increases_and_vf_never_increases(
        seed in 0u64..10_000,
        shape in shape_strategy(),
        warmup in prop::collection::vec((0usize..4, 0usize..32), 0..3),
    ) {
        let (db, workload) = setup(seed, shape);
        let cat = collect_stats(db.store(), db.dict(), &workload);
        let model = CostModel::new(&cat, CostWeights::default());
        let cfg = TransitionConfig::default();

        // Random warm-up walk so the laws are checked on arbitrary states,
        // not just S0.
        let mut state = State::initial(&workload);
        for (k, i) in warmup {
            let ts = enumerate(&state, TransitionKind::ALL[k], &cfg);
            if !ts.is_empty() {
                state = apply(&state, &ts[i % ts.len()]);
            }
        }
        let base = model.cost(&state);
        prop_assert!(base.is_finite() && base >= 0.0);

        for t in enumerate(&state, TransitionKind::Sc, &cfg) {
            let c = model.cost(&apply(&state, &t));
            // Strict increase whenever the cut view has any estimated
            // extent; views estimated empty contribute nothing to VSO/REC,
            // so SC can only keep the cost equal there (the paper's law
            // assumes non-degenerate sizes).
            let cut_view_card = match &t {
                rdfviews::core::Transition::SelectionCut { view, .. } => {
                    model.estimator().cq_card(&state.view(*view).as_query())
                }
                _ => unreachable!("SC enumeration yields selection cuts"),
            };
            if cut_view_card > 0.0 {
                prop_assert!(c > base, "SC must increase cost: {c} vs {base} ({t:?})");
            } else {
                prop_assert!(c >= base, "SC must not decrease cost: {c} vs {base} ({t:?})");
            }
        }
        for t in enumerate(&state, TransitionKind::Vf, &cfg) {
            let c = model.cost(&apply(&state, &t));
            prop_assert!(
                c <= base + 1e-9 * base.abs().max(1.0),
                "VF must not increase cost: {c} vs {base} ({t:?})"
            );
        }
        for kind in [TransitionKind::Jc, TransitionKind::Vb] {
            for t in enumerate(&state, kind, &cfg) {
                let c = model.cost(&apply(&state, &t));
                prop_assert!(c.is_finite() && c >= 0.0, "{t:?}");
            }
        }
    }
}
