//! End-to-end pipeline tests on Barton-like data: every reasoning mode
//! must produce views from which the complete answers (w.r.t. RDFS
//! entailment) of every workload query can be computed.

use rdfviews::core::{select_views, ReasoningMode, SearchConfig, SelectionOptions};
use rdfviews::engine::evaluate;
use rdfviews::exec::{materialize_recommendation, try_answer_original_query};
use rdfviews::schema::saturated_copy;
use rdfviews::workload::{
    generate_barton, generate_satisfiable, BartonSpec, SatisfiableSpec, Shape,
};

fn options(mode: ReasoningMode) -> SelectionOptions {
    SelectionOptions {
        reasoning: mode,
        calibrate_cm: true,
        search: SearchConfig {
            time_budget: Some(std::time::Duration::from_secs(4)),
            ..SearchConfig::default()
        },
        ..Default::default()
    }
}

#[test]
fn all_reasoning_modes_return_complete_answers() {
    let data = generate_barton(&BartonSpec::tiny());
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(3, 3, Shape::Mixed));
    let saturated = saturated_copy(data.db.store(), &data.schema, &data.vocab);

    for mode in [
        ReasoningMode::Saturation,
        ReasoningMode::PreReformulation,
        ReasoningMode::PostReformulation,
    ] {
        let rec = select_views(
            data.db.store(),
            data.db.dict(),
            Some((&data.schema, &data.vocab)),
            &workload,
            &options(mode),
        );
        rec.outcome.best_state.check_invariants().unwrap();
        let mv = match mode {
            ReasoningMode::Saturation => materialize_recommendation(&saturated, &rec),
            _ => materialize_recommendation(data.db.store(), &rec),
        };
        for (qi, q) in workload.iter().enumerate() {
            let truth = evaluate(&saturated, &q.normalized());
            let got = try_answer_original_query(&rec, &mv, qi).unwrap();
            assert_eq!(got, truth, "{mode:?}, query {qi}");
        }
    }
}

#[test]
fn plain_mode_matches_non_saturated_evaluation() {
    let data = generate_barton(&BartonSpec::tiny());
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(3, 3, Shape::Star));
    let rec = select_views(
        data.db.store(),
        data.db.dict(),
        None,
        &workload,
        &options(ReasoningMode::Plain),
    );
    let mv = materialize_recommendation(data.db.store(), &rec);
    for (qi, q) in workload.iter().enumerate() {
        let truth = evaluate(data.db.store(), &q.normalized());
        assert_eq!(
            try_answer_original_query(&rec, &mv, qi).unwrap(),
            truth,
            "query {qi}"
        );
    }
}

#[test]
fn post_reformulation_views_match_saturation_views_materially() {
    // Theorem 4.2 applied to views: materializing the reformulated views
    // over D equals materializing the plain views over saturate(D).
    let data = generate_barton(&BartonSpec::tiny());
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(2, 3, Shape::Chain));
    let saturated = saturated_copy(data.db.store(), &data.schema, &data.vocab);

    let rec = select_views(
        data.db.store(),
        data.db.dict(),
        Some((&data.schema, &data.vocab)),
        &workload,
        &options(ReasoningMode::PostReformulation),
    );
    for (view, union) in rec.views.iter().zip(rec.materialization.iter()) {
        let via_reform = rdfviews::engine::materialize_union(data.db.store(), union);
        let via_saturation = rdfviews::engine::materialize(&saturated, &view.as_query());
        let rows = |t: &rdfviews::engine::ViewTable| {
            let mut v: Vec<Vec<rdfviews::model::Id>> = t.rows().map(|r| r.to_vec()).collect();
            v.sort();
            v
        };
        assert_eq!(rows(&via_reform), rows(&via_saturation), "view {}", view.id);
    }
}

#[test]
fn pre_reformulation_search_is_larger_than_post() {
    // Section 6.5's qualitative claim: the pre-reformulated initial state
    // is bigger (more views, more rewritings) than the post-reformulated
    // one, which simply keeps the original workload.
    let data = generate_barton(&BartonSpec::tiny());
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(3, 3, Shape::Mixed));
    let pre = select_views(
        data.db.store(),
        data.db.dict(),
        Some((&data.schema, &data.vocab)),
        &workload,
        &options(ReasoningMode::PreReformulation),
    );
    let post = select_views(
        data.db.store(),
        data.db.dict(),
        Some((&data.schema, &data.vocab)),
        &workload,
        &options(ReasoningMode::PostReformulation),
    );
    assert!(pre.workload.len() > post.workload.len());
    assert_eq!(post.workload.len(), workload.len());
}

#[test]
fn partitioned_selection_returns_complete_answers() {
    // The Section 8 parallelization: group-wise search must still cover
    // the whole workload with complete (entailment-aware) answers.
    let data = generate_barton(&BartonSpec::tiny());
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(4, 3, Shape::Mixed));
    let saturated = saturated_copy(data.db.store(), &data.schema, &data.vocab);
    for parallel in [false, true] {
        let rec = rdfviews::core::select_views_partitioned(
            data.db.store(),
            data.db.dict(),
            Some((&data.schema, &data.vocab)),
            &workload,
            &options(ReasoningMode::PostReformulation),
            parallel,
        );
        rec.outcome.best_state.check_invariants().unwrap();
        let mv = materialize_recommendation(data.db.store(), &rec);
        for (qi, q) in workload.iter().enumerate() {
            let truth = evaluate(&saturated, &q.normalized());
            assert_eq!(
                try_answer_original_query(&rec, &mv, qi).unwrap(),
                truth,
                "parallel={parallel}, query {qi}"
            );
        }
    }
}

#[test]
fn recommendation_views_all_used() {
    // Definition 2.3 (ii): every view participates in at least one
    // rewriting — checked on the *final* recommendation.
    let data = generate_barton(&BartonSpec::tiny());
    let workload = generate_satisfiable(&data.db, &SatisfiableSpec::new(4, 4, Shape::Mixed));
    let rec = select_views(
        data.db.store(),
        data.db.dict(),
        Some((&data.schema, &data.vocab)),
        &workload,
        &options(ReasoningMode::PostReformulation),
    );
    let used: std::collections::HashSet<_> = rec
        .outcome
        .best_state
        .rewritings()
        .iter()
        .flat_map(|r| r.views_used())
        .collect();
    for v in &rec.views {
        assert!(used.contains(&v.id), "view {} unused", v.id);
    }
}
