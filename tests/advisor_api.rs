//! Integration tests for the advisor session API: session reuse must be
//! observable (and agree with one-shot selection), every misconfiguration
//! must surface as a `SelectionError`, and deployments must answer and
//! maintain correctly.

use rdfviews::model::Id;
use rdfviews::prelude::*;

fn painter_db() -> Dataset {
    let mut db = Dataset::new();
    for i in 0..30 {
        let s = format!("s{i}");
        db.insert_terms(
            Term::uri(s.as_str()),
            Term::uri("p"),
            Term::uri(format!("o{}", i % 3)),
        );
        db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("c"));
    }
    db
}

fn museum_db() -> (Dataset, Schema, VocabIds) {
    let mut db = Dataset::new();
    let vocab = VocabIds::intern(db.dict_mut());
    let painting = db.dict_mut().intern_uri("painting");
    let picture = db.dict_mut().intern_uri("picture");
    let is_exp_in = db.dict_mut().intern_uri("isExpIn");
    let is_locat_in = db.dict_mut().intern_uri("isLocatIn");
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubClassOf(painting, picture));
    schema.add(SchemaStatement::SubPropertyOf(is_exp_in, is_locat_in));
    for i in 0..12 {
        let x = db.dict_mut().intern_uri(&format!("item{i}"));
        let class = if i % 2 == 0 { painting } else { picture };
        db.store_mut().insert([x, vocab.rdf_type, class]);
        let museum = db.dict_mut().intern_uri(&format!("museum{}", i % 4));
        let prop = if i % 3 == 0 { is_exp_in } else { is_locat_in };
        db.store_mut().insert([x, prop, museum]);
    }
    (db, schema, vocab)
}

/// Two `recommend` calls on one session agree with two fresh
/// `select_views` calls, and the second call does zero statistics work.
#[test]
fn session_reuse_agrees_with_one_shot_selection() {
    let mut db = painter_db();
    let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let workload = vec![q];

    let mut advisor = Advisor::builder(&db).build().unwrap();
    let first = advisor.recommend(&workload).unwrap();
    let collected = advisor.stats_collections();
    assert!(collected > 0);
    let second = advisor.recommend(&workload).unwrap();
    assert_eq!(
        advisor.stats_collections(),
        collected,
        "second recommend must skip stats collection entirely"
    );

    let fresh1 = select_views(
        db.store(),
        db.dict(),
        None,
        &workload,
        &SelectionOptions::recommended(),
    );
    let fresh2 = select_views(
        db.store(),
        db.dict(),
        None,
        &workload,
        &SelectionOptions::recommended(),
    );
    for (session, fresh) in [(&first, &fresh1), (&second, &fresh2)] {
        assert_eq!(session.outcome.best_cost, fresh.outcome.best_cost);
        assert_eq!(
            session.outcome.best_state.signature(),
            fresh.outcome.best_state.signature()
        );
        assert_eq!(session.views.len(), fresh.views.len());
    }
}

/// Saturation happens once at build time, never per recommendation.
#[test]
fn saturation_cached_across_recommendations() {
    let (mut db, schema, vocab) = museum_db();
    let q = parse_query(
        "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatIn, X2)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let q2 = parse_query("q2(X) :- t(X, rdf:type, painting)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db)
        .schema(&schema, &vocab)
        .reasoning(ReasoningMode::Saturation)
        .build()
        .unwrap();
    assert_eq!(advisor.saturation_runs(), 1);
    advisor.recommend(std::slice::from_ref(&q)).unwrap();
    let after_first = advisor.stats_collections();
    // A new query extends the catalog; the already-known one stays free.
    advisor.recommend(&[q.clone(), q2]).unwrap();
    assert!(advisor.stats_collections() > after_first);
    let after_second = advisor.stats_collections();
    advisor.recommend(std::slice::from_ref(&q)).unwrap();
    assert_eq!(advisor.stats_collections(), after_second);
    assert_eq!(advisor.saturation_runs(), 1, "saturation ran exactly once");
}

#[test]
fn missing_schema_is_err_not_panic() {
    let db = painter_db();
    for mode in [
        ReasoningMode::Saturation,
        ReasoningMode::PreReformulation,
        ReasoningMode::PostReformulation,
    ] {
        let err = Advisor::builder(&db).reasoning(mode).build().unwrap_err();
        assert_eq!(err, SelectionError::SchemaRequired(mode));
    }
}

#[test]
fn empty_workload_is_err() {
    let db = painter_db();
    let mut advisor = Advisor::builder(&db).build().unwrap();
    assert_eq!(
        advisor.recommend(&[]).unwrap_err(),
        SelectionError::EmptyWorkload
    );
    assert_eq!(
        advisor.recommend_partitioned(&[], true).unwrap_err(),
        SelectionError::EmptyWorkload
    );
}

#[test]
fn strict_budget_is_err() {
    let mut db = painter_db();
    let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db)
        .strict_budget(true)
        .max_states(1)
        .build()
        .unwrap();
    assert!(matches!(
        advisor.recommend(&[q]).unwrap_err(),
        SelectionError::BudgetExhausted { .. }
    ));
}

/// Partitioned recommendation through the session answers the whole
/// workload and matches the one-shot partitioned entry point.
#[test]
fn partitioned_through_session() {
    let mut db = Dataset::new();
    for i in 0..40 {
        let s = format!("s{i}");
        db.insert_terms(
            Term::uri(s.as_str()),
            Term::uri(format!("p{}", i % 4)),
            Term::uri(format!("o{}", i % 5)),
        );
    }
    let queries = vec![
        parse_query("q0(X) :- t(X, <p0>, Y)", db.dict_mut())
            .unwrap()
            .query,
        parse_query("q1(X) :- t(X, <p1>, <o1>)", db.dict_mut())
            .unwrap()
            .query,
        parse_query("q2(X, Y) :- t(X, <p2>, Y)", db.dict_mut())
            .unwrap()
            .query,
    ];
    let mut advisor = Advisor::builder(&db).calibrate_cm(false).build().unwrap();
    for parallel in [false, true] {
        let rec = advisor.recommend_partitioned(&queries, parallel).unwrap();
        assert_eq!(rec.branch_of.len(), 3);
        let joint = select_views_partitioned(
            db.store(),
            db.dict(),
            None,
            &queries,
            &SelectionOptions {
                calibrate_cm: false,
                ..Default::default()
            },
            parallel,
        );
        assert_eq!(rec.outcome.best_cost, joint.outcome.best_cost);
    }
    // Third run: catalog fully warm.
    let collected = advisor.stats_collections();
    advisor.recommend_partitioned(&queries, true).unwrap();
    assert_eq!(advisor.stats_collections(), collected);
}

/// Deployments answer from the views alone and absorb inserts + deletes.
#[test]
fn deployment_lifecycle() {
    let mut db = painter_db();
    let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(std::slice::from_ref(&q)).unwrap();
    let mut deployment = advisor.deploy(rec).unwrap();

    let direct = evaluate(db.store(), &deployment.recommendation().workload[0]);
    assert_eq!(deployment.answer(0).unwrap(), direct);
    assert!(matches!(
        deployment.answer(9).unwrap_err(),
        SelectionError::UnknownQuery { index: 9, len: 1 }
    ));

    // Feed an insert + delete cycle; the deployment stays consistent with
    // evaluation over its own maintained base store.
    let s = db.dict_mut().intern_uri("newbie");
    let p = db.dict().lookup_uri("p").unwrap();
    let qq = db.dict().lookup_uri("q").unwrap();
    let o1 = db.dict().lookup_uri("o1").unwrap();
    let c = db.dict().lookup_uri("c").unwrap();
    let before = deployment.answer(0).unwrap().len();
    deployment.insert([s, p, o1]);
    deployment.insert([s, qq, c]);
    assert_eq!(deployment.answer(0).unwrap().len(), before + 1);
    deployment.delete([s, p, o1]);
    assert_eq!(deployment.answer(0).unwrap().len(), before);
    let fresh = evaluate(deployment.store(), &deployment.recommendation().workload[0]);
    assert_eq!(deployment.answer(0).unwrap(), fresh);
}

/// Under saturation reasoning the deployment materializes over the
/// session's cached saturated copy, so implicit answers are preserved.
#[test]
fn deployment_under_saturation_keeps_implicit_answers() {
    let (mut db, schema, vocab) = museum_db();
    let q = parse_query(
        "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatIn, X2)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let saturated = rdfviews::schema::saturated_copy(db.store(), &schema, &vocab);
    let truth = evaluate(&saturated, &q);
    assert!(truth.len() > evaluate(db.store(), &q).len());
    for mode in [ReasoningMode::Saturation, ReasoningMode::PostReformulation] {
        let mut advisor = Advisor::builder(&db)
            .schema(&schema, &vocab)
            .reasoning(mode)
            .build()
            .unwrap();
        let rec = advisor.recommend(std::slice::from_ref(&q)).unwrap();
        let mut deployment = advisor.deploy(rec).unwrap();
        assert_eq!(
            deployment.answer(0).unwrap(),
            truth,
            "{mode:?} deployment must include implicit answers"
        );
    }
}

/// Saturation-mode deployments stay entailment-aware under updates: an
/// inserted triple carries its RDFS consequences into the views, and
/// deleting it retracts exactly the entailments that lose their last
/// derivation.
#[test]
fn saturation_deployment_maintains_entailments() {
    let (mut db, schema, vocab) = museum_db();
    // painting ⊑ picture, isExpIn ⊑p isLocatIn (from museum_db).
    let q = parse_query(
        "q(X1, X2) :- t(X1, rdf:type, picture), t(X1, isLocatIn, X2)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let mut advisor = Advisor::builder(&db)
        .schema(&schema, &vocab)
        .reasoning(ReasoningMode::Saturation)
        .build()
        .unwrap();
    let rec = advisor.recommend(std::slice::from_ref(&q)).unwrap();
    let mut deployment = advisor.deploy(rec).unwrap();
    let before = deployment.answer(0).unwrap().len();

    // A new *painting* exhibited somewhere: only entailment makes it a
    // picture located there.
    let item = db.dict_mut().intern_uri("freshItem");
    let museum = db.dict_mut().intern_uri("freshMuseum");
    let painting = db.dict().lookup_uri("painting").unwrap();
    let is_exp_in = db.dict().lookup_uri("isExpIn").unwrap();
    let rdf_type = vocab.rdf_type;
    deployment.insert([item, rdf_type, painting]);
    deployment.insert([item, is_exp_in, museum]);
    let after = deployment.answer(0).unwrap();
    assert_eq!(after.len(), before + 1, "entailed answer must appear");
    assert!(after.contains(&[item, museum]));

    // Retracting the explicit membership removes the entailed one too.
    deployment.delete([item, rdf_type, painting]);
    let reverted = deployment.answer(0).unwrap();
    assert_eq!(reverted.len(), before, "entailed answer must retract");
    // And the base store agrees with a from-scratch saturation of the
    // corresponding explicit state.
    let mut explicit = db.store().clone();
    explicit.insert([item, is_exp_in, museum]);
    let resat = rdfviews::schema::saturated_copy(&explicit, &schema, &vocab);
    assert_eq!(deployment.store().len(), resat.len());

    // Deleting an implicit triple directly is a no-op: it has no explicit
    // counterpart to retract.
    let picture = db.dict().lookup_uri("picture").unwrap();
    let item0 = db.dict().lookup_uri("item0").unwrap(); // a painting ⇒ implicit picture
    let stats = deployment.delete([item0, rdf_type, picture]);
    assert_eq!(stats, MaintenanceStats::default());
}

/// A failed incremental recommendation must not commit the workload
/// change, so a retry does not duplicate the query.
#[test]
fn incremental_add_rolls_back_on_failure() {
    let mut db = painter_db();
    let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db)
        .strict_budget(true)
        .max_states(1)
        .build()
        .unwrap();
    let err = advisor
        .recommend_incremental(WorkloadChange::Add(q.clone()))
        .unwrap_err();
    assert!(matches!(err, SelectionError::BudgetExhausted { .. }));
    assert!(advisor.workload().is_empty(), "failed Add must roll back");
    // Retry with a workable budget: exactly one copy of the query.
    advisor = Advisor::builder(&db).build().unwrap();
    advisor
        .recommend_incremental(WorkloadChange::Add(q))
        .unwrap();
    assert_eq!(advisor.workload().len(), 1);
}

/// The incremental workload session: add/remove queries without paying
/// for re-collection of what is already known.
#[test]
fn incremental_workload_session() {
    let mut db = painter_db();
    let q0 = parse_query("q0(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let q1 = parse_query("q1(X, Y) :- t(X, <p>, Y)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let r0 = advisor
        .recommend_incremental(WorkloadChange::Add(q0))
        .unwrap();
    let r01 = advisor
        .recommend_incremental(WorkloadChange::Add(q1))
        .unwrap();
    assert_eq!(r01.original_query_count(), 2);
    let warm = advisor.stats_collections();
    let back = advisor
        .recommend_incremental(WorkloadChange::Remove(1))
        .unwrap();
    assert_eq!(advisor.stats_collections(), warm);
    assert_eq!(back.outcome.best_cost, r0.outcome.best_cost);
    assert_eq!(advisor.workload().len(), 1);
}

/// Warm-started incremental search: after a ±1-query workload delta, the
/// frontier is seeded from the previous best state's surviving views, so
/// the search (a) never recommends worse than a cold run over the new
/// workload, and (b) creates strictly fewer states getting there.
#[test]
fn incremental_warm_start_is_no_worse_and_cheaper() {
    let mut db = painter_db();
    for i in 0..30 {
        db.insert_terms(
            Term::uri(format!("s{i}")),
            Term::uri("r"),
            Term::uri(format!("v{}", i % 2)),
        );
    }
    // q0 and q1 are isomorphic (View Fusion improves on S0), so the
    // session's previous best state is a genuinely non-initial seed.
    let q0 = parse_query("q0(X) :- t(X, <p>, Y), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let q1 = parse_query("q1(A) :- t(A, <p>, B), t(A, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let q2 = parse_query("q2(X, Y) :- t(X, <r>, Y), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;

    // Cold baselines from a throwaway session, one per workload.
    let cold = |workload: &[ConjunctiveQuery]| {
        let mut advisor = Advisor::builder(&db).build().unwrap();
        advisor.recommend(workload).unwrap()
    };
    let cold_012 = cold(&[q0.clone(), q1.clone(), q2.clone()]);
    let cold_02 = cold(&[q0.clone(), q2.clone()]);

    // Warm session: grow the workload one query at a time, then shrink.
    let mut advisor = Advisor::builder(&db).build().unwrap();
    advisor
        .recommend_incremental(WorkloadChange::Add(q0))
        .unwrap();
    advisor
        .recommend_incremental(WorkloadChange::Add(q1))
        .unwrap();
    let warm_add = advisor
        .recommend_incremental(WorkloadChange::Add(q2))
        .unwrap();
    assert!(
        warm_add.outcome.best_cost <= cold_012.outcome.best_cost + 1e-9,
        "warm add: {} vs cold {}",
        warm_add.outcome.best_cost,
        cold_012.outcome.best_cost
    );
    assert!(
        warm_add.outcome.stats.created < cold_012.outcome.stats.created,
        "warm add created {} vs cold {}",
        warm_add.outcome.stats.created,
        cold_012.outcome.stats.created
    );

    let warm_remove = advisor
        .recommend_incremental(WorkloadChange::Remove(1))
        .unwrap();
    assert!(
        warm_remove.outcome.best_cost <= cold_02.outcome.best_cost + 1e-9,
        "warm remove: {} vs cold {}",
        warm_remove.outcome.best_cost,
        cold_02.outcome.best_cost
    );
    assert!(
        warm_remove.outcome.stats.created < cold_02.outcome.stats.created,
        "warm remove created {} vs cold {}",
        warm_remove.outcome.stats.created,
        cold_02.outcome.stats.created
    );
    assert_eq!(advisor.workload().len(), 2);
    warm_remove.outcome.best_state.check_invariants().unwrap();
}

/// Deployments can be interrogated for raw tuples (dictionary ids stay
/// valid across the whole lifecycle).
#[test]
fn deployment_tuples_decode() {
    let mut db = painter_db();
    let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&[q]).unwrap();
    let mut deployment = advisor.deploy(rec).unwrap();
    let answers = deployment.answer(0).unwrap();
    for tuple in answers.tuples() {
        let term = db.dict().term(tuple[0]);
        assert!(term.to_string().contains('s'), "unexpected term {term}");
    }
    let ids: Vec<Id> = answers.tuples().iter().map(|t| t[0]).collect();
    assert_eq!(ids.len(), answers.len());
}
