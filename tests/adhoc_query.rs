//! The ad-hoc query API: planning and answering arbitrary conjunctive
//! queries over a deployed recommendation.
//!
//! * **Workload parity** — for every workload query, `plan()` on the tuned
//!   deployment finds a views-only plan whose answers are set-equal to
//!   direct evaluation (and to the index-based `answer()` delegate).
//! * **Typed failure** — a query with no complete view cover is a
//!   `NoViewsOnlyPlan` error under the views-only policy, never a wrong or
//!   empty result; `BaseFallback` and `Hybrid` answer it correctly.
//! * **Soundness** — proptest: every views-only plan's unfolded rewriting
//!   is equivalent to the (minimized) input query, the same Definition-2.2
//!   yardstick the selection search itself uses.
//! * **Staleness** — plans record the store version; execution after
//!   maintenance refuses with `StaleSession` until re-planned.

use proptest::prelude::*;

use rdfviews::core::rewrite::{plan_component_count, query_component_count, unfold_plan};
use rdfviews::engine::evaluate;
use rdfviews::prelude::*;
use rdfviews::query::containment::equivalent;
use rdfviews::query::minimize;
use rdfviews::schema::saturated_copy;
use rdfviews::workload::generate_matching_data;

/// A dataset with three linked predicates: paintings → artists → cities,
/// plus an `unindexed` predicate the workload never touches.
fn museum() -> Dataset {
    let mut db = Dataset::new();
    let painted_by = db.dict_mut().intern_uri("paintedBy");
    let exhibited_in = db.dict_mut().intern_uri("exhibitedIn");
    let born_in = db.dict_mut().intern_uri("bornIn");
    for i in 0..36 {
        let painting = db.dict_mut().intern_uri(&format!("painting{i}"));
        let artist = db.dict_mut().intern_uri(&format!("artist{}", i % 6));
        let site = db.dict_mut().intern_uri(&format!("site{}", i % 4));
        db.store_mut().insert([painting, painted_by, artist]);
        db.store_mut().insert([painting, exhibited_in, site]);
    }
    for a in 0..6 {
        let artist = db.dict_mut().intern_uri(&format!("artist{a}"));
        let city = db.dict_mut().intern_uri(&format!("city{}", a % 2));
        db.store_mut().insert([artist, born_in, city]);
    }
    db
}

fn museum_workload(db: &mut Dataset) -> Vec<ConjunctiveQuery> {
    [
        "q1(P, A) :- t(P, <paintedBy>, A)",
        "q2(P, M) :- t(P, <exhibitedIn>, M)",
        "q3(A, M) :- t(P, <paintedBy>, A), t(P, <exhibitedIn>, M)",
    ]
    .iter()
    .map(|s| parse_query(s, db.dict_mut()).unwrap().query)
    .collect()
}

#[test]
fn every_workload_query_gets_a_views_only_plan() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let views = rec.views.clone();
    let mut dep = advisor.deploy(rec).unwrap();
    for (idx, q) in workload.iter().enumerate() {
        let plan = dep
            .plan_with(q, AnswerPolicy::ViewsOnly)
            .unwrap_or_else(|e| panic!("workload query {idx} must be views-only plannable: {e}"));
        assert!(plan.is_views_only());
        assert_eq!(plan.residual_atoms(), 0);
        // The plan's unfolding is equivalent to the minimized query.
        for b in plan.branches() {
            assert!(equivalent(&unfold_plan(&views, &b.plan), &b.query));
        }
        // Ad-hoc answers == direct evaluation == the index-based delegate.
        let adhoc = dep.answer_query(&plan).unwrap();
        assert_eq!(adhoc, evaluate(db.store(), q), "query {idx}");
        assert_eq!(adhoc, dep.answer(idx).unwrap(), "query {idx}");
        assert!(plan.estimated_cost() > 0.0);
    }
}

#[test]
fn adhoc_specialization_is_views_only_and_correct() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    // Not in the workload: a selection + join over covered predicates.
    let adhoc = parse_query(
        "a(P, M) :- t(P, <paintedBy>, <artist2>), t(P, <exhibitedIn>, M)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    let plan = dep.plan(&adhoc).unwrap();
    assert!(plan.is_views_only());
    assert!(!plan.views_used().is_empty());
    assert_eq!(
        dep.answer_query(&plan).unwrap(),
        evaluate(db.store(), &adhoc)
    );
    assert_eq!(
        dep.answer_adhoc(&adhoc).unwrap(),
        evaluate(db.store(), &adhoc)
    );
}

#[test]
fn no_cover_is_a_typed_error_not_wrong_answers() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    // bornIn appears in no view: no complete views-only rewriting exists.
    let adhoc = parse_query("a(A, C) :- t(A, <bornIn>, C)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();

    let err = dep.plan_with(&adhoc, AnswerPolicy::ViewsOnly).unwrap_err();
    assert_eq!(err, SelectionError::NoViewsOnlyPlan { residual_atoms: 1 });

    // BaseFallback answers the whole query from the base store.
    let plan = dep.plan_with(&adhoc, AnswerPolicy::BaseFallback).unwrap();
    assert!(!plan.is_views_only());
    assert_eq!(plan.residual_atoms(), 1);
    assert!(plan.views_used().is_empty());
    assert_eq!(
        dep.answer_query(&plan).unwrap(),
        evaluate(db.store(), &adhoc)
    );
}

#[test]
fn hybrid_plans_mix_views_and_base_without_cross_products() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    // paintedBy is view-covered; bornIn must come from the base store.
    let adhoc = parse_query(
        "a(P, C) :- t(P, <paintedBy>, A), t(A, <bornIn>, C)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let views = rec.views.clone();
    let mut dep = advisor.deploy(rec).unwrap();
    let plan = dep.plan_with(&adhoc, AnswerPolicy::Hybrid).unwrap();
    assert!(!plan.is_views_only());
    assert_eq!(plan.residual_atoms(), 1, "only bornIn needs the base store");
    assert!(!plan.views_used().is_empty(), "paintedBy scans a view");
    for b in plan.branches() {
        assert!(equivalent(&unfold_plan(&views, &b.plan), &b.query));
        assert_eq!(
            plan_component_count(&b.plan),
            query_component_count(&b.query),
            "hybrid plans must not introduce cross products"
        );
    }
    assert_eq!(
        dep.answer_query(&plan).unwrap(),
        evaluate(db.store(), &adhoc)
    );
}

#[test]
fn unsafe_and_empty_queries_are_rejected() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let dep = advisor.deploy(rec).unwrap();
    let empty = ConjunctiveQuery::new(vec![], vec![]);
    assert!(matches!(
        dep.plan(&empty).unwrap_err(),
        SelectionError::UnsupportedQuery { .. }
    ));
    use rdfviews::query::{Atom, QTerm, Var};
    let unsafe_q = ConjunctiveQuery::new(
        vec![QTerm::Var(Var(9))],
        vec![Atom::new(Var(0), Var(1), Var(2))],
    );
    assert!(matches!(
        dep.plan(&unsafe_q).unwrap_err(),
        SelectionError::UnsupportedQuery { .. }
    ));
}

#[test]
fn foreign_plans_are_refused() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    let adhoc = parse_query("a(P, A) :- t(P, <paintedBy>, A)", db.dict_mut())
        .unwrap()
        .query;
    // Two deployments over the SAME dataset (equal store versions): a plan
    // from one must not execute on the other — view ids are per-lineage.
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec_a = advisor.recommend(&workload).unwrap();
    let rec_b = advisor.recommend(&workload[..1]).unwrap();
    let dep_a = advisor.deploy(rec_a).unwrap();
    let mut dep_b = advisor.deploy(rec_b).unwrap();
    let plan_a = dep_a.plan(&adhoc).unwrap();
    assert_eq!(
        dep_b.answer_query(&plan_a).unwrap_err(),
        SelectionError::ForeignPlan
    );
    // A clone shares the lineage: its plans stay valid.
    let mut clone_b = dep_b.clone();
    let plan_b = dep_b.plan(&adhoc).unwrap();
    assert_eq!(
        clone_b.answer_query(&plan_b).unwrap(),
        evaluate(db.store(), &adhoc)
    );
}

#[test]
fn oversized_queries_are_rejected_not_silently_degraded() {
    use rdfviews::query::{Atom, QTerm, Var};
    let mut db = museum();
    let workload = museum_workload(&mut db);
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let dep = advisor.deploy(rec).unwrap();
    // A 65-atom chain exceeds the planner's 64-atom coverage mask.
    let atoms: Vec<Atom> = (0..65u32)
        .map(|i| Atom::new(Var(i), rdf_model_id(1), Var(i + 1)))
        .collect();
    let big = ConjunctiveQuery::new(vec![QTerm::Var(Var(0))], atoms);
    for policy in [
        AnswerPolicy::ViewsOnly,
        AnswerPolicy::Hybrid,
        AnswerPolicy::BaseFallback,
    ] {
        assert!(matches!(
            dep.plan_with(&big, policy).unwrap_err(),
            SelectionError::UnsupportedQuery { .. }
        ));
    }
}

fn rdf_model_id(i: u32) -> rdfviews::model::Id {
    rdfviews::model::Id(i)
}

#[test]
fn plans_go_stale_after_maintenance_and_replan_recovers() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    let adhoc = parse_query(
        "a(P, M) :- t(P, <paintedBy>, <artist2>), t(P, <exhibitedIn>, M)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let painting = db.dict_mut().intern_uri("late-painting");
    let painted_by = db.dict().lookup_uri("paintedBy").unwrap();
    let exhibited_in = db.dict().lookup_uri("exhibitedIn").unwrap();
    let artist2 = db.dict().lookup_uri("artist2").unwrap();
    let site0 = db.dict().lookup_uri("site0").unwrap();

    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    // The opt-in strict policy restores the pre-snapshot contract:
    // maintenance between planning and execution refuses the old plan.
    dep.set_strict(true);

    let plan = dep.plan(&adhoc).unwrap();
    let before = dep.answer_query(&plan).unwrap();

    // Maintenance moves the store version: the old plan is refused.
    dep.insert_batch(&[
        [painting, painted_by, artist2],
        [painting, exhibited_in, site0],
    ]);
    let err = dep.answer_query(&plan).unwrap_err();
    assert!(matches!(err, SelectionError::StaleSession { .. }));

    // Re-planning picks up the maintained state and sees the new painting.
    let fresh = dep.plan(&adhoc).unwrap();
    let after = dep.answer_query(&fresh).unwrap();
    assert_eq!(after.len(), before.len() + 1);
    assert_eq!(after, evaluate(dep.store(), &adhoc));
}

#[test]
fn default_policy_executes_old_plans_on_new_generations() {
    let mut db = museum();
    let workload = museum_workload(&mut db);
    let adhoc = parse_query(
        "a(P, M) :- t(P, <paintedBy>, <artist2>), t(P, <exhibitedIn>, M)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let painting = db.dict_mut().intern_uri("late-painting");
    let painted_by = db.dict().lookup_uri("paintedBy").unwrap();
    let exhibited_in = db.dict().lookup_uri("exhibitedIn").unwrap();
    let artist2 = db.dict().lookup_uri("artist2").unwrap();
    let site0 = db.dict().lookup_uri("site0").unwrap();

    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();

    let plan = dep.plan(&adhoc).unwrap();
    let before = dep.answer_query(&plan).unwrap();
    // A snapshot pinned before the batch serves the old generation…
    let pinned = dep.snapshot();

    dep.insert_batch(&[
        [painting, painted_by, artist2],
        [painting, exhibited_in, site0],
    ]);

    // …while the default read path executes the *same* plan against the
    // newly published generation — no StaleSession, answers current.
    let after = dep.answer_query(&plan).unwrap();
    assert_eq!(after.len(), before.len() + 1);
    assert_eq!(after, evaluate(dep.store(), &adhoc));
    assert_eq!(pinned.answer_query(&plan).unwrap(), before);
}

#[test]
fn saturation_deployment_answers_adhoc_with_entailment() {
    let mut db = Dataset::new();
    let vocab = VocabIds::intern(db.dict_mut());
    let painting = db.dict_mut().intern_uri("Painting");
    let picture = db.dict_mut().intern_uri("Picture");
    let exhibited = db.dict_mut().intern_uri("exhibitedIn");
    let located = db.dict_mut().intern_uri("locatedIn");
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubClassOf(painting, picture));
    schema.add(SchemaStatement::SubPropertyOf(exhibited, located));
    for i in 0..20 {
        let x = db.dict_mut().intern_uri(&format!("item{i}"));
        let class = if i % 2 == 0 { painting } else { picture };
        db.store_mut().insert([x, vocab.rdf_type, class]);
        let site = db.dict_mut().intern_uri(&format!("site{}", i % 3));
        let prop = if i % 3 == 0 { exhibited } else { located };
        db.store_mut().insert([x, prop, site]);
    }
    let workload = vec![
        parse_query(
            "q(X, W) :- t(X, rdf:type, <Picture>), t(X, <locatedIn>, W)",
            db.dict_mut(),
        )
        .unwrap()
        .query,
    ];
    // Ad-hoc: a selection the workload never asked for.
    let adhoc = parse_query(
        "a(X) :- t(X, rdf:type, <Picture>), t(X, <locatedIn>, <site0>)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let truth = {
        let sat = saturated_copy(db.store(), &schema, &vocab);
        evaluate(&sat, &adhoc)
    };
    let mut advisor = Advisor::builder(&db)
        .schema(&schema, &vocab)
        .reasoning(ReasoningMode::Saturation)
        .build()
        .unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    let plan = dep.plan(&adhoc).unwrap();
    let answers = dep.answer_query(&plan).unwrap();
    assert_eq!(
        answers, truth,
        "the deployment's answers must include entailed triples"
    );
    assert!(answers.len() > evaluate(db.store(), &adhoc).len());
}

#[test]
fn post_reformulation_hybrid_reformulates_base_scans() {
    let mut db = Dataset::new();
    let vocab = VocabIds::intern(db.dict_mut());
    let painting = db.dict_mut().intern_uri("Painting");
    let picture = db.dict_mut().intern_uri("Picture");
    let exhibited = db.dict_mut().intern_uri("exhibitedIn");
    let located = db.dict_mut().intern_uri("locatedIn");
    let mut schema = Schema::new();
    schema.add(SchemaStatement::SubClassOf(painting, picture));
    schema.add(SchemaStatement::SubPropertyOf(exhibited, located));
    for i in 0..20 {
        let x = db.dict_mut().intern_uri(&format!("item{i}"));
        let class = if i % 2 == 0 { painting } else { picture };
        db.store_mut().insert([x, vocab.rdf_type, class]);
        let site = db.dict_mut().intern_uri(&format!("site{}", i % 3));
        let prop = if i % 3 == 0 { exhibited } else { located };
        db.store_mut().insert([x, prop, site]);
    }
    // The workload only covers the class atom; locatedIn stays uncovered,
    // so the ad-hoc join goes hybrid — and its base scans must be
    // reformulated (the base store is the *original* one).
    let workload = vec![
        parse_query("q(X) :- t(X, rdf:type, <Picture>)", db.dict_mut())
            .unwrap()
            .query,
    ];
    let adhoc = parse_query(
        "a(X, W) :- t(X, rdf:type, <Picture>), t(X, <locatedIn>, W)",
        db.dict_mut(),
    )
    .unwrap()
    .query;
    let truth = {
        let sat = saturated_copy(db.store(), &schema, &vocab);
        evaluate(&sat, &adhoc)
    };
    let mut advisor = Advisor::builder(&db)
        .schema(&schema, &vocab)
        .reasoning(ReasoningMode::PostReformulation)
        .build()
        .unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    let plan = dep.plan(&adhoc).unwrap();
    assert!(!plan.is_views_only());
    assert!(
        plan.branches().len() > 1,
        "reformulation must expand the hybrid plan into branches"
    );
    let answers = dep.answer_query(&plan).unwrap();
    assert_eq!(
        answers, truth,
        "hybrid base scans must stay entailment-complete"
    );
    assert!(answers.len() > evaluate(db.store(), &adhoc).len());
}

/// Random workloads: recommend, deploy, and check that every workload
/// query gets a views-only plan whose unfolding is equivalent to the
/// minimized query and whose answers match direct evaluation.
fn prop_setup(seed: u64, shape: Shape, queries: usize) -> (Dataset, Vec<ConjunctiveQuery>) {
    let mut db = Dataset::new();
    let spec = WorkloadSpec::new(queries, 3, shape, Commonality::High).with_seed(seed);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, 400);
    (Dataset::from_parts(dict, store), workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn views_only_plans_unfold_equivalent(seed in 0u64..500, queries in 1usize..3) {
        let (db, workload) = prop_setup(seed, Shape::Star, queries);
        let mut advisor = Advisor::builder(&db).build().unwrap();
        let rec = advisor.recommend(&workload).unwrap();
        let views = rec.views.clone();
        let mut dep = advisor.deploy(rec).unwrap();
        for (idx, q) in workload.iter().enumerate() {
            let plan = dep.plan_with(q, AnswerPolicy::ViewsOnly).unwrap();
            prop_assert!(plan.is_views_only());
            let minimized = minimize(q).normalized();
            for b in plan.branches() {
                prop_assert!(
                    equivalent(&unfold_plan(&views, &b.plan), &b.query),
                    "unfolded plan must be equivalent to its branch query"
                );
                prop_assert!(equivalent(&b.query, &minimized));
            }
            let adhoc = dep.answer_query(&plan).unwrap();
            prop_assert_eq!(&adhoc, &evaluate(db.store(), q));
            prop_assert_eq!(&adhoc, &dep.answer(idx).unwrap());
        }
    }
}
