//! Search-level properties: exhaustive strategies agree, heuristics trade
//! completeness for speed as the paper describes, and large-workload
//! behavior matches Section 6 qualitatively.

use std::time::Duration;

use rdfviews::core::{search, CostModel, CostWeights, SearchConfig, State, StrategyKind};
use rdfviews::model::Dataset;
use rdfviews::query::ConjunctiveQuery;
use rdfviews::stats::collect_stats;
use rdfviews::workload::{
    generate_matching_data, generate_workload, Commonality, Shape, WorkloadSpec,
};

fn setup(
    seed: u64,
    shape: Shape,
    commonality: Commonality,
    queries: usize,
    atoms: usize,
    triples: usize,
) -> (Dataset, Vec<ConjunctiveQuery>) {
    let mut db = Dataset::new();
    let spec = WorkloadSpec::new(queries, atoms, shape, commonality).with_seed(seed);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, triples);
    (Dataset::from_parts(dict, store), workload)
}

fn exhaustive(strategy: StrategyKind) -> SearchConfig {
    SearchConfig {
        strategy,
        avf: false,
        stop_var: false,
        stop_tt: false,
        time_budget: None,
        max_states: Some(400_000),
        vb_overlap_limit: 1,
        parallelism: 1,
    }
}

#[test]
fn exhaustive_strategies_find_the_same_optimum() {
    let (db, workload) = setup(3, Shape::Chain, Commonality::Low, 2, 3, 400);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let mut costs = Vec::new();
    for strat in [
        StrategyKind::ExNaive,
        StrategyKind::ExStr,
        StrategyKind::Dfs,
    ] {
        let out = search(State::initial(&workload), &model, &exhaustive(strat));
        assert!(!out.stats.out_of_budget, "{strat:?} must finish");
        costs.push((strat, out.best_cost));
    }
    for (strat, c) in &costs {
        assert!(
            (c - costs[0].1).abs() <= 1e-6 * costs[0].1.abs().max(1.0),
            "{strat:?} found {c}, expected {}",
            costs[0].1
        );
    }
}

#[test]
fn avf_and_stop_var_preserve_exhaustive_optimum_here() {
    // AVF preserves optimality (Section 5.2); STV may lose it in theory but
    // not on this workload — matching the paper's observation that
    // AVF-STV "reduces the search space while preserving view set quality".
    let (db, workload) = setup(11, Shape::Chain, Commonality::High, 2, 3, 400);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let plain = search(
        State::initial(&workload),
        &model,
        &exhaustive(StrategyKind::Dfs),
    );
    let avf = search(
        State::initial(&workload),
        &model,
        &SearchConfig {
            avf: true,
            ..exhaustive(StrategyKind::Dfs)
        },
    );
    assert!((avf.best_cost - plain.best_cost).abs() <= 1e-6 * plain.best_cost.max(1.0));
    assert!(avf.stats.created <= plain.stats.created);
    let stv = search(
        State::initial(&workload),
        &model,
        &SearchConfig {
            avf: true,
            stop_var: true,
            ..exhaustive(StrategyKind::Dfs)
        },
    );
    assert!(stv.stats.created <= avf.stats.created);
    assert!((stv.best_cost - plain.best_cost).abs() <= 1e-6 * plain.best_cost.max(1.0));
}

#[test]
fn ten_atom_queries_get_large_reductions() {
    // The headline effect (Figure 6): on unselective 10-atom queries the
    // initial state (materializing whole query results, whose multi-join
    // cardinality estimates grow with the atom count) is far costlier than
    // a factorized view set.
    let mut db = Dataset::new();
    let mut spec = WorkloadSpec::new(3, 10, Shape::Star, Commonality::High).with_seed(21);
    spec.object_const_prob = 0.0; // all atoms unselective, as in Barton-scale queries
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, 3_000);
    let db = Dataset::from_parts(dict, store);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let mut model = CostModel::new(&cat, CostWeights::default());
    let s0 = State::initial(&workload);
    model.calibrate_cm(&s0);
    let out = search(
        s0,
        &model,
        &SearchConfig {
            time_budget: Some(Duration::from_secs(5)),
            ..SearchConfig::default()
        },
    );
    assert!(
        out.rcr() > 0.5,
        "expected a large relative cost reduction, got {:.3}",
        out.rcr()
    );
}

#[test]
fn gstr_explores_fewer_states_than_dfs() {
    let (db, workload) = setup(5, Shape::Star, Commonality::Low, 2, 5, 800);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let budget = SearchConfig {
        time_budget: Some(Duration::from_secs(4)),
        ..SearchConfig::default()
    };
    let dfs = search(State::initial(&workload), &model, &budget);
    let gstr = search(
        State::initial(&workload),
        &model,
        &SearchConfig {
            strategy: StrategyKind::Gstr,
            ..budget
        },
    );
    assert!(gstr.stats.created <= dfs.stats.created);
    // Both are anytime algorithms: under a wall-clock budget either may be
    // ahead (GSTR races to low-cost states, DFS covers more of the space),
    // but neither can be worse than the initial state.
    assert!(gstr.best_cost <= gstr.initial_cost);
    assert!(dfs.best_cost <= dfs.initial_cost);
}

#[test]
fn competitors_fail_on_ten_atom_queries() {
    // Figure 4's right panel: the relational strategies outgrow memory on
    // 10-atom queries before producing any full-workload state, while DFS
    // keeps running.
    let (db, workload) = setup(9, Shape::Star, Commonality::Low, 5, 10, 3_000);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let budget = 50_000;
    for strat in [
        StrategyKind::Pruning,
        StrategyKind::Greedy,
        StrategyKind::Heuristic,
    ] {
        let out = search(
            State::initial(&workload),
            &model,
            &SearchConfig {
                strategy: strat,
                max_states: Some(budget),
                ..SearchConfig::default()
            },
        );
        assert!(
            out.stats.out_of_budget,
            "{strat:?} should exhaust the state budget"
        );
        assert_eq!(
            out.best_cost, out.initial_cost,
            "{strat:?} found no solution"
        );
    }
    // DFS with the same budget still achieves a reduction.
    let dfs = search(
        State::initial(&workload),
        &model,
        &SearchConfig {
            max_states: Some(budget),
            ..SearchConfig::default()
        },
    );
    assert!(dfs.rcr() > 0.0, "DFS must improve within the same budget");
}

#[test]
fn best_cost_trace_is_monotone() {
    let (db, workload) = setup(13, Shape::Mixed, Commonality::High, 3, 6, 1_000);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let out = search(
        State::initial(&workload),
        &model,
        &SearchConfig {
            time_budget: Some(Duration::from_secs(3)),
            ..SearchConfig::default()
        },
    );
    let trace = &out.stats.best_cost_trace;
    assert!(!trace.is_empty());
    for w in trace.windows(2) {
        assert!(w[1].1 <= w[0].1, "cost trace must decrease");
        assert!(w[1].0 >= w[0].0, "time must increase");
    }
    assert_eq!(trace.last().unwrap().1, out.best_cost);
}

#[test]
fn recommended_state_counts_match_figure5_shape() {
    // Figure 5's qualitative claims: duplicates are plentiful without
    // heuristics; AVF and STV shrink every counter. (The workload is
    // sized so all four exhaustive runs complete: the ⟨V,R⟩-precise state
    // signature explores a richer space than the old view-set-only one.)
    let (db, workload) = setup(17, Shape::Chain, Commonality::Low, 2, 3, 800);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let run = |avf: bool, stv: bool| {
        search(
            State::initial(&workload),
            &model,
            &SearchConfig {
                avf,
                stop_var: stv,
                ..exhaustive(StrategyKind::Dfs)
            },
        )
    };
    let none = run(false, false);
    let avf = run(true, false);
    let stv = run(false, true);
    let both = run(true, true);
    assert!(none.stats.duplicates > 0);
    assert!(avf.stats.created <= none.stats.created);
    assert!(stv.stats.created <= none.stats.created);
    assert!(both.stats.created <= stv.stats.created.max(avf.stats.created));
    assert!(stv.stats.discarded > 0);
}
