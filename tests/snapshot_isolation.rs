//! Snapshot isolation under concurrency: pinned readers vs a live writer.
//!
//! The contract under test (the default read policy):
//!
//! * a reader that pins a generation keeps getting **exactly** the answers
//!   that generation had — bit-identical to a sequential evaluation at the
//!   pinned store version — no matter how many maintenance batches the
//!   writer applies concurrently;
//! * readers never observe `StaleSession` (that refusal is strict-mode
//!   only now) and never block the writer;
//! * re-reading the same pin is stable: same version, same answers.
//!
//! The sequential truth comes from an oracle clone of the deployment that
//! absorbs the identical batch feed ahead of time, recording every
//! published generation's answers keyed by store version.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

use rdfviews::engine::Answers;
use rdfviews::model::{Id, Triple};
use rdfviews::prelude::*;

const READERS: usize = 4;
const BATCHES: usize = 40;
/// Reads the writer waits for (across all readers) before raising stop.
const MIN_READS: usize = 64;

/// Deterministic MMIX linear congruential generator — the feed must be
/// identical for the oracle and the live deployment.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Base data: 20 subjects with `(s_i, p, o_{i%4})` and `(s_i, q, c)`,
/// plus a pre-interned pool of feed subjects `x_0..x_149`.
fn feed_dataset() -> (Dataset, Vec<Id>, [Id; 4]) {
    let mut db = Dataset::new();
    let p = db.dict_mut().intern_uri("p");
    let q = db.dict_mut().intern_uri("q");
    let o1 = db.dict_mut().intern_uri("o1");
    let c = db.dict_mut().intern_uri("c");
    for i in 0..20 {
        let s = db.dict_mut().intern_uri(&format!("s{i}"));
        let o = db.dict_mut().intern_uri(&format!("o{}", i % 4));
        db.store_mut().insert([s, p, o]);
        db.store_mut().insert([s, q, c]);
    }
    let pool: Vec<Id> = (0..150)
        .map(|k| db.dict_mut().intern_uri(&format!("x{k}")))
        .collect();
    (db, pool, [p, q, o1, c])
}

/// The interleaved maintenance feed: each step is `(is_insert, triples)`.
/// Inserts draw fresh pool subjects; deletes retract previously inserted
/// ones — every batch is well-defined (inserts absent, deletes present).
fn build_feed(pool: &[Id], ids: [Id; 4]) -> Vec<(bool, Vec<Triple>)> {
    let [p, q, o1, c] = ids;
    let mut rng = Lcg(0x5eed_1234_abcd_0001);
    let mut next_fresh = 0usize;
    let mut active: Vec<Id> = Vec::new();
    let mut feed = Vec::with_capacity(BATCHES);
    for step in 0..BATCHES {
        let delete = step % 2 == 1 && active.len() >= 4;
        let mut batch = Vec::new();
        if delete {
            let n = 1 + (rng.next() as usize) % 3;
            for _ in 0..n.min(active.len()) {
                let victim = active.swap_remove((rng.next() as usize) % active.len());
                batch.push([victim, p, o1]);
                batch.push([victim, q, c]);
            }
        } else {
            let n = 1 + (rng.next() as usize) % 4;
            for _ in 0..n {
                let s = pool[next_fresh];
                next_fresh += 1;
                active.push(s);
                batch.push([s, p, o1]);
                batch.push([s, q, c]);
            }
        }
        feed.push((!delete, batch));
    }
    feed
}

fn apply(dep: &mut Deployment, step: &(bool, Vec<Triple>)) {
    if step.0 {
        dep.insert_batch(&step.1);
    } else {
        dep.delete_batch(&step.1);
    }
}

/// Compile-time proof that the snapshot handles cross threads.
#[test]
fn snapshot_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DeploymentSnapshot>();
    assert_send_sync::<SnapshotReader>();
}

#[test]
fn pinned_readers_see_sequential_answers_under_concurrent_batches() {
    let (mut db, pool, ids) = feed_dataset();
    let workload = vec![
        parse_query("q1(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query,
        parse_query("q2(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query,
    ];
    let adhoc = parse_query("a(X) :- t(X, <p>, <o1>)", db.dict_mut())
        .unwrap()
        .query;
    let mut advisor = Advisor::builder(&db).build().unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    let feed = build_feed(&pool, ids);

    // -- Sequential truth: an oracle clone absorbs the identical feed,
    //    recording every published generation's answers by version. The
    //    clone shares the version counter start, so versions line up.
    let mut oracle = dep.clone();
    let mut truth: HashMap<u64, Vec<Answers>> = HashMap::new();
    let record = |o: &mut Deployment, t: &mut HashMap<u64, Vec<Answers>>| {
        let snap = o.snapshot();
        let mut per_query: Vec<Answers> = (0..2).map(|qi| snap.answer(qi).unwrap()).collect();
        per_query.push(snap.answer_adhoc(&adhoc).unwrap());
        t.insert(snap.version(), per_query);
    };
    record(&mut oracle, &mut truth);
    for step in &feed {
        apply(&mut oracle, step);
        record(&mut oracle, &mut truth);
    }
    assert!(
        truth.len() > BATCHES / 2,
        "feed must publish many distinct generations"
    );

    // -- Concurrent phase: READERS pin-and-check in a loop while the main
    //    thread applies the same feed to the live deployment.
    let reader = dep.reader();
    let stop = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..READERS {
            scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let snap = reader.snapshot();
                    let v = snap.version();
                    let expected = truth
                        .get(&v)
                        .unwrap_or_else(|| panic!("pinned unpublished generation v{v}"));
                    // Bit-identical to the sequential evaluation at v —
                    // and never a StaleSession under the default policy.
                    for (qi, exp) in expected[..2].iter().enumerate() {
                        let got = snap.answer(qi).expect("pinned workload read failed");
                        assert_eq!(&got, exp, "workload q{qi} diverged at v{v}");
                    }
                    let got = snap
                        .answer_adhoc(&adhoc)
                        .expect("pinned ad-hoc read failed");
                    assert_eq!(&got, &expected[2], "ad-hoc answers diverged at v{v}");
                    // Pin stability: the same snapshot re-read is unchanged
                    // even if the writer published since.
                    assert_eq!(snap.version(), v);
                    assert_eq!(
                        snap.answer_adhoc(&adhoc).expect("pinned re-read failed"),
                        got,
                        "re-reading the same pin changed answers at v{v}"
                    );
                    reads.fetch_add(1, Ordering::AcqRel);
                }
            });
        }
        for step in &feed {
            apply(&mut dep, step);
            thread::yield_now();
        }
        // Let readers demonstrably overlap the final published state too.
        while reads.load(Ordering::Acquire) < MIN_READS {
            thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    // The live deployment converged to the oracle's final state.
    assert_eq!(dep.store().version(), oracle.store().version());
    assert_eq!(
        dep.snapshot().answer_adhoc(&adhoc).unwrap(),
        oracle.snapshot().answer_adhoc(&adhoc).unwrap()
    );
}
