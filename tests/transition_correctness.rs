//! Property tests for the four transitions (Definitions 3.2–3.5): after
//! *any* sequence of transitions,
//!
//! 1. the state invariants of Definition 2.3 hold;
//! 2. unfolding each rewriting yields a query equivalent to the original
//!    (Definition 2.2's equivalence requirement);
//! 3. materializing the views and executing the rewritings returns exactly
//!    the same answers as evaluating the queries on the triple table.
//!
//! The third check runs the entire stack end to end: store, engine,
//! transitions and rewiring must all agree.

use proptest::prelude::*;

use rdfviews::core::transitions::{apply, enumerate, TransitionConfig, TransitionKind};
use rdfviews::core::State;
use rdfviews::engine::evaluate;
use rdfviews::exec::{answer_query, materialize_state};
use rdfviews::model::Dataset;
use rdfviews::query::containment::equivalent;
use rdfviews::query::ConjunctiveQuery;
use rdfviews::workload::{
    generate_matching_data, generate_workload, Commonality, Shape, WorkloadSpec,
};

/// Builds a deterministic workload + matching data for a given seed.
fn setup(
    seed: u64,
    shape: Shape,
    queries: usize,
    atoms: usize,
) -> (Dataset, Vec<ConjunctiveQuery>) {
    let mut db = Dataset::new();
    let spec = WorkloadSpec::new(queries, atoms, shape, Commonality::High).with_seed(seed);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, 600);
    (Dataset::from_parts(dict, store), workload)
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Star),
        Just(Shape::Chain),
        Just(Shape::Cycle),
        Just(Shape::RandomSparse),
        Just(Shape::RandomDense),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_transition_sequences_preserve_semantics(
        seed in 0u64..5_000,
        shape in shape_strategy(),
        picks in prop::collection::vec((0usize..4, 0usize..64), 1..6),
    ) {
        let (db, workload) = setup(seed, shape, 2, 3);
        let cfg = TransitionConfig::default();
        let mut state = State::initial(&workload);
        for (kind_idx, trans_idx) in picks {
            let kind = TransitionKind::ALL[kind_idx];
            let available = enumerate(&state, kind, &cfg);
            if available.is_empty() {
                continue;
            }
            let t = &available[trans_idx % available.len()];
            state = apply(&state, t);

            // (1) structural invariants
            prop_assert_eq!(state.check_invariants(), Ok(()));

            // (2) unfold equivalence for every query
            for (i, q) in workload.iter().enumerate() {
                let unfolded = rdfviews::core::unfold::unfold(&state, i);
                prop_assert!(
                    equivalent(&unfolded, q),
                    "after {:?}: rewriting {} not equivalent",
                    t, i
                );
            }
        }

        // (3) end-to-end execution equality
        let mv = materialize_state(db.store(), &state);
        for (i, q) in workload.iter().enumerate() {
            let from_views = answer_query(&state, &mv, i);
            let direct = evaluate(db.store(), q);
            prop_assert_eq!(
                &from_views, &direct,
                "query {} differs through views (state has {} views)",
                i, state.view_count()
            );
        }
    }

    #[test]
    fn stratified_sequences_reach_valid_states(
        seed in 0u64..2_000,
        shape in shape_strategy(),
        budget in 1usize..8,
    ) {
        // Apply transitions phase by phase (a stratified path, Definition
        // 5.3) and verify the final state end to end.
        let (db, workload) = setup(seed, shape, 1, 4);
        let cfg = TransitionConfig::default();
        let mut state = State::initial(&workload);
        let mut applied = 0;
        for kind in TransitionKind::ALL {
            while applied < budget {
                let available = enumerate(&state, kind, &cfg);
                let Some(t) = available.first() else { break };
                state = apply(&state, t);
                applied += 1;
            }
        }
        prop_assert_eq!(state.check_invariants(), Ok(()));
        let mv = materialize_state(db.store(), &state);
        for (i, q) in workload.iter().enumerate() {
            prop_assert_eq!(&answer_query(&state, &mv, i), &evaluate(db.store(), q));
        }
    }
}

/// Deterministic regression: a full SC*-then-JC*-then-VF* decomposition of
/// a 2-query workload evaluates correctly through views.
#[test]
fn full_decomposition_roundtrip() {
    let (db, workload) = setup(7, Shape::Star, 2, 4);
    let cfg = TransitionConfig::default();
    let mut state = State::initial(&workload);
    for kind in [TransitionKind::Sc, TransitionKind::Jc, TransitionKind::Vf] {
        loop {
            let ts = enumerate(&state, kind, &cfg);
            let Some(t) = ts.first() else { break };
            state = apply(&state, t);
        }
    }
    state.check_invariants().unwrap();
    let mv = materialize_state(db.store(), &state);
    for (i, q) in workload.iter().enumerate() {
        assert_eq!(answer_query(&state, &mv, i), evaluate(db.store(), q));
    }
    // Full decomposition plus fusion ends in few, generic views.
    assert!(state.view_count() <= 2, "views: {}", state.view_count());
}
