//! Executing a recommendation: materialize the chosen views and answer the
//! workload from them alone — the paper's deployment story ("if the views
//! are stored at the client, no connection is needed and the application
//! can run off-line", Section 1).
//!
//! The centerpiece is [`Deployment`]: a self-contained bundle of a
//! [`Recommendation`], its materialized views and a maintenance base copy
//! of the store. It answers workload queries from the views alone
//! ([`Deployment::answer`]) and keeps the views consistent under triple
//! insertions and deletions ([`Deployment::insert`] /
//! [`Deployment::delete`]) via the incremental deltas of
//! `rdf_engine::maintain`. The free functions below are the stateless
//! building blocks, kept for direct use and backward compatibility.

use rdf_engine::{
    evaluate_mixed_stats, evaluate_over_views, materialize_union, Answers, DeleteDelta, DeltaSet,
    EvalStats, MaintainedView, MaintenanceStats, MixedAtom, ViewAtom, ViewTable,
};
use rdf_model::{Dictionary, FxHashMap, FxHashSet, Id, Triple, TripleStore};
use rdf_query::minimize;
use rdf_query::ConjunctiveQuery;
use rdf_reform::{reformulate_with_limit, ReformLimit};
use rdf_schema::{saturate, saturated_copy, Schema, VocabIds};
use rdf_stats::{estimate_conjunction, CardinalityEstimator, RelAtom};
use rdfviews_core::rewrite::{self, PlanAtom, RewritePlan};
use rdfviews_core::{Recommendation, SelectionError, State, ViewId};

#[path = "exec_persist.rs"]
mod persist;
pub use persist::{DurableDeployment, RecoveryReport, SNAPSHOT_FILE, WAL_FILE};

/// The materialized views of a recommendation (or state), keyed by view id.
#[derive(Debug, Clone, Default)]
pub struct MaterializedViews {
    tables: FxHashMap<ViewId, ViewTable>,
}

impl MaterializedViews {
    /// The table of one view.
    pub fn table(&self, id: ViewId) -> &ViewTable {
        &self.tables[&id]
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no views are materialized.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of cells (rows × columns) across all views — the
    /// measured counterpart of the VSO estimate.
    pub fn total_cells(&self) -> usize {
        self.tables.values().map(|t| t.cell_count()).sum()
    }

    /// Total number of rows across all views.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Total hash-index builds across all view tables. Each table builds
    /// one index per probed bound-column mask and keeps it for its
    /// lifetime, so a served workload (repeated `answer_query` over the
    /// same plans) holds this steady after warm-up — the deployment-level
    /// view of [`ViewTable::index_builds`].
    pub fn index_builds(&self) -> usize {
        self.tables.values().map(|t| t.index_builds()).sum()
    }
}

/// Materializes every view of a state directly (no reformulation).
pub fn materialize_state(store: &TripleStore, state: &State) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for v in state.views() {
        tables.insert(v.id, rdf_engine::materialize(store, &v.as_query()));
    }
    MaterializedViews { tables }
}

/// Materializes a recommendation using its *materialization definitions* —
/// plain views, or reformulated unions in post-reformulation mode
/// (Theorem 4.2 guarantees the reformulated views on the original store
/// equal the plain views on the saturated store).
pub fn materialize_recommendation(store: &TripleStore, rec: &Recommendation) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for (view, def) in rec.views.iter().zip(rec.materialization.iter()) {
        tables.insert(view.id, materialize_union(store, def));
    }
    MaterializedViews { tables }
}

/// Answers one (effective) workload query from the views alone, by
/// executing its rewriting.
pub fn answer_query(state: &State, mv: &MaterializedViews, query_idx: usize) -> Answers {
    let r = &state.rewritings()[query_idx];
    let atoms: Vec<ViewAtom<'_>> = r
        .atoms
        .iter()
        .map(|a| ViewAtom {
            table: mv.table(a.view),
            args: a.args.clone(),
        })
        .collect();
    evaluate_over_views(&atoms, &r.head)
}

/// Answers an *original* workload query: in pre-reformulation mode this is
/// the union of its branch rewritings; otherwise a single rewriting.
/// Returns [`SelectionError::UnknownQuery`] for an out-of-range index.
pub fn try_answer_original_query(
    rec: &Recommendation,
    mv: &MaterializedViews,
    original_idx: usize,
) -> Result<Answers, SelectionError> {
    let state = &rec.outcome.best_state;
    let mut result: Option<Answers> = None;
    for (eff_idx, &orig) in rec.branch_of.iter().enumerate() {
        if orig != original_idx {
            continue;
        }
        let a = answer_query(state, mv, eff_idx);
        result = Some(match result {
            None => a,
            Some(prev) => prev.union(a),
        });
    }
    result.ok_or(SelectionError::UnknownQuery {
        index: original_idx,
        len: rec.original_query_count(),
    })
}

/// Panicking wrapper over [`try_answer_original_query`], kept for
/// backward compatibility.
#[deprecated(
    since = "0.2.0",
    note = "panics on a bad index; use `Deployment::answer(idx)` (or \
            `try_answer_original_query`) for the Result-returning path, and \
            `Deployment::plan`/`answer_query` for ad-hoc queries"
)]
pub fn answer_original_query(
    rec: &Recommendation,
    mv: &MaterializedViews,
    original_idx: usize,
) -> Answers {
    try_answer_original_query(rec, mv, original_idx)
        // xlint: allow(X001, reason = "deprecated panicking wrapper kept for seed-API migration")
        .unwrap_or_else(|e| panic!("answer_original_query: {e}"))
}

/// How [`Deployment::plan`] treats query atoms the deployed views cannot
/// cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnswerPolicy {
    /// Fail with [`SelectionError::NoViewsOnlyPlan`] unless the whole
    /// query is answerable from the views alone — never a base-store scan
    /// (the paper's offline-client setting, where no base store exists).
    ViewsOnly,
    /// Cover what the views can; scan the base store for the rest (the
    /// default).
    #[default]
    Hybrid,
    /// Use the views only when they cover the whole query; otherwise
    /// evaluate the whole query on the base store.
    BaseFallback,
}

/// One executable branch of a [`QueryPlan`]: for plain and saturation
/// deployments the single plan; for reformulation-mode deployments with
/// residual base atoms, one plan per reformulation branch (base-store
/// scans are entailment-complete only through reformulation — view scans
/// need none, their tables already hold the saturated extensions).
#[derive(Debug, Clone)]
pub struct PlannedBranch {
    /// The branch query (the minimized input itself when no reformulation
    /// applies).
    pub query: ConjunctiveQuery,
    /// The plan: view scans and base-store scans.
    pub plan: RewritePlan,
    /// Estimated evaluation cost from the recommendation's statistics
    /// catalog: scanned cardinality plus estimated join output.
    pub estimated_cost: f64,
}

/// An inspectable, executable plan for one ad-hoc conjunctive query over a
/// [`Deployment`] — which views cover which atoms, which atoms fall back
/// to base-store scans, and what evaluation is estimated to cost.
///
/// Produced by [`Deployment::plan`] / [`Deployment::plan_with`], executed
/// by [`Deployment::answer_query`]. Planning records the deployment's
/// store version; execution refuses a plan whose version no longer matches
/// ([`SelectionError::StaleSession`]) — updates between planning and
/// execution require re-planning, never silently stale reads.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    query: ConjunctiveQuery,
    branches: Vec<PlannedBranch>,
    policy: AnswerPolicy,
    store_version: u64,
    /// The deployment lineage that produced the plan — plans bind view
    /// ids of their own deployment and are refused elsewhere
    /// ([`SelectionError::ForeignPlan`]).
    deployment: u64,
}

impl QueryPlan {
    /// The minimized query this plan answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The executable branches.
    pub fn branches(&self) -> &[PlannedBranch] {
        &self.branches
    }

    /// The policy the plan was made under.
    pub fn policy(&self) -> AnswerPolicy {
        self.policy
    }

    /// The store version the plan was made against.
    pub fn store_version(&self) -> u64 {
        self.store_version
    }

    /// Whether every branch answers from the views alone.
    pub fn is_views_only(&self) -> bool {
        self.branches.iter().all(|b| b.plan.is_views_only())
    }

    /// Total base-store atoms across branches (0 for a views-only plan).
    pub fn residual_atoms(&self) -> usize {
        self.branches.iter().map(|b| b.plan.residual_atoms()).sum()
    }

    /// The distinct views scanned, in id order.
    pub fn views_used(&self) -> Vec<ViewId> {
        let mut ids: Vec<ViewId> = self
            .branches
            .iter()
            .flat_map(|b| b.plan.views_used())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total estimated evaluation cost across branches.
    pub fn estimated_cost(&self) -> f64 {
        self.branches.iter().map(|b| b.estimated_cost).sum()
    }

    /// A human-readable rendering of the plan, one line per branch.
    pub fn describe(&self, dict: &Dictionary) -> String {
        use rdf_query::display::{atom_to_string, term_to_string};
        let mut out = String::new();
        for (bi, b) in self.branches.iter().enumerate() {
            let atoms: Vec<String> = b
                .plan
                .atoms
                .iter()
                .map(|pa| match pa {
                    PlanAtom::View(ra) => {
                        let args: Vec<String> =
                            ra.args.iter().map(|t| term_to_string(t, dict)).collect();
                        format!("{}({})", ra.view, args.join(", "))
                    }
                    PlanAtom::Base(a) => format!("base {}", atom_to_string(a, dict)),
                })
                .collect();
            out.push_str(&format!(
                "branch {bi} [{}] cost≈{:.3e}: {}\n",
                if b.plan.is_views_only() {
                    "views-only".to_string()
                } else {
                    format!("hybrid, {} base atom(s)", b.plan.residual_atoms())
                },
                b.estimated_cost,
                atoms.join(" ⋈ ")
            ));
        }
        out
    }
}

/// One materialized view kept incrementally consistent: a maintained
/// instance per materialization branch (one for plain views, several for
/// reformulated unions).
#[derive(Debug, Clone)]
struct DeployedView {
    id: ViewId,
    arity: usize,
    branches: Vec<MaintainedView>,
}

impl DeployedView {
    /// The branch-union table (deduplicated across branches).
    fn merged_table(&self) -> ViewTable {
        match self.branches.as_slice() {
            [single] => single.to_table(),
            branches => {
                let mut rows: FxHashSet<Vec<Id>> = FxHashSet::default();
                for b in branches {
                    rows.extend(b.to_table().rows().map(|r| r.to_vec()));
                }
                ViewTable::from_rows(self.arity, rows)
            }
        }
    }
}

/// The entailment context of a saturation-mode deployment: the schema,
/// and the explicit (unsaturated) triples from which the maintained base
/// store is re-derivable.
#[derive(Debug, Clone)]
struct EntailmentBase {
    schema: Schema,
    vocab: VocabIds,
    explicit: TripleStore,
}

/// A deployed recommendation: the views materialized, a maintenance base
/// copy of the store, and the machinery to answer the workload from the
/// views alone while absorbing updates.
///
/// This is the paper's three-tier / offline client bundle: once built, it
/// no longer needs the advisor or the original database. Triple ids keep
/// referring to the dictionary the recommendation was built with.
///
/// Updates flow through [`Deployment::insert_batch`] /
/// [`Deployment::delete_batch`]: one set-at-a-time delta join per view per
/// batch keeps the views exactly consistent. The base store is also
/// directly writable ([`Deployment::store_mut`]); the deployment tracks
/// the store version its views were maintained to, and every read entry
/// point refuses with [`SelectionError::StaleSession`] once direct writes
/// desynchronize them — [`Deployment::rematerialize`] re-syncs.
///
/// Under saturation reasoning the deployment also carries the schema and
/// the explicit store, so updates stay entailment-aware: an inserted
/// triple brings its RDFS consequences into the views, and a deleted
/// explicit triple retracts exactly the entailments that lose their last
/// derivation. (The schema itself is assumed fixed for the deployment's
/// lifetime — schema-statement updates require re-deploying.)
#[derive(Debug, Clone)]
pub struct Deployment {
    rec: Recommendation,
    store: TripleStore,
    views: Vec<DeployedView>,
    tables: MaterializedViews,
    dirty: FxHashSet<ViewId>,
    entailment: Option<EntailmentBase>,
    /// The schema for ad-hoc query reformulation — set on deployments of
    /// pre/post-reformulation recommendations, whose base store is the
    /// *original* (unsaturated) one: hybrid plans reformulate the query so
    /// that base-store scans stay entailment-complete (Theorem 4.1).
    /// Saturation-mode deployments need none (their base store is
    /// saturated); neither do views-only plans in any mode (the view
    /// tables already hold the saturated extensions, Theorem 4.2).
    reform: Option<(Schema, VocabIds)>,
    /// The store version the views are maintained to; diverges from
    /// `store.version()` only through direct `store_mut` writes.
    maintained_version: u64,
    /// Process-unique lineage id stamped into every [`QueryPlan`], so a
    /// plan from one deployment cannot silently execute on another whose
    /// store happens to share a version number (clones keep the id: their
    /// stores, views and view ids are identical at the point of cloning).
    deployment_id: u64,
    /// The durable lineage id: persisted into snapshot bundles and
    /// restored by [`Deployment::open`], unlike `deployment_id` (which is
    /// process-scoped and regenerated on every open so stale in-memory
    /// plans can never execute against a reloaded deployment). Initially
    /// equal to `deployment_id`.
    lineage: u64,
    /// Cached plans of the stored workload rewritings, keyed by original
    /// query index — [`Deployment::answer`] serves repeated calls from
    /// here instead of re-assembling (and re-estimating) the plan. The
    /// recorded store version invalidates entries after any maintenance.
    workload_plans: FxHashMap<usize, QueryPlan>,
    /// Per-branch engine decisions and leapfrog counters from the most
    /// recent [`Deployment::answer_query`] call — see
    /// [`Deployment::last_eval_stats`].
    last_eval: Vec<EvalStats>,
}

/// Allocator for [`Deployment`] lineage ids.
static DEPLOYMENT_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Deployment {
    /// Materializes `rec`'s views over `store` and snapshots the store as
    /// the maintenance base. (The facade's `Advisor::deploy` calls this.)
    pub fn new(store: &TripleStore, rec: Recommendation) -> Self {
        let store = store.clone();
        let views: Vec<DeployedView> = rec
            .views
            .iter()
            .zip(rec.materialization.iter())
            .map(|(view, def)| DeployedView {
                id: view.id,
                arity: view.head.len(),
                branches: def
                    .branches()
                    .iter()
                    .map(|b| MaintainedView::new(&store, b.clone()))
                    .collect(),
            })
            .collect();
        let mut tables = MaterializedViews::default();
        for dv in &views {
            tables.tables.insert(dv.id, dv.merged_table());
        }
        let maintained_version = store.version();
        let id = DEPLOYMENT_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self {
            rec,
            store,
            views,
            tables,
            dirty: FxHashSet::default(),
            entailment: None,
            reform: None,
            maintained_version,
            deployment_id: id,
            lineage: id,
            workload_plans: FxHashMap::default(),
            last_eval: Vec::new(),
        }
    }

    /// The durable lineage id: stable across [`Deployment::persist`] /
    /// [`Deployment::open`] round-trips, so a recovered deployment can be
    /// traced back to the tuning session that produced it.
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// Attaches a schema for **ad-hoc query** reformulation — used by
    /// `Advisor::deploy` for pre/post-reformulation recommendations, whose
    /// base store is the original (unsaturated) one. Hybrid/base-fallback
    /// plans then reformulate the query per Theorem 4.1 so base-store
    /// scans remain entailment-complete; without it, residual base scans
    /// on such a deployment would silently miss implicit triples.
    pub fn with_query_reformulation(mut self, schema: Schema, vocab: VocabIds) -> Self {
        self.reform = Some((schema, vocab));
        self
    }

    /// Materializes `rec`'s views over the `saturated` store and keeps the
    /// `explicit` store plus the schema so that updates remain
    /// entailment-aware (the saturation-mode deployment; `Advisor::deploy`
    /// picks this automatically).
    pub fn with_entailment(
        explicit: &TripleStore,
        saturated: &TripleStore,
        rec: Recommendation,
        schema: Schema,
        vocab: VocabIds,
    ) -> Self {
        let mut dep = Self::new(saturated, rec);
        dep.entailment = Some(EntailmentBase {
            schema,
            vocab,
            explicit: explicit.clone(),
        });
        dep
    }

    /// The recommendation this deployment serves.
    pub fn recommendation(&self) -> &Recommendation {
        &self.rec
    }

    /// The maintenance base store (reflects all applied updates).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Direct writable access to the maintenance base store — the
    /// versioned writable-store escape hatch for bulk loads that bypass
    /// incremental maintenance. After direct writes the views no longer
    /// reflect the store, and every read entry point returns
    /// [`SelectionError::StaleSession`] until [`Deployment::rematerialize`]
    /// runs. Returns `None` for entailment-aware deployments, whose
    /// explicit/saturated invariant direct writes would corrupt
    /// undetectably — feed those through [`Deployment::insert_batch`] /
    /// [`Deployment::delete_batch`] instead.
    pub fn store_mut(&mut self) -> Option<&mut TripleStore> {
        match self.entailment {
            Some(_) => None,
            None => Some(&mut self.store),
        }
    }

    /// The store version the views are currently maintained to.
    pub fn maintained_version(&self) -> u64 {
        self.maintained_version
    }

    /// Whether direct writes have desynchronized the views from the base
    /// store.
    pub fn is_stale(&self) -> bool {
        self.store.version() != self.maintained_version
    }

    /// Refuses reads while the views lag behind the base store.
    fn ensure_fresh(&self) -> Result<(), SelectionError> {
        if self.is_stale() {
            return Err(SelectionError::StaleSession {
                prepared: self.maintained_version,
                current: self.store.version(),
            });
        }
        Ok(())
    }

    /// Re-syncs the version stamp after a maintenance pass — but only when
    /// the deployment was fresh going in. A batch applied on top of
    /// unabsorbed direct `store_mut` writes maintains the views for *its*
    /// triples only, so the deployment must stay stale until
    /// [`Deployment::rematerialize`] picks up the direct writes too.
    fn sync_version(&mut self, was_fresh: bool) {
        if was_fresh {
            self.maintained_version = self.store.version();
        }
    }

    /// Rebuilds every view from scratch over the current base store and
    /// re-syncs the version stamp — the recovery path after direct writes
    /// through [`Deployment::store_mut`].
    pub fn rematerialize(&mut self) {
        for dv in &mut self.views {
            for b in &mut dv.branches {
                *b = MaintainedView::new(&self.store, b.definition().clone());
            }
        }
        self.dirty.clear();
        for dv in &self.views {
            self.tables.tables.insert(dv.id, dv.merged_table());
        }
        self.maintained_version = self.store.version();
    }

    /// Number of deployed views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Rebuilds the tables of views whose rows changed since the last
    /// read.
    fn rebuild_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        for dv in &self.views {
            if self.dirty.remove(&dv.id) {
                self.tables.tables.insert(dv.id, dv.merged_table());
            }
        }
    }

    /// The current view tables (refreshed if updates arrived). Fails with
    /// [`SelectionError::StaleSession`] after unmaintained direct writes.
    pub fn tables(&mut self) -> Result<&MaterializedViews, SelectionError> {
        self.ensure_fresh()?;
        self.rebuild_dirty();
        Ok(&self.tables)
    }

    /// Total rows across all views — the measured counterpart of VSO.
    pub fn total_rows(&mut self) -> Result<usize, SelectionError> {
        Ok(self.tables()?.total_rows())
    }

    /// Total cells (rows × columns) across all views.
    pub fn total_cells(&mut self) -> Result<usize, SelectionError> {
        Ok(self.tables()?.total_cells())
    }

    /// Total hash-index builds across the deployment's current view
    /// tables. Rewriting execution builds each `(table, bound-column
    /// mask)` index on first probe and then reuses it, so repeatedly
    /// answering the same plans leaves this constant; maintenance that
    /// rebuilds a table starts that table's count afresh (new version,
    /// new cache). Does not force a rebuild of dirty tables.
    pub fn view_index_builds(&self) -> usize {
        self.tables.index_builds()
    }

    /// Answers original workload query `query_idx` from the views alone —
    /// a thin delegate that plans the stored workload rewriting
    /// ([`Deployment::plan_workload`]) and executes it through
    /// [`Deployment::answer_query`]. Fails with
    /// [`SelectionError::StaleSession`] after unmaintained direct writes —
    /// never with silently stale answers.
    pub fn answer(&mut self, query_idx: usize) -> Result<Answers, SelectionError> {
        // Serve repeated calls from the plan cache; the recorded store
        // version invalidates entries after any maintenance pass.
        let cached = self
            .workload_plans
            .get(&query_idx)
            .filter(|p| p.store_version == self.store.version())
            .cloned();
        let plan = match cached {
            Some(plan) => plan,
            None => {
                let plan = self.plan_workload(query_idx)?;
                self.workload_plans.insert(query_idx, plan.clone());
                plan
            }
        };
        self.answer_query(&plan)
    }

    /// Plans original workload query `query_idx` from its **stored**
    /// rewriting(s) — no cover search needed: the recommendation already
    /// carries one views-only rewriting per effective query (several
    /// branches in pre-reformulation mode). The resulting plan is always
    /// views-only.
    pub fn plan_workload(&self, query_idx: usize) -> Result<QueryPlan, SelectionError> {
        self.ensure_fresh()?;
        let state = &self.rec.outcome.best_state;
        let mut branches = Vec::new();
        for (eff, &orig) in self.rec.branch_of.iter().enumerate() {
            if orig != query_idx {
                continue;
            }
            let r = &state.rewritings()[eff];
            let plan = RewritePlan {
                head: r.head.clone(),
                atoms: r.atoms.iter().map(|a| PlanAtom::View(a.clone())).collect(),
            };
            branches.push(self.branch_of_plan(self.rec.workload[eff].clone(), plan));
        }
        if branches.is_empty() {
            return Err(SelectionError::UnknownQuery {
                index: query_idx,
                len: self.rec.original_query_count(),
            });
        }
        Ok(QueryPlan {
            query: branches[0].query.clone(),
            branches,
            policy: AnswerPolicy::ViewsOnly,
            store_version: self.store.version(),
            deployment: self.deployment_id,
        })
    }

    /// Plans an **ad-hoc** conjunctive query — any query, registered in
    /// the tuned workload or not — under the default
    /// ([`AnswerPolicy::Hybrid`]) policy. See [`Deployment::plan_with`].
    pub fn plan(&self, q: &ConjunctiveQuery) -> Result<QueryPlan, SelectionError> {
        self.plan_with(q, AnswerPolicy::default())
    }

    /// Plans an ad-hoc conjunctive query under `policy`.
    ///
    /// The query is minimized, then the bucket/MiniCon-style cover search
    /// of `rdfviews_core::rewrite` looks for a **complete views-only
    /// rewriting** (verified equivalent through its unfolding). Such a
    /// plan answers the query in every reasoning mode without
    /// reformulation — the view tables already hold the saturated
    /// extensions (Theorem 4.2). When atoms stay uncovered:
    ///
    /// * [`AnswerPolicy::ViewsOnly`] fails with
    ///   [`SelectionError::NoViewsOnlyPlan`];
    /// * [`AnswerPolicy::Hybrid`] mixes view scans with base-store scans;
    /// * [`AnswerPolicy::BaseFallback`] evaluates the whole query on the
    ///   base store.
    ///
    /// On deployments of pre/post-reformulation recommendations the base
    /// store is the *original* (unsaturated) one, so plans with base
    /// atoms first split the query into its reformulation branches
    /// (Theorem 4.1) — one [`PlannedBranch`] each — keeping base scans
    /// entailment-complete; branch answers union at execution.
    pub fn plan_with(
        &self,
        q: &ConjunctiveQuery,
        policy: AnswerPolicy,
    ) -> Result<QueryPlan, SelectionError> {
        self.ensure_fresh()?;
        if q.atoms.is_empty() {
            return Err(SelectionError::UnsupportedQuery {
                reason: "the query body is empty".into(),
            });
        }
        if !q.is_safe() {
            return Err(SelectionError::UnsupportedQuery {
                reason: "a head variable does not occur in the body".into(),
            });
        }
        if q.atoms.len() > rewrite::MAX_QUERY_ATOMS {
            return Err(SelectionError::UnsupportedQuery {
                reason: format!(
                    "the query has {} atoms; the planner caps at {}",
                    q.atoms.len(),
                    rewrite::MAX_QUERY_ATOMS
                ),
            });
        }
        let minimized = minimize(q).normalized();
        let views = &self.rec.views;
        // One planner pass: a complete views-only cover when it exists,
        // the best hybrid otherwise.
        let best = rewrite::rewrite_best(&minimized, views);
        if best.is_views_only() {
            let branch = self.branch_of_plan(minimized.clone(), best);
            return Ok(QueryPlan {
                query: minimized,
                branches: vec![branch],
                policy,
                store_version: self.store.version(),
                deployment: self.deployment_id,
            });
        }
        if policy == AnswerPolicy::ViewsOnly {
            // (No reformulation detour can save the views-only policy:
            // the original query is always its own first reformulation
            // branch, so an uncoverable query has an uncoverable branch.)
            return Err(SelectionError::NoViewsOnlyPlan {
                residual_atoms: best.residual_atoms(),
            });
        }
        let branches: Vec<PlannedBranch> = match self.reformulation_branches(&minimized)? {
            Some(branch_queries) => branch_queries
                .into_iter()
                .map(|b| {
                    // Branch 0 is the original query: reuse its search.
                    let best_b = if b == minimized {
                        best.clone()
                    } else {
                        rewrite::rewrite_best(&b, views)
                    };
                    let plan = match policy {
                        AnswerPolicy::Hybrid => best_b,
                        _ if best_b.is_views_only() => best_b,
                        _ => rewrite::base_plan(&b),
                    };
                    self.branch_of_plan(b, plan)
                })
                .collect(),
            None => {
                let plan = match policy {
                    AnswerPolicy::Hybrid => best,
                    _ => rewrite::base_plan(&minimized),
                };
                vec![self.branch_of_plan(minimized.clone(), plan)]
            }
        };
        Ok(QueryPlan {
            query: minimized,
            branches,
            policy,
            store_version: self.store.version(),
            deployment: self.deployment_id,
        })
    }

    /// The reformulation branches of a (minimized) ad-hoc query, for
    /// deployments carrying a reformulation schema: `Ok(None)` when the
    /// deployment needs no reformulation (plain / saturation),
    /// `Err(UnsupportedQuery)` when the expansion exceeds the branch cap.
    fn reformulation_branches(
        &self,
        minimized: &ConjunctiveQuery,
    ) -> Result<Option<Vec<ConjunctiveQuery>>, SelectionError> {
        let Some((schema, vocab)) = &self.reform else {
            return Ok(None);
        };
        let limit = ReformLimit { max_queries: 256 };
        let ucq = reformulate_with_limit(minimized, schema, vocab, limit).map_err(|partial| {
            SelectionError::UnsupportedQuery {
                reason: format!(
                    "reformulation exceeds {} branches; answer it views-only or re-deploy \
                     under saturation",
                    partial.len()
                ),
            }
        })?;
        Ok(Some(
            ucq.branches()
                .iter()
                .map(|b| minimize(b).normalized())
                .collect(),
        ))
    }

    fn branch_of_plan(&self, query: ConjunctiveQuery, plan: RewritePlan) -> PlannedBranch {
        let estimated_cost = self.estimate_plan(&plan);
        PlannedBranch {
            query,
            plan,
            estimated_cost,
        }
    }

    /// Estimated evaluation cost of one plan from the recommendation's
    /// statistics catalog (the same System-R estimator the search used):
    /// total scanned cardinality plus the estimated join output.
    fn estimate_plan(&self, plan: &RewritePlan) -> f64 {
        let est = CardinalityEstimator::new(&self.rec.catalog);
        let rel_atoms: Vec<RelAtom> = plan
            .atoms
            .iter()
            .map(|pa| match pa {
                PlanAtom::View(ra) => {
                    let view = self
                        .rec
                        .views
                        .iter()
                        .find(|v| v.id == ra.view)
                        // xlint: allow(X001, reason = "plans are built only over views of this recommendation")
                        .expect("plan scans a deployed view");
                    RelAtom {
                        stats: est.view_stats(&view.as_query()),
                        args: ra.args.clone(),
                        baked: false,
                    }
                }
                PlanAtom::Base(a) => RelAtom {
                    stats: est.atom_stats(a),
                    args: a.terms().to_vec(),
                    baked: true,
                },
            })
            .collect();
        let io: f64 = rel_atoms.iter().map(|a| a.stats.card).sum();
        io + estimate_conjunction(&rel_atoms)
    }

    /// Executes a plan produced by [`Deployment::plan`] /
    /// [`Deployment::plan_workload`]: every branch runs through the shared
    /// join pipeline (`evaluate_mixed_stats` — view scans probe the
    /// materialized tables through resident indexes, base atoms the
    /// store's permutation indexes; cyclic branch shapes route to the
    /// worst-case-optimal leapfrog engine, see
    /// [`Deployment::last_eval_stats`]), and branch answers union
    /// set-wise.
    ///
    /// Fails with [`SelectionError::StaleSession`] when the deployment is
    /// stale **or** when the plan was made against an older store version:
    /// maintenance between planning and execution requires re-planning,
    /// never a silently stale (or silently wrong) read. A plan produced by
    /// a *different* deployment fails with
    /// [`SelectionError::ForeignPlan`] — view ids only mean something
    /// within their own lineage.
    pub fn answer_query(&mut self, plan: &QueryPlan) -> Result<Answers, SelectionError> {
        if plan.deployment != self.deployment_id {
            return Err(SelectionError::ForeignPlan);
        }
        self.ensure_fresh()?;
        if plan.store_version != self.store.version() {
            return Err(SelectionError::StaleSession {
                prepared: plan.store_version,
                current: self.store.version(),
            });
        }
        self.rebuild_dirty();
        let arity = plan.query.head.len();
        let mut set: FxHashSet<Vec<Id>> = FxHashSet::default();
        let mut stats = Vec::with_capacity(plan.branches.len());
        for b in &plan.branches {
            let atoms: Vec<MixedAtom<'_>> = b
                .plan
                .atoms
                .iter()
                .map(|pa| match pa {
                    PlanAtom::View(ra) => MixedAtom::View(ViewAtom {
                        table: self.tables.table(ra.view),
                        args: ra.args.clone(),
                    }),
                    PlanAtom::Base(a) => MixedAtom::Store(*a),
                })
                .collect();
            let (answers, branch_stats) = evaluate_mixed_stats(&self.store, &atoms, &b.plan.head);
            set.extend(answers.into_tuples());
            stats.push(branch_stats);
        }
        self.last_eval = stats;
        Ok(Answers::from_set(arity, set))
    }

    /// Per-branch evaluation statistics from the most recent
    /// [`Deployment::answer_query`] (and thus [`Deployment::answer`] /
    /// [`Deployment::answer_adhoc`]) call: which join engine the adaptive
    /// selector picked for each union branch — cyclic branch shapes route
    /// to the worst-case-optimal leapfrog triejoin, acyclic ones to the
    /// compiled backtracking core — plus leapfrog seek/emit counters.
    /// Empty until a query has been answered.
    pub fn last_eval_stats(&self) -> &[EvalStats] {
        &self.last_eval
    }

    /// Plans and answers an ad-hoc query in one call under the default
    /// ([`AnswerPolicy::Hybrid`]) policy.
    pub fn answer_adhoc(&mut self, q: &ConjunctiveQuery) -> Result<Answers, SelectionError> {
        self.answer_adhoc_with(q, AnswerPolicy::default())
    }

    /// Plans and answers an ad-hoc query in one call under `policy`.
    pub fn answer_adhoc_with(
        &mut self,
        q: &ConjunctiveQuery,
        policy: AnswerPolicy,
    ) -> Result<Answers, SelectionError> {
        let plan = self.plan_with(q, policy)?;
        self.answer_query(&plan)
    }

    /// Applies a triple insertion: updates the base store and every view
    /// via its incremental delta. Under saturation reasoning the RDFS
    /// consequences of the new triple are derived and maintained too.
    /// Returns the merged maintenance counters; a duplicate triple is a
    /// no-op.
    pub fn insert(&mut self, t: Triple) -> MaintenanceStats {
        self.insert_batch(std::slice::from_ref(&t))
    }

    /// Applies a triple deletion (delete-and-rederive): candidate rows are
    /// collected while the triple is still present, then re-derived
    /// against the shrunken store. Under saturation reasoning the triple
    /// must be explicit; the entailments that lose their last derivation
    /// are retracted along with it (an implicit or absent triple is a
    /// no-op, as is a missing one in plain deployments).
    pub fn delete(&mut self, t: Triple) -> MaintenanceStats {
        self.delete_batch(std::slice::from_ref(&t))
    }

    /// Applies a batch of deletions, set-at-a-time. Under saturation
    /// reasoning the entailment-loss set is computed **once** for the
    /// whole batch (one re-saturation of the explicit store); either way
    /// every view runs **one** two-phase delta pass — candidates collected
    /// with each atom position bound to the whole doomed set, then one
    /// re-derivation sweep against the shrunken store — so retraction
    /// feeds should prefer this over per-triple [`Deployment::delete`].
    /// `stats.batches` counts 1 per call that reached the delta joins.
    pub fn delete_batch(&mut self, batch: &[Triple]) -> MaintenanceStats {
        let was_fresh = !self.is_stale();
        let mut total = MaintenanceStats::default();
        let doomed: Vec<Triple> = match &mut self.entailment {
            Some(ent) => {
                if ent.explicit.remove_batch(batch).is_empty() {
                    return total;
                }
                // Everything in the saturated base that the remaining
                // explicit triples no longer entail must go.
                let still = saturated_copy(&ent.explicit, &ent.schema, &ent.vocab);
                self.store
                    .triples()
                    .iter()
                    .copied()
                    .filter(|&x| !still.contains(x))
                    .collect()
            }
            None => {
                let mut seen: FxHashSet<Triple> = FxHashSet::default();
                batch
                    .iter()
                    .copied()
                    .filter(|&t| self.store.contains(t) && seen.insert(t))
                    .collect()
            }
        };
        if doomed.is_empty() {
            return total;
        }
        total.batches = 1;
        // Phase 1: one shared delta set, one prepare per view branch,
        // while the doomed triples are still in the store.
        let delta_set = DeltaSet::new(&doomed);
        let deltas: Vec<Vec<DeleteDelta>> = self
            .views
            .iter()
            .map(|dv| {
                dv.branches
                    .iter()
                    .map(|b| b.prepare_delete_delta(&self.store, &delta_set))
                    .collect()
            })
            .collect();
        self.store.remove_batch(&doomed);
        // Phase 2: one re-derivation sweep per branch over the candidates.
        for (dv, branch_deltas) in self.views.iter_mut().zip(deltas) {
            let mut changed = false;
            for (b, delta) in dv.branches.iter_mut().zip(branch_deltas) {
                let s = b.commit_delete_batch(&self.store, &delta);
                changed |= s.removed > 0;
                total.merge(s);
            }
            if changed {
                self.dirty.insert(dv.id);
            }
        }
        self.sync_version(was_fresh);
        total
    }

    /// Applies a batch of insertions, set-at-a-time. Under saturation
    /// reasoning the RDFS fixpoint runs **once** for the whole batch
    /// (semi-naive: the consequences of all new explicit triples are
    /// derived together); then every view runs **one** delta-set join per
    /// atom position — Δv = ⋃ᵢ π_head(a₁ ⋈ … ⋈ Δaᵢ ⋈ … ⋈ aₙ) with Δ the
    /// whole batch, hash-indexed — instead of |Δ| per-triple passes.
    /// `stats.batches` counts 1 per call that reached the delta joins; a
    /// fully-duplicate batch is a no-op.
    pub fn insert_batch(&mut self, batch: &[Triple]) -> MaintenanceStats {
        let was_fresh = !self.is_stale();
        let mut total = MaintenanceStats::default();
        let added: Vec<Triple> = match &mut self.entailment {
            Some(ent) => {
                let newly_explicit = ent.explicit.insert_batch(batch);
                if newly_explicit.is_empty() {
                    return total;
                }
                let mut added = self.store.insert_batch(&newly_explicit);
                // One semi-naive fixpoint for the whole batch: saturation
                // is monotone, so the consequences of the new triples are
                // exactly the triples saturate() appends.
                let before = self.store.len();
                saturate(&mut self.store, &ent.schema, &ent.vocab);
                added.extend_from_slice(&self.store.triples()[before..]);
                added
            }
            None => self.store.insert_batch(batch),
        };
        if added.is_empty() {
            // Newly-explicit triples that were already entailed: the base
            // store (and the views) did not change.
            self.sync_version(was_fresh);
            return total;
        }
        total.batches = 1;
        // One shared delta set, one join pass per view branch against the
        // fully-updated base store.
        let delta_set = DeltaSet::new(&added);
        for dv in &mut self.views {
            let mut changed = false;
            for b in &mut dv.branches {
                let s = b.apply_insert_delta(&self.store, &delta_set);
                changed |= s.added > 0;
                total.merge(s);
            }
            if changed {
                self.dirty.insert(dv.id);
            }
        }
        self.sync_version(was_fresh);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdfviews_core::{select_views, SelectionOptions};

    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..30 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri("p"),
                Term::uri(format!("o{}", i % 3)),
            );
            db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("c"));
        }
        db
    }

    fn recommend(db: &mut Dataset) -> Recommendation {
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        select_views(
            db.store(),
            db.dict(),
            None,
            &[q],
            &SelectionOptions::recommended(),
        )
    }

    #[test]
    fn answers_from_views_match_direct_evaluation() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        assert_eq!(mv.len(), rec.views.len());
        let from_views = try_answer_original_query(&rec, &mv, 0).unwrap();
        let direct = rdf_engine::evaluate(db.store(), &rec.workload[0]);
        assert_eq!(from_views, direct);
        assert_eq!(from_views.len(), 10); // s1, s4, …, s28
    }

    #[test]
    fn materialize_state_covers_all_views() {
        let mut db = db();
        let q = parse_query("q(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let workload = vec![q];
        let state = State::initial(&workload);
        let mv = materialize_state(db.store(), &state);
        assert_eq!(mv.len(), 1);
        assert_eq!(mv.total_rows(), 30);
        assert_eq!(mv.total_cells(), 60);
    }

    #[test]
    fn unknown_query_index_is_an_error() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        let err = try_answer_original_query(&rec, &mv, 7).unwrap_err();
        assert_eq!(err, SelectionError::UnknownQuery { index: 7, len: 1 });
    }

    #[test]
    fn deployment_answers_and_maintains() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let direct = rdf_engine::evaluate(db.store(), &dep.recommendation().workload[0]);
        assert_eq!(dep.answer(0).unwrap(), direct);
        assert_eq!(
            dep.answer(3).unwrap_err(),
            SelectionError::UnknownQuery { index: 3, len: 1 }
        );

        // Insert a fresh qualifying subject: answers must grow.
        let before = dep.answer(0).unwrap().len();
        let s = db.dict_mut().intern_uri("fresh");
        let p = db.dict().lookup_uri("p").unwrap();
        let q = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        dep.insert([s, p, o1]);
        dep.insert([s, q, c]);
        let after = dep.answer(0).unwrap();
        assert_eq!(after.len(), before + 1);
        assert!(after.contains(&[s]));

        // Delete one of its triples: the subject disappears again.
        dep.delete([s, q, c]);
        let reverted = dep.answer(0).unwrap();
        assert_eq!(reverted.len(), before);
        assert!(!reverted.contains(&[s]));

        // The deployment's answers always match evaluation over its own
        // (maintained) base store.
        let fresh = rdf_engine::evaluate(dep.store(), &dep.recommendation().workload[0]);
        assert_eq!(dep.answer(0).unwrap(), fresh);
    }

    #[test]
    fn served_plans_reuse_view_indexes() {
        // A served workload answers the same plan over and over; every
        // probed (table, mask) hash index must be built exactly once and
        // reused, so the build count is flat after the first call.
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let plan = dep.plan_workload(0).unwrap();
        let first = dep.answer_query(&plan).unwrap();
        let builds = dep.view_index_builds();
        for _ in 0..5 {
            assert_eq!(dep.answer_query(&plan).unwrap(), first);
        }
        assert_eq!(
            dep.view_index_builds(),
            builds,
            "repeated answer_query must not rebuild view indexes"
        );
    }

    #[test]
    fn adaptive_engine_decision_surfaces_per_branch() {
        use rdf_engine::Engine;
        let mut db = db();
        // A directed triangle among fresh nodes so a cyclic ad-hoc query
        // has answers to find.
        let (a, b, c) = (
            db.dict_mut().intern_uri("ta"),
            db.dict_mut().intern_uri("tb"),
            db.dict_mut().intern_uri("tc"),
        );
        let p = db.dict().lookup_uri("p").unwrap();
        db.store_mut().insert([a, p, b]);
        db.store_mut().insert([b, p, c]);
        db.store_mut().insert([c, p, a]);
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);

        // Base-fallback keeps the whole query on the store, so the branch
        // shape is the query shape: the triangle routes to leapfrog...
        let tri = parse_query(
            "q(X, Y, Z) :- t(X, <p>, Y), t(Y, <p>, Z), t(Z, <p>, X)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let got = dep
            .answer_adhoc_with(&tri, AnswerPolicy::BaseFallback)
            .unwrap();
        assert_eq!(got, rdf_engine::evaluate(dep.store(), &tri));
        assert!(got.contains(&[a, b, c]));
        let stats = dep.last_eval_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].engine, Engine::Wcoj);
        assert!(stats[0].lf_seeks > 0);
        assert_eq!(stats[0].lf_emitted, got.len() as u64);

        // ...while an acyclic chain stays on the compiled core.
        let chain = parse_query("q(X, Z) :- t(X, <p>, Y), t(Y, <p>, Z)", db.dict_mut())
            .unwrap()
            .query;
        let got = dep
            .answer_adhoc_with(&chain, AnswerPolicy::BaseFallback)
            .unwrap();
        assert_eq!(got, rdf_engine::evaluate(dep.store(), &chain));
        let stats = dep.last_eval_stats();
        assert!(!stats.is_empty());
        assert!(stats.iter().all(|s| s.engine == Engine::Compiled));
    }

    #[test]
    fn deployment_totals_track_updates() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        let mut dep = Deployment::new(db.store(), rec);
        assert_eq!(dep.view_count(), mv.len());
        assert_eq!(dep.total_rows().unwrap(), mv.total_rows());
        assert_eq!(dep.total_cells().unwrap(), mv.total_cells());
        let s = db.dict_mut().intern_uri("extra");
        let p = db.dict().lookup_uri("p").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let stats = dep.insert([s, p, o1]);
        if stats.added > 0 {
            assert!(dep.total_rows().unwrap() > mv.total_rows());
        }
        // Rematerializing over the maintained store agrees with the
        // incremental tables.
        let remat = materialize_recommendation(dep.store(), dep.recommendation());
        assert_eq!(dep.total_rows().unwrap(), remat.total_rows());
        assert_eq!(dep.total_cells().unwrap(), remat.total_cells());
    }

    /// One batch = one maintenance pass: the `batches` counter makes the
    /// one-fixpoint-per-batch contract observable, and the batched path
    /// never derives more delta tuples than per-triple feeding.
    #[test]
    fn batched_feed_runs_one_pass_and_matches_per_triple() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut batched = Deployment::new(db.store(), rec.clone());
        let mut per_triple = Deployment::new(db.store(), rec);

        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        let mut feed = Vec::new();
        for i in 0..20 {
            let s = db.dict_mut().intern_uri(&format!("fresh{i}"));
            feed.push([s, p, o1]);
            feed.push([s, qq, c]);
        }

        let bstats = batched.insert_batch(&feed);
        assert_eq!(bstats.batches, 1, "one pass for the whole batch");
        let mut pstats = MaintenanceStats::default();
        for &t in &feed {
            pstats.merge(per_triple.insert(t));
        }
        assert_eq!(pstats.batches, feed.len(), "one pass per triple");
        assert_eq!(bstats.added, pstats.added);
        assert!(bstats.delta_tuples <= pstats.delta_tuples);
        assert_eq!(batched.answer(0).unwrap(), per_triple.answer(0).unwrap());
        assert_eq!(
            batched.total_rows().unwrap(),
            per_triple.total_rows().unwrap()
        );

        // Deletion side: one batch pass equals sequential deletes.
        let doomed: Vec<Triple> = feed.iter().copied().step_by(3).collect();
        let bdel = batched.delete_batch(&doomed);
        assert_eq!(bdel.batches, 1);
        let mut pdel = MaintenanceStats::default();
        for &t in &doomed {
            pdel.merge(per_triple.delete(t));
        }
        assert_eq!(bdel.removed, pdel.removed);
        assert!(bdel.delta_tuples <= pdel.delta_tuples);
        assert_eq!(batched.answer(0).unwrap(), per_triple.answer(0).unwrap());
        // A fully-duplicate batch is a no-op with no pass (feed[0] was
        // retracted above; feed[1..3] are still present).
        assert_eq!(batched.insert_batch(&feed[1..3]).batches, 0);
    }

    /// The versioned writable store: direct writes stale the deployment's
    /// reads until it rematerializes.
    #[test]
    fn direct_writes_stale_reads_until_rematerialize() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let baseline = dep.answer(0).unwrap();
        assert!(!dep.is_stale());

        let s = db.dict_mut().intern_uri("sideloaded");
        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        let store = dep.store_mut().expect("plain deployments are writable");
        store.insert_batch(&[[s, p, o1], [s, qq, c]]);

        assert!(dep.is_stale());
        let prepared = dep.maintained_version();
        let current = dep.store().version();
        for err in [
            dep.answer(0).unwrap_err(),
            dep.tables().map(|_| ()).unwrap_err(),
            dep.total_rows().map(|_| ()).unwrap_err(),
            dep.total_cells().map(|_| ()).unwrap_err(),
        ] {
            assert_eq!(err, SelectionError::StaleSession { prepared, current });
        }

        dep.rematerialize();
        assert!(!dep.is_stale());
        let refreshed = dep.answer(0).unwrap();
        assert_eq!(refreshed.len(), baseline.len() + 1);
        let direct = rdf_engine::evaluate(dep.store(), &dep.recommendation().workload[0]);
        assert_eq!(refreshed, direct);
    }

    /// A maintenance batch applied on top of unabsorbed direct writes must
    /// NOT clear the stale flag: its delta joins covered only the batch,
    /// not the direct writes.
    #[test]
    fn maintenance_batches_do_not_mask_direct_write_staleness() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);

        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        let direct = db.dict_mut().intern_uri("direct");
        let fed = db.dict_mut().intern_uri("fed");

        // Direct write that the views never absorb …
        let store = dep.store_mut().unwrap();
        store.insert_batch(&[[direct, p, o1], [direct, qq, c]]);
        assert!(dep.is_stale());
        // … then a regular maintenance batch on top.
        dep.insert_batch(&[[fed, p, o1], [fed, qq, c]]);
        assert!(
            dep.is_stale(),
            "batch must not mask the unabsorbed direct writes"
        );
        assert!(dep.answer(0).is_err());
        dep.delete_batch(&[[fed, p, o1]]);
        assert!(dep.is_stale(), "delete batch must not mask them either");

        // Rematerializing picks up direct writes and batches alike.
        dep.rematerialize();
        let answers = dep.answer(0).unwrap();
        assert!(answers.contains(&[direct]));
        let truth = rdf_engine::evaluate(dep.store(), &dep.recommendation().workload[0]);
        assert_eq!(answers, truth);
    }
}
