//! Executing a recommendation: materialize the chosen views and answer the
//! workload from them alone — the paper's deployment story ("if the views
//! are stored at the client, no connection is needed and the application
//! can run off-line", Section 1).

use rdf_engine::{evaluate_over_views, materialize_union, Answers, ViewAtom, ViewTable};
use rdf_model::{FxHashMap, TripleStore};
use rdfviews_core::{Recommendation, State, ViewId};

/// The materialized views of a recommendation (or state), keyed by view id.
#[derive(Debug, Clone, Default)]
pub struct MaterializedViews {
    tables: FxHashMap<ViewId, ViewTable>,
}

impl MaterializedViews {
    /// The table of one view.
    pub fn table(&self, id: ViewId) -> &ViewTable {
        &self.tables[&id]
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no views are materialized.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of cells (rows × columns) across all views — the
    /// measured counterpart of the VSO estimate.
    pub fn total_cells(&self) -> usize {
        self.tables.values().map(|t| t.cell_count()).sum()
    }

    /// Total number of rows across all views.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

/// Materializes every view of a state directly (no reformulation).
pub fn materialize_state(store: &TripleStore, state: &State) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for v in state.views() {
        tables.insert(v.id, rdf_engine::materialize(store, &v.as_query()));
    }
    MaterializedViews { tables }
}

/// Materializes a recommendation using its *materialization definitions* —
/// plain views, or reformulated unions in post-reformulation mode
/// (Theorem 4.2 guarantees the reformulated views on the original store
/// equal the plain views on the saturated store).
pub fn materialize_recommendation(store: &TripleStore, rec: &Recommendation) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for (view, def) in rec.views.iter().zip(rec.materialization.iter()) {
        tables.insert(view.id, materialize_union(store, def));
    }
    MaterializedViews { tables }
}

/// Answers one (effective) workload query from the views alone, by
/// executing its rewriting.
pub fn answer_query(state: &State, mv: &MaterializedViews, query_idx: usize) -> Answers {
    let r = &state.rewritings()[query_idx];
    let atoms: Vec<ViewAtom<'_>> = r
        .atoms
        .iter()
        .map(|a| ViewAtom {
            table: mv.table(a.view),
            args: a.args.clone(),
        })
        .collect();
    evaluate_over_views(&atoms, &r.head)
}

/// Answers an *original* workload query: in pre-reformulation mode this is
/// the union of its branch rewritings; otherwise a single rewriting.
pub fn answer_original_query(
    rec: &Recommendation,
    mv: &MaterializedViews,
    original_idx: usize,
) -> Answers {
    let state = &rec.outcome.best_state;
    let mut result: Option<Answers> = None;
    for (eff_idx, &orig) in rec.branch_of.iter().enumerate() {
        if orig != original_idx {
            continue;
        }
        let a = answer_query(state, mv, eff_idx);
        result = Some(match result {
            None => a,
            Some(prev) => prev.union(a),
        });
    }
    result.expect("unknown original query index")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdfviews_core::{select_views, SelectionOptions};

    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..30 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri("p"),
                Term::uri(format!("o{}", i % 3)),
            );
            db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("c"));
        }
        db
    }

    #[test]
    fn answers_from_views_match_direct_evaluation() {
        let mut db = db();
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        let workload = vec![q];
        let rec = select_views(
            db.store(),
            db.dict(),
            None,
            &workload,
            &SelectionOptions::recommended(),
        );
        let mv = materialize_recommendation(db.store(), &rec);
        assert_eq!(mv.len(), rec.views.len());
        let from_views = answer_original_query(&rec, &mv, 0);
        let direct = rdf_engine::evaluate(db.store(), &rec.workload[0]);
        assert_eq!(from_views, direct);
        assert_eq!(from_views.len(), 10); // s1, s4, …, s28
    }

    #[test]
    fn materialize_state_covers_all_views() {
        let mut db = db();
        let q = parse_query("q(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let workload = vec![q];
        let state = State::initial(&workload);
        let mv = materialize_state(db.store(), &state);
        assert_eq!(mv.len(), 1);
        assert_eq!(mv.total_rows(), 30);
        assert_eq!(mv.total_cells(), 60);
    }
}
