//! Executing a recommendation: materialize the chosen views and answer the
//! workload from them alone — the paper's deployment story ("if the views
//! are stored at the client, no connection is needed and the application
//! can run off-line", Section 1).
//!
//! The centerpiece is [`Deployment`]: a self-contained bundle of a
//! [`Recommendation`], its materialized views and a maintenance base copy
//! of the store. It answers workload queries from the views alone
//! ([`Deployment::answer`]) and keeps the views consistent under triple
//! insertions and deletions ([`Deployment::insert`] /
//! [`Deployment::delete`]) via the incremental deltas of
//! `rdf_engine::maintain`. The free functions below are the stateless
//! building blocks, kept for direct use and backward compatibility.

use rdf_engine::{
    evaluate_over_views, materialize_union, Answers, DeleteDelta, MaintainedView, MaintenanceStats,
    ViewAtom, ViewTable,
};
use rdf_model::{FxHashMap, FxHashSet, Id, Triple, TripleStore};
use rdf_schema::{saturate, saturated_copy, Schema, VocabIds};
use rdfviews_core::{Recommendation, SelectionError, State, ViewId};

/// The materialized views of a recommendation (or state), keyed by view id.
#[derive(Debug, Clone, Default)]
pub struct MaterializedViews {
    tables: FxHashMap<ViewId, ViewTable>,
}

impl MaterializedViews {
    /// The table of one view.
    pub fn table(&self, id: ViewId) -> &ViewTable {
        &self.tables[&id]
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no views are materialized.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of cells (rows × columns) across all views — the
    /// measured counterpart of the VSO estimate.
    pub fn total_cells(&self) -> usize {
        self.tables.values().map(|t| t.cell_count()).sum()
    }

    /// Total number of rows across all views.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

/// Materializes every view of a state directly (no reformulation).
pub fn materialize_state(store: &TripleStore, state: &State) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for v in state.views() {
        tables.insert(v.id, rdf_engine::materialize(store, &v.as_query()));
    }
    MaterializedViews { tables }
}

/// Materializes a recommendation using its *materialization definitions* —
/// plain views, or reformulated unions in post-reformulation mode
/// (Theorem 4.2 guarantees the reformulated views on the original store
/// equal the plain views on the saturated store).
pub fn materialize_recommendation(store: &TripleStore, rec: &Recommendation) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for (view, def) in rec.views.iter().zip(rec.materialization.iter()) {
        tables.insert(view.id, materialize_union(store, def));
    }
    MaterializedViews { tables }
}

/// Answers one (effective) workload query from the views alone, by
/// executing its rewriting.
pub fn answer_query(state: &State, mv: &MaterializedViews, query_idx: usize) -> Answers {
    let r = &state.rewritings()[query_idx];
    let atoms: Vec<ViewAtom<'_>> = r
        .atoms
        .iter()
        .map(|a| ViewAtom {
            table: mv.table(a.view),
            args: a.args.clone(),
        })
        .collect();
    evaluate_over_views(&atoms, &r.head)
}

/// Answers an *original* workload query: in pre-reformulation mode this is
/// the union of its branch rewritings; otherwise a single rewriting.
/// Returns [`SelectionError::UnknownQuery`] for an out-of-range index.
pub fn try_answer_original_query(
    rec: &Recommendation,
    mv: &MaterializedViews,
    original_idx: usize,
) -> Result<Answers, SelectionError> {
    let state = &rec.outcome.best_state;
    let mut result: Option<Answers> = None;
    for (eff_idx, &orig) in rec.branch_of.iter().enumerate() {
        if orig != original_idx {
            continue;
        }
        let a = answer_query(state, mv, eff_idx);
        result = Some(match result {
            None => a,
            Some(prev) => prev.union(a),
        });
    }
    result.ok_or(SelectionError::UnknownQuery {
        index: original_idx,
        len: rec.original_query_count(),
    })
}

/// Panicking wrapper over [`try_answer_original_query`], kept for
/// backward compatibility.
pub fn answer_original_query(
    rec: &Recommendation,
    mv: &MaterializedViews,
    original_idx: usize,
) -> Answers {
    try_answer_original_query(rec, mv, original_idx)
        .unwrap_or_else(|e| panic!("answer_original_query: {e}"))
}

/// One materialized view kept incrementally consistent: a maintained
/// instance per materialization branch (one for plain views, several for
/// reformulated unions).
#[derive(Debug, Clone)]
struct DeployedView {
    id: ViewId,
    arity: usize,
    branches: Vec<MaintainedView>,
}

impl DeployedView {
    /// The branch-union table (deduplicated across branches).
    fn merged_table(&self) -> ViewTable {
        match self.branches.as_slice() {
            [single] => single.to_table(),
            branches => {
                let mut rows: FxHashSet<Vec<Id>> = FxHashSet::default();
                for b in branches {
                    rows.extend(b.to_table().rows().map(|r| r.to_vec()));
                }
                ViewTable::from_rows(self.arity, rows)
            }
        }
    }
}

/// The entailment context of a saturation-mode deployment: the schema,
/// and the explicit (unsaturated) triples from which the maintained base
/// store is re-derivable.
#[derive(Debug, Clone)]
struct EntailmentBase {
    schema: Schema,
    vocab: VocabIds,
    explicit: TripleStore,
}

/// A deployed recommendation: the views materialized, a maintenance base
/// copy of the store, and the machinery to answer the workload from the
/// views alone while absorbing updates.
///
/// This is the paper's three-tier / offline client bundle: once built, it
/// no longer needs the advisor or the original database. Triple ids keep
/// referring to the dictionary the recommendation was built with.
///
/// Under saturation reasoning the deployment also carries the schema and
/// the explicit store, so updates stay entailment-aware: an inserted
/// triple brings its RDFS consequences into the views, and a deleted
/// explicit triple retracts exactly the entailments that lose their last
/// derivation. (The schema itself is assumed fixed for the deployment's
/// lifetime — schema-statement updates require re-deploying.)
#[derive(Debug, Clone)]
pub struct Deployment {
    rec: Recommendation,
    store: TripleStore,
    views: Vec<DeployedView>,
    tables: MaterializedViews,
    dirty: FxHashSet<ViewId>,
    entailment: Option<EntailmentBase>,
}

impl Deployment {
    /// Materializes `rec`'s views over `store` and snapshots the store as
    /// the maintenance base. (The facade's `Advisor::deploy` calls this.)
    pub fn new(store: &TripleStore, rec: Recommendation) -> Self {
        let store = store.clone();
        let views: Vec<DeployedView> = rec
            .views
            .iter()
            .zip(rec.materialization.iter())
            .map(|(view, def)| DeployedView {
                id: view.id,
                arity: view.head.len(),
                branches: def
                    .branches()
                    .iter()
                    .map(|b| MaintainedView::new(&store, b.clone()))
                    .collect(),
            })
            .collect();
        let mut tables = MaterializedViews::default();
        for dv in &views {
            tables.tables.insert(dv.id, dv.merged_table());
        }
        Self {
            rec,
            store,
            views,
            tables,
            dirty: FxHashSet::default(),
            entailment: None,
        }
    }

    /// Materializes `rec`'s views over the `saturated` store and keeps the
    /// `explicit` store plus the schema so that updates remain
    /// entailment-aware (the saturation-mode deployment; `Advisor::deploy`
    /// picks this automatically).
    pub fn with_entailment(
        explicit: &TripleStore,
        saturated: &TripleStore,
        rec: Recommendation,
        schema: Schema,
        vocab: VocabIds,
    ) -> Self {
        let mut dep = Self::new(saturated, rec);
        dep.entailment = Some(EntailmentBase {
            schema,
            vocab,
            explicit: explicit.clone(),
        });
        dep
    }

    /// The recommendation this deployment serves.
    pub fn recommendation(&self) -> &Recommendation {
        &self.rec
    }

    /// The maintenance base store (reflects all applied updates).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Number of deployed views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Rebuilds the tables of views whose rows changed since the last
    /// read.
    fn refresh(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        for dv in &self.views {
            if self.dirty.remove(&dv.id) {
                self.tables.tables.insert(dv.id, dv.merged_table());
            }
        }
    }

    /// The current view tables (refreshed if updates arrived).
    pub fn tables(&mut self) -> &MaterializedViews {
        self.refresh();
        &self.tables
    }

    /// Total rows across all views — the measured counterpart of VSO.
    pub fn total_rows(&mut self) -> usize {
        self.tables().total_rows()
    }

    /// Total cells (rows × columns) across all views.
    pub fn total_cells(&mut self) -> usize {
        self.tables().total_cells()
    }

    /// Answers original workload query `query_idx` from the views alone.
    pub fn answer(&mut self, query_idx: usize) -> Result<Answers, SelectionError> {
        self.refresh();
        try_answer_original_query(&self.rec, &self.tables, query_idx)
    }

    /// Applies a triple insertion: updates the base store and every view
    /// via its incremental delta. Under saturation reasoning the RDFS
    /// consequences of the new triple are derived and maintained too.
    /// Returns the merged maintenance counters; a duplicate triple is a
    /// no-op.
    pub fn insert(&mut self, t: Triple) -> MaintenanceStats {
        self.insert_batch(std::slice::from_ref(&t))
    }

    /// Applies a triple deletion (delete-and-rederive): candidate rows are
    /// collected while the triple is still present, then re-derived
    /// against the shrunken store. Under saturation reasoning the triple
    /// must be explicit; the entailments that lose their last derivation
    /// are retracted along with it (an implicit or absent triple is a
    /// no-op, as is a missing one in plain deployments).
    pub fn delete(&mut self, t: Triple) -> MaintenanceStats {
        self.delete_batch(std::slice::from_ref(&t))
    }

    /// Applies a batch of deletions. Under saturation reasoning the
    /// entailment-loss set is computed **once** for the whole batch (one
    /// re-saturation of the explicit store), so retraction feeds should
    /// prefer this over per-triple [`Deployment::delete`].
    pub fn delete_batch(&mut self, batch: &[Triple]) -> MaintenanceStats {
        let mut total = MaintenanceStats::default();
        let doomed: Vec<Triple> = match &mut self.entailment {
            Some(ent) => {
                let mut any = false;
                for &t in batch {
                    any |= ent.explicit.remove(t);
                }
                if !any {
                    return total;
                }
                // Everything in the saturated base that the remaining
                // explicit triples no longer entail must go.
                let still = saturated_copy(&ent.explicit, &ent.schema, &ent.vocab);
                self.store
                    .triples()
                    .iter()
                    .copied()
                    .filter(|&x| !still.contains(x))
                    .collect()
            }
            None => {
                let mut seen: FxHashSet<Triple> = FxHashSet::default();
                batch
                    .iter()
                    .copied()
                    .filter(|&t| self.store.contains(t) && seen.insert(t))
                    .collect()
            }
        };
        for r in doomed {
            total.merge(self.delete_from_base(r));
        }
        total
    }

    /// The two-phase deletion of one triple from the maintained base
    /// store.
    fn delete_from_base(&mut self, t: Triple) -> MaintenanceStats {
        let mut total = MaintenanceStats::default();
        let deltas: Vec<Vec<DeleteDelta>> = self
            .views
            .iter()
            .map(|dv| {
                dv.branches
                    .iter()
                    .map(|b| b.prepare_delete(&self.store, t))
                    .collect()
            })
            .collect();
        self.store.remove(t);
        for (dv, branch_deltas) in self.views.iter_mut().zip(deltas) {
            let mut changed = false;
            for (b, delta) in dv.branches.iter_mut().zip(branch_deltas) {
                let s = b.commit_delete(&self.store, &delta);
                changed |= s.removed > 0;
                total.merge(s);
            }
            if changed {
                self.dirty.insert(dv.id);
            }
        }
        total
    }

    /// Applies a batch of insertions. Under saturation reasoning the RDFS
    /// fixpoint runs **once** for the whole batch (semi-naive: the
    /// consequences of all new explicit triples are derived together,
    /// mirroring how [`Deployment::delete_batch`] amortizes the
    /// entailment-loss computation), and each view's incremental delta is
    /// applied per derived triple against the fully-updated base store —
    /// insertion feeds cost one saturation instead of one per triple.
    pub fn insert_batch(&mut self, batch: &[Triple]) -> MaintenanceStats {
        let mut total = MaintenanceStats::default();
        let mut added: Vec<Triple> = Vec::new();
        match &mut self.entailment {
            Some(ent) => {
                let mut any = false;
                for &t in batch {
                    if ent.explicit.insert(t) {
                        any = true;
                        if self.store.insert(t) {
                            added.push(t);
                        }
                    }
                }
                if !any {
                    return total;
                }
                // One semi-naive fixpoint for the whole batch: saturation
                // is monotone, so the consequences of the new triples are
                // exactly the triples saturate() appends.
                let before = self.store.len();
                saturate(&mut self.store, &ent.schema, &ent.vocab);
                added.extend_from_slice(&self.store.triples()[before..]);
            }
            None => {
                for &t in batch {
                    if self.store.insert(t) {
                        added.push(t);
                    }
                }
            }
        }
        // Per-triple deltas against the final store; the views' row sets
        // deduplicate tuples derivable from several batch triples at once.
        for a in added {
            for dv in &mut self.views {
                let mut changed = false;
                for b in &mut dv.branches {
                    let s = b.apply_insert(&self.store, a);
                    changed |= s.added > 0;
                    total.merge(s);
                }
                if changed {
                    self.dirty.insert(dv.id);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdfviews_core::{select_views, SelectionOptions};

    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..30 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri("p"),
                Term::uri(format!("o{}", i % 3)),
            );
            db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("c"));
        }
        db
    }

    fn recommend(db: &mut Dataset) -> Recommendation {
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        select_views(
            db.store(),
            db.dict(),
            None,
            &[q],
            &SelectionOptions::recommended(),
        )
    }

    #[test]
    fn answers_from_views_match_direct_evaluation() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        assert_eq!(mv.len(), rec.views.len());
        let from_views = answer_original_query(&rec, &mv, 0);
        let direct = rdf_engine::evaluate(db.store(), &rec.workload[0]);
        assert_eq!(from_views, direct);
        assert_eq!(from_views.len(), 10); // s1, s4, …, s28
    }

    #[test]
    fn materialize_state_covers_all_views() {
        let mut db = db();
        let q = parse_query("q(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let workload = vec![q];
        let state = State::initial(&workload);
        let mv = materialize_state(db.store(), &state);
        assert_eq!(mv.len(), 1);
        assert_eq!(mv.total_rows(), 30);
        assert_eq!(mv.total_cells(), 60);
    }

    #[test]
    fn unknown_query_index_is_an_error() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        let err = try_answer_original_query(&rec, &mv, 7).unwrap_err();
        assert_eq!(err, SelectionError::UnknownQuery { index: 7, len: 1 });
    }

    #[test]
    fn deployment_answers_and_maintains() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let direct = rdf_engine::evaluate(db.store(), &dep.recommendation().workload[0]);
        assert_eq!(dep.answer(0).unwrap(), direct);
        assert_eq!(
            dep.answer(3).unwrap_err(),
            SelectionError::UnknownQuery { index: 3, len: 1 }
        );

        // Insert a fresh qualifying subject: answers must grow.
        let before = dep.answer(0).unwrap().len();
        let s = db.dict_mut().intern_uri("fresh");
        let p = db.dict().lookup_uri("p").unwrap();
        let q = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        dep.insert([s, p, o1]);
        dep.insert([s, q, c]);
        let after = dep.answer(0).unwrap();
        assert_eq!(after.len(), before + 1);
        assert!(after.contains(&[s]));

        // Delete one of its triples: the subject disappears again.
        dep.delete([s, q, c]);
        let reverted = dep.answer(0).unwrap();
        assert_eq!(reverted.len(), before);
        assert!(!reverted.contains(&[s]));

        // The deployment's answers always match evaluation over its own
        // (maintained) base store.
        let fresh = rdf_engine::evaluate(dep.store(), &dep.recommendation().workload[0]);
        assert_eq!(dep.answer(0).unwrap(), fresh);
    }

    #[test]
    fn deployment_totals_track_updates() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        let mut dep = Deployment::new(db.store(), rec);
        assert_eq!(dep.view_count(), mv.len());
        assert_eq!(dep.total_rows(), mv.total_rows());
        assert_eq!(dep.total_cells(), mv.total_cells());
        let s = db.dict_mut().intern_uri("extra");
        let p = db.dict().lookup_uri("p").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let stats = dep.insert([s, p, o1]);
        if stats.added > 0 {
            assert!(dep.total_rows() > mv.total_rows());
        }
        // Rematerializing over the maintained store agrees with the
        // incremental tables.
        let remat = materialize_recommendation(dep.store(), dep.recommendation());
        assert_eq!(dep.total_rows(), remat.total_rows());
        assert_eq!(dep.total_cells(), remat.total_cells());
    }
}
