//! Executing a recommendation: materialize the chosen views and answer the
//! workload from them alone — the paper's deployment story ("if the views
//! are stored at the client, no connection is needed and the application
//! can run off-line", Section 1).
//!
//! The centerpiece is [`Deployment`]: a self-contained bundle of a
//! [`Recommendation`], its materialized views and a maintenance base copy
//! of the store. It answers workload queries from the views alone
//! ([`Deployment::answer`]) and keeps the views consistent under triple
//! insertions and deletions ([`Deployment::insert`] /
//! [`Deployment::delete`]) via the incremental deltas of
//! `rdf_engine::maintain`. The free functions below are the stateless
//! building blocks, kept for direct use and backward compatibility.

use std::sync::{Arc, RwLock};

use rdf_engine::{
    evaluate_mixed_stats, evaluate_over_views, materialize_union, Answers, DeleteDelta, DeltaSet,
    EvalStats, MaintainedView, MaintenanceStats, MixedAtom, ViewAtom, ViewTable,
};
use rdf_model::{Dictionary, FxHashMap, FxHashSet, Id, StoreSnapshot, Triple, TripleStore};
use rdf_query::minimize;
use rdf_query::ConjunctiveQuery;
use rdf_reform::{reformulate_with_limit, ReformLimit};
use rdf_schema::{saturate, saturated_copy, Schema, VocabIds};
use rdf_stats::{estimate_conjunction, CardinalityEstimator, RelAtom};
use rdfviews_core::rewrite::{self, PlanAtom, RewritePlan};
use rdfviews_core::sync::{read_unpoisoned, write_unpoisoned};
use rdfviews_core::{Recommendation, SelectionError, State, ViewId};

#[path = "exec_persist.rs"]
mod persist;
pub use persist::{DurableDeployment, RecoveryReport, SNAPSHOT_FILE, WAL_FILE};

/// The materialized views of a recommendation (or state), keyed by view id.
///
/// Tables are held behind `Arc`s so a deployment generation can be
/// published by cloning the map (one `Arc` bump per view): unchanged
/// tables — and their resident hash / sorted index caches — are shared
/// across generations, and only tables rebuilt by maintenance get fresh
/// `Arc`s.
#[derive(Debug, Clone, Default)]
pub struct MaterializedViews {
    tables: FxHashMap<ViewId, Arc<ViewTable>>,
}

impl MaterializedViews {
    /// The table of one view.
    pub fn table(&self, id: ViewId) -> &ViewTable {
        &self.tables[&id]
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no views are materialized.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of cells (rows × columns) across all views — the
    /// measured counterpart of the VSO estimate.
    pub fn total_cells(&self) -> usize {
        self.tables.values().map(|t| t.cell_count()).sum()
    }

    /// Total number of rows across all views.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Total hash-index builds across all view tables. Each table builds
    /// one index per probed bound-column mask and keeps it for its
    /// lifetime, so a served workload (repeated `answer_query` over the
    /// same plans) holds this steady after warm-up — the deployment-level
    /// view of [`ViewTable::index_builds`].
    pub fn index_builds(&self) -> usize {
        self.tables.values().map(|t| t.index_builds()).sum()
    }
}

/// Materializes every view of a state directly (no reformulation).
pub fn materialize_state(store: &TripleStore, state: &State) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for v in state.views() {
        tables.insert(
            v.id,
            Arc::new(rdf_engine::materialize(store, &v.as_query())),
        );
    }
    MaterializedViews { tables }
}

/// Materializes a recommendation using its *materialization definitions* —
/// plain views, or reformulated unions in post-reformulation mode
/// (Theorem 4.2 guarantees the reformulated views on the original store
/// equal the plain views on the saturated store).
pub fn materialize_recommendation(store: &TripleStore, rec: &Recommendation) -> MaterializedViews {
    let mut tables = FxHashMap::default();
    for (view, def) in rec.views.iter().zip(rec.materialization.iter()) {
        tables.insert(view.id, Arc::new(materialize_union(store, def)));
    }
    MaterializedViews { tables }
}

/// Answers one (effective) workload query from the views alone, by
/// executing its rewriting.
pub fn answer_query(state: &State, mv: &MaterializedViews, query_idx: usize) -> Answers {
    let r = &state.rewritings()[query_idx];
    let atoms: Vec<ViewAtom<'_>> = r
        .atoms
        .iter()
        .map(|a| ViewAtom {
            table: mv.table(a.view),
            args: a.args.clone(),
        })
        .collect();
    evaluate_over_views(&atoms, &r.head)
}

/// Answers an *original* workload query: in pre-reformulation mode this is
/// the union of its branch rewritings; otherwise a single rewriting.
/// Returns [`SelectionError::UnknownQuery`] for an out-of-range index.
pub fn try_answer_original_query(
    rec: &Recommendation,
    mv: &MaterializedViews,
    original_idx: usize,
) -> Result<Answers, SelectionError> {
    let state = &rec.outcome.best_state;
    let mut result: Option<Answers> = None;
    for (eff_idx, &orig) in rec.branch_of.iter().enumerate() {
        if orig != original_idx {
            continue;
        }
        let a = answer_query(state, mv, eff_idx);
        result = Some(match result {
            None => a,
            Some(prev) => prev.union(a),
        });
    }
    result.ok_or(SelectionError::UnknownQuery {
        index: original_idx,
        len: rec.original_query_count(),
    })
}

/// Panicking wrapper over [`try_answer_original_query`], kept for
/// backward compatibility.
#[deprecated(
    since = "0.2.0",
    note = "panics on a bad index; use `Deployment::answer(idx)` (or \
            `try_answer_original_query`) for the Result-returning path, and \
            `Deployment::plan`/`answer_query` for ad-hoc queries"
)]
pub fn answer_original_query(
    rec: &Recommendation,
    mv: &MaterializedViews,
    original_idx: usize,
) -> Answers {
    try_answer_original_query(rec, mv, original_idx)
        // xlint: allow(X001, reason = "deprecated panicking wrapper kept for seed-API migration")
        .unwrap_or_else(|e| panic!("answer_original_query: {e}"))
}

/// How [`Deployment::plan`] treats query atoms the deployed views cannot
/// cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnswerPolicy {
    /// Fail with [`SelectionError::NoViewsOnlyPlan`] unless the whole
    /// query is answerable from the views alone — never a base-store scan
    /// (the paper's offline-client setting, where no base store exists).
    ViewsOnly,
    /// Cover what the views can; scan the base store for the rest (the
    /// default).
    #[default]
    Hybrid,
    /// Use the views only when they cover the whole query; otherwise
    /// evaluate the whole query on the base store.
    BaseFallback,
}

/// One executable branch of a [`QueryPlan`]: for plain and saturation
/// deployments the single plan; for reformulation-mode deployments with
/// residual base atoms, one plan per reformulation branch (base-store
/// scans are entailment-complete only through reformulation — view scans
/// need none, their tables already hold the saturated extensions).
#[derive(Debug, Clone)]
pub struct PlannedBranch {
    /// The branch query (the minimized input itself when no reformulation
    /// applies).
    pub query: ConjunctiveQuery,
    /// The plan: view scans and base-store scans.
    pub plan: RewritePlan,
    /// Estimated evaluation cost from the recommendation's statistics
    /// catalog: scanned cardinality plus estimated join output.
    pub estimated_cost: f64,
}

/// An inspectable, executable plan for one ad-hoc conjunctive query over a
/// [`Deployment`] — which views cover which atoms, which atoms fall back
/// to base-store scans, and what evaluation is estimated to cost.
///
/// Produced by [`Deployment::plan`] / [`Deployment::plan_with`] (or their
/// [`DeploymentSnapshot`] counterparts), executed by
/// [`Deployment::answer_query`] / [`DeploymentSnapshot::answer_query`].
/// Planning records the snapshot identity it was made against — the
/// published generation's store version. Plan *structure* is
/// generation-independent (stored rewritings plus the recommendation's
/// static statistics catalog), so under the default policy a plan from an
/// older generation of the **same** deployment executes fine against the
/// current one; under [`Deployment::set_strict`] execution refuses a
/// version mismatch with [`SelectionError::StaleSession`] instead. A plan
/// from a different deployment lineage is always refused
/// ([`SelectionError::ForeignPlan`]).
#[derive(Debug, Clone)]
pub struct QueryPlan {
    query: ConjunctiveQuery,
    branches: Vec<PlannedBranch>,
    policy: AnswerPolicy,
    store_version: u64,
    /// The deployment lineage that produced the plan — plans bind view
    /// ids of their own deployment and are refused elsewhere
    /// ([`SelectionError::ForeignPlan`]).
    deployment: u64,
}

impl QueryPlan {
    /// The minimized query this plan answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The executable branches.
    pub fn branches(&self) -> &[PlannedBranch] {
        &self.branches
    }

    /// The policy the plan was made under.
    pub fn policy(&self) -> AnswerPolicy {
        self.policy
    }

    /// The snapshot identity the plan was made against: the published
    /// generation's store version at planning time.
    pub fn store_version(&self) -> u64 {
        self.store_version
    }

    /// Whether every branch answers from the views alone.
    pub fn is_views_only(&self) -> bool {
        self.branches.iter().all(|b| b.plan.is_views_only())
    }

    /// Total base-store atoms across branches (0 for a views-only plan).
    pub fn residual_atoms(&self) -> usize {
        self.branches.iter().map(|b| b.plan.residual_atoms()).sum()
    }

    /// The distinct views scanned, in id order.
    pub fn views_used(&self) -> Vec<ViewId> {
        let mut ids: Vec<ViewId> = self
            .branches
            .iter()
            .flat_map(|b| b.plan.views_used())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total estimated evaluation cost across branches.
    pub fn estimated_cost(&self) -> f64 {
        self.branches.iter().map(|b| b.estimated_cost).sum()
    }

    /// A human-readable rendering of the plan, one line per branch.
    pub fn describe(&self, dict: &Dictionary) -> String {
        use rdf_query::display::{atom_to_string, term_to_string};
        let mut out = String::new();
        for (bi, b) in self.branches.iter().enumerate() {
            let atoms: Vec<String> = b
                .plan
                .atoms
                .iter()
                .map(|pa| match pa {
                    PlanAtom::View(ra) => {
                        let args: Vec<String> =
                            ra.args.iter().map(|t| term_to_string(t, dict)).collect();
                        format!("{}({})", ra.view, args.join(", "))
                    }
                    PlanAtom::Base(a) => format!("base {}", atom_to_string(a, dict)),
                })
                .collect();
            out.push_str(&format!(
                "branch {bi} [{}] cost≈{:.3e}: {}\n",
                if b.plan.is_views_only() {
                    "views-only".to_string()
                } else {
                    format!("hybrid, {} base atom(s)", b.plan.residual_atoms())
                },
                b.estimated_cost,
                atoms.join(" ⋈ ")
            ));
        }
        out
    }
}

/// One materialized view kept incrementally consistent: a maintained
/// instance per materialization branch (one for plain views, several for
/// reformulated unions).
#[derive(Debug, Clone)]
struct DeployedView {
    id: ViewId,
    arity: usize,
    branches: Vec<MaintainedView>,
}

impl DeployedView {
    /// The branch-union table (deduplicated across branches).
    fn merged_table(&self) -> ViewTable {
        match self.branches.as_slice() {
            [single] => single.to_table(),
            branches => {
                let mut rows: FxHashSet<Vec<Id>> = FxHashSet::default();
                for b in branches {
                    rows.extend(b.to_table().rows().map(|r| r.to_vec()));
                }
                ViewTable::from_rows(self.arity, rows)
            }
        }
    }
}

/// The entailment context of a saturation-mode deployment: the schema,
/// and the explicit (unsaturated) triples from which the maintained base
/// store is re-derivable.
#[derive(Debug, Clone)]
struct EntailmentBase {
    schema: Schema,
    vocab: VocabIds,
    explicit: TripleStore,
}

/// A deployed recommendation: the views materialized, a maintenance base
/// copy of the store, and the machinery to answer the workload from the
/// views alone while absorbing updates.
///
/// This is the paper's three-tier / offline client bundle: once built, it
/// no longer needs the advisor or the original database. Triple ids keep
/// referring to the dictionary the recommendation was built with.
///
/// Updates flow through [`Deployment::insert_batch`] /
/// [`Deployment::delete_batch`]: one set-at-a-time delta join per view per
/// batch keeps the views exactly consistent, and each completed batch
/// atomically **publishes** a new read generation — an immutable
/// [`StoreSnapshot`] plus `Arc`-shared view tables — swapped under a
/// light `RwLock` while pinned readers ([`Deployment::snapshot`] /
/// [`Deployment::reader`]) run wait-free on their own generations.
///
/// The base store is also directly writable ([`Deployment::store_mut`]);
/// such writes bypass maintenance, so no new generation is published and
/// reads keep serving the last *consistent* one until
/// [`Deployment::rematerialize`] absorbs them. Under the default policy
/// that is the entire contract — reads never refuse; opt into the
/// pre-snapshot refuse-on-mismatch behavior with
/// [`Deployment::set_strict`], which restores
/// [`SelectionError::StaleSession`] on every read entry point while the
/// views lag the store.
///
/// Under saturation reasoning the deployment also carries the schema and
/// the explicit store, so updates stay entailment-aware: an inserted
/// triple brings its RDFS consequences into the views, and a deleted
/// explicit triple retracts exactly the entailments that lose their last
/// derivation. (The schema itself is assumed fixed for the deployment's
/// lifetime — schema-statement updates require re-deploying.)
#[derive(Debug)]
pub struct Deployment {
    /// The shared planning context (recommendation, reformulation schema,
    /// lineage ids): everything planning needs and maintenance never
    /// touches, `Arc`-shared with every snapshot and reader so plans can
    /// be produced off any pinned generation without the deployment.
    ctx: Arc<PlanCtx>,
    store: TripleStore,
    views: Vec<DeployedView>,
    /// The live working tables maintenance rebuilds in place; published
    /// generations clone this map (one `Arc` bump per view), so unchanged
    /// tables — with their warm index caches — are shared across
    /// generations.
    tables: MaterializedViews,
    dirty: FxHashSet<ViewId>,
    entailment: Option<EntailmentBase>,
    /// The store version the views are maintained to; diverges from
    /// `store.version()` only through direct `store_mut` writes. Always
    /// equal to the published generation's version.
    maintained_version: u64,
    /// Opt-in strictness: when set, every read entry point refuses with
    /// [`SelectionError::StaleSession`] while the views lag the store or
    /// a plan's version stamp mismatches — the pre-snapshot contract.
    strict: bool,
    /// The published read generation, swapped whole under a light
    /// `RwLock`: readers clone the `Arc` (one read-lock acquisition per
    /// pin) and then run wait-free; the writer publishes by one
    /// assignment. Shared with every [`SnapshotReader`].
    current: Arc<RwLock<Arc<Generation>>>,
    /// Cached plans of the stored workload rewritings, keyed by original
    /// query index — [`Deployment::answer`] serves repeated calls from
    /// here instead of re-assembling (and re-estimating) the plan. Plan
    /// structure is generation-independent, so entries survive generation
    /// swaps: their version stamp is re-synced to the published snapshot
    /// identity on each use instead of thrashing the cache.
    workload_plans: FxHashMap<usize, QueryPlan>,
    /// Per-branch engine decisions and leapfrog counters from the most
    /// recent [`Deployment::answer_query`] call — see
    /// [`Deployment::last_eval_stats`].
    last_eval: Vec<EvalStats>,
}

impl Clone for Deployment {
    fn clone(&self) -> Self {
        Self {
            // Sharing the context keeps the clone's lineage: plans made by
            // either deployment execute on both (their stores, views and
            // view ids are identical at the point of cloning).
            ctx: Arc::clone(&self.ctx),
            store: self.store.clone(),
            views: self.views.clone(),
            tables: self.tables.clone(),
            dirty: self.dirty.clone(),
            entailment: self.entailment.clone(),
            maintained_version: self.maintained_version,
            strict: self.strict,
            // A fresh generation slot: the two deployments diverge from
            // here, so the clone must publish to its own readers only.
            current: Arc::new(RwLock::new(self.current_generation())),
            workload_plans: self.workload_plans.clone(),
            last_eval: self.last_eval.clone(),
        }
    }
}

/// The immutable planning context of a deployment, `Arc`-shared between
/// the live [`Deployment`], every [`DeploymentSnapshot`] and every
/// [`SnapshotReader`]: planning reads only view definitions and the
/// recommendation's static statistics catalog, so one context serves all
/// generations.
#[derive(Debug, Clone)]
struct PlanCtx {
    rec: Recommendation,
    /// The schema for ad-hoc query reformulation — set on deployments of
    /// pre/post-reformulation recommendations, whose base store is the
    /// *original* (unsaturated) one: hybrid plans reformulate the query so
    /// that base-store scans stay entailment-complete (Theorem 4.1).
    /// Saturation-mode deployments need none (their base store is
    /// saturated); neither do views-only plans in any mode (the view
    /// tables already hold the saturated extensions, Theorem 4.2).
    reform: Option<(Schema, VocabIds)>,
    /// Process-unique lineage id stamped into every [`QueryPlan`], so a
    /// plan from one deployment cannot silently execute on another whose
    /// store happens to share a version number (clones keep the id: their
    /// stores, views and view ids are identical at the point of cloning).
    deployment_id: u64,
    /// The durable lineage id: persisted into snapshot bundles and
    /// restored by [`Deployment::open`], unlike `deployment_id` (which is
    /// process-scoped and regenerated on every open so stale in-memory
    /// plans can never execute against a reloaded deployment). Initially
    /// equal to `deployment_id`.
    lineage: u64,
}

/// One published read generation: an immutable pinned store plus the
/// `Arc`-shared view tables consistent with it. Swapped whole in the
/// deployment's generation slot; readers holding an older `Arc` keep
/// their entire generation alive until they drop it.
#[derive(Debug)]
struct Generation {
    store: StoreSnapshot,
    tables: Arc<MaterializedViews>,
}

impl Generation {
    fn version(&self) -> u64 {
        self.store.version()
    }
}

/// Allocator for [`Deployment`] lineage ids.
static DEPLOYMENT_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A pinned, immutable read generation of a [`Deployment`]: the paper's
/// serving story under concurrent maintenance. Produced by
/// [`Deployment::snapshot`] / [`SnapshotReader::snapshot`]; every method
/// takes `&self`, so a snapshot can be shared across threads and answers
/// wait-free — no locks are taken after the pin, and writer batches
/// publishing new generations never touch this one. Answers are as-of
/// [`DeploymentSnapshot::version`] forever; [`SelectionError::StaleSession`]
/// cannot occur on a snapshot.
///
/// Memory: a retained snapshot keeps its whole generation alive — the
/// pinned store (triple list + built index runs) and every view table of
/// its generation — though all of it is `Arc`-shared with the live
/// deployment until maintenance diverges them. Drop the snapshot (and any
/// clones) to release the pin.
#[derive(Debug, Clone)]
pub struct DeploymentSnapshot {
    ctx: Arc<PlanCtx>,
    generation: Arc<Generation>,
}

impl DeploymentSnapshot {
    /// The pinned generation's store version — the snapshot identity
    /// stamped into plans made from this snapshot.
    pub fn version(&self) -> u64 {
        self.generation.version()
    }

    /// The durable lineage id of the deployment this snapshot pins.
    pub fn lineage(&self) -> u64 {
        self.ctx.lineage
    }

    /// The pinned base store generation.
    pub fn store(&self) -> &TripleStore {
        &self.generation.store
    }

    /// The pinned view tables.
    pub fn tables(&self) -> &MaterializedViews {
        &self.generation.tables
    }

    /// Plans original workload query `query_idx` from its stored
    /// rewriting(s) against this snapshot — see
    /// [`Deployment::plan_workload`].
    pub fn plan_workload(&self, query_idx: usize) -> Result<QueryPlan, SelectionError> {
        self.ctx.plan_workload(query_idx, self.version())
    }

    /// Plans an ad-hoc query against this snapshot under the default
    /// ([`AnswerPolicy::Hybrid`]) policy — see [`Deployment::plan`].
    pub fn plan(&self, q: &ConjunctiveQuery) -> Result<QueryPlan, SelectionError> {
        self.plan_with(q, AnswerPolicy::default())
    }

    /// Plans an ad-hoc query against this snapshot under `policy` — see
    /// [`Deployment::plan_with`].
    pub fn plan_with(
        &self,
        q: &ConjunctiveQuery,
        policy: AnswerPolicy,
    ) -> Result<QueryPlan, SelectionError> {
        self.ctx.plan_with(q, policy, self.version())
    }

    /// Executes a plan against the pinned generation. Plans from any
    /// generation of the same deployment are accepted (plan structure is
    /// generation-independent); a plan from a different deployment fails
    /// with [`SelectionError::ForeignPlan`].
    pub fn answer_query(&self, plan: &QueryPlan) -> Result<Answers, SelectionError> {
        Ok(self.answer_query_stats(plan)?.0)
    }

    /// Like [`DeploymentSnapshot::answer_query`], also returning the
    /// per-branch engine decisions and leapfrog counters (the snapshot is
    /// immutable, so the stats are returned rather than stored).
    pub fn answer_query_stats(
        &self,
        plan: &QueryPlan,
    ) -> Result<(Answers, Vec<EvalStats>), SelectionError> {
        if plan.deployment != self.ctx.deployment_id {
            return Err(SelectionError::ForeignPlan);
        }
        Ok(execute_plan(
            &self.generation.store,
            &self.generation.tables,
            plan,
        ))
    }

    /// Answers original workload query `query_idx` from the pinned
    /// generation.
    pub fn answer(&self, query_idx: usize) -> Result<Answers, SelectionError> {
        let plan = self.plan_workload(query_idx)?;
        self.answer_query(&plan)
    }

    /// Plans and answers an ad-hoc query against the pinned generation
    /// under the default ([`AnswerPolicy::Hybrid`]) policy.
    pub fn answer_adhoc(&self, q: &ConjunctiveQuery) -> Result<Answers, SelectionError> {
        self.answer_adhoc_with(q, AnswerPolicy::default())
    }

    /// Plans and answers an ad-hoc query against the pinned generation
    /// under `policy`.
    pub fn answer_adhoc_with(
        &self,
        q: &ConjunctiveQuery,
        policy: AnswerPolicy,
    ) -> Result<Answers, SelectionError> {
        let plan = self.plan_with(q, policy)?;
        self.answer_query(&plan)
    }
}

/// A cheap, thread-safe handle onto a deployment's published-generation
/// slot: [`SnapshotReader::snapshot`] pins whatever generation the writer
/// most recently published (one read-lock acquisition, then wait-free).
/// Clone one per reader thread; the writer keeps mutating the
/// [`Deployment`] concurrently, and each pin observes a complete,
/// consistent generation — never a torn one, never
/// [`SelectionError::StaleSession`].
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    ctx: Arc<PlanCtx>,
    current: Arc<RwLock<Arc<Generation>>>,
}

impl SnapshotReader {
    /// Pins the most recently published generation.
    pub fn snapshot(&self) -> DeploymentSnapshot {
        DeploymentSnapshot {
            ctx: Arc::clone(&self.ctx),
            generation: Arc::clone(&read_unpoisoned(&self.current)),
        }
    }

    /// The durable lineage id of the deployment this reader serves.
    pub fn lineage(&self) -> u64 {
        self.ctx.lineage
    }
}

/// Executes every branch of a plan against one generation (a pinned
/// store + its view tables) and unions the branch answers set-wise. The
/// shared execution core of [`Deployment::answer_query`] and
/// [`DeploymentSnapshot::answer_query`].
fn execute_plan(
    store: &TripleStore,
    tables: &MaterializedViews,
    plan: &QueryPlan,
) -> (Answers, Vec<EvalStats>) {
    let arity = plan.query.head.len();
    let mut set: FxHashSet<Vec<Id>> = FxHashSet::default();
    let mut stats = Vec::with_capacity(plan.branches.len());
    for b in &plan.branches {
        let atoms: Vec<MixedAtom<'_>> = b
            .plan
            .atoms
            .iter()
            .map(|pa| match pa {
                PlanAtom::View(ra) => MixedAtom::View(ViewAtom {
                    table: tables.table(ra.view),
                    args: ra.args.clone(),
                }),
                PlanAtom::Base(a) => MixedAtom::Store(*a),
            })
            .collect();
        let (answers, branch_stats) = evaluate_mixed_stats(store, &atoms, &b.plan.head);
        set.extend(answers.into_tuples());
        stats.push(branch_stats);
    }
    (Answers::from_set(arity, set), stats)
}

impl Deployment {
    /// Materializes `rec`'s views over `store` and snapshots the store as
    /// the maintenance base. (The facade's `Advisor::deploy` calls this.)
    pub fn new(store: &TripleStore, rec: Recommendation) -> Self {
        let store = store.clone();
        let views: Vec<DeployedView> = rec
            .views
            .iter()
            .zip(rec.materialization.iter())
            .map(|(view, def)| DeployedView {
                id: view.id,
                arity: view.head.len(),
                branches: def
                    .branches()
                    .iter()
                    .map(|b| MaintainedView::new(&store, b.clone()))
                    .collect(),
            })
            .collect();
        let mut tables = MaterializedViews::default();
        for dv in &views {
            tables.tables.insert(dv.id, Arc::new(dv.merged_table()));
        }
        let maintained_version = store.version();
        let id = DEPLOYMENT_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let generation = Arc::new(Generation {
            store: store.snapshot(),
            tables: Arc::new(tables.clone()),
        });
        Self {
            ctx: Arc::new(PlanCtx {
                rec,
                reform: None,
                deployment_id: id,
                lineage: id,
            }),
            store,
            views,
            tables,
            dirty: FxHashSet::default(),
            entailment: None,
            maintained_version,
            strict: false,
            current: Arc::new(RwLock::new(generation)),
            workload_plans: FxHashMap::default(),
            last_eval: Vec::new(),
        }
    }

    /// The durable lineage id: stable across [`Deployment::persist`] /
    /// [`Deployment::open`] round-trips, so a recovered deployment can be
    /// traced back to the tuning session that produced it.
    pub fn lineage(&self) -> u64 {
        self.ctx.lineage
    }

    /// Attaches a schema for **ad-hoc query** reformulation — used by
    /// `Advisor::deploy` for pre/post-reformulation recommendations, whose
    /// base store is the original (unsaturated) one. Hybrid/base-fallback
    /// plans then reformulate the query per Theorem 4.1 so base-store
    /// scans remain entailment-complete; without it, residual base scans
    /// on such a deployment would silently miss implicit triples.
    pub fn with_query_reformulation(mut self, schema: Schema, vocab: VocabIds) -> Self {
        // Builder-time only: no snapshots or readers exist yet, so the
        // context `Arc` is unshared and `make_mut` mutates in place.
        Arc::make_mut(&mut self.ctx).reform = Some((schema, vocab));
        self
    }

    /// Materializes `rec`'s views over the `saturated` store and keeps the
    /// `explicit` store plus the schema so that updates remain
    /// entailment-aware (the saturation-mode deployment; `Advisor::deploy`
    /// picks this automatically).
    pub fn with_entailment(
        explicit: &TripleStore,
        saturated: &TripleStore,
        rec: Recommendation,
        schema: Schema,
        vocab: VocabIds,
    ) -> Self {
        let mut dep = Self::new(saturated, rec);
        dep.entailment = Some(EntailmentBase {
            schema,
            vocab,
            explicit: explicit.clone(),
        });
        dep
    }

    /// The recommendation this deployment serves.
    pub fn recommendation(&self) -> &Recommendation {
        &self.ctx.rec
    }

    /// Whether strict (refuse-on-mismatch) read semantics are enabled.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Opts into the pre-snapshot strictness contract: while direct
    /// `store_mut` writes leave the views behind the store — or when a
    /// plan's version stamp mismatches the current store — read entry
    /// points refuse with [`SelectionError::StaleSession`] instead of
    /// serving the last published consistent generation. Use this when a
    /// silently as-of answer is worse than no answer (e.g. read-your-own-
    /// writes tests against bulk loads).
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Pins the current published generation as an immutable
    /// [`DeploymentSnapshot`]: answers stay as-of this generation no
    /// matter what maintenance applies afterwards. O(1) — one read-lock
    /// acquisition, `Arc` bumps only.
    pub fn snapshot(&self) -> DeploymentSnapshot {
        DeploymentSnapshot {
            ctx: Arc::clone(&self.ctx),
            generation: self.current_generation(),
        }
    }

    /// A cheap `Send + Sync` handle for reader threads: each
    /// [`SnapshotReader::snapshot`] call pins the generation most recently
    /// published by this deployment's maintenance batches.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            ctx: Arc::clone(&self.ctx),
            current: Arc::clone(&self.current),
        }
    }

    /// The published read generation (always complete and consistent).
    fn current_generation(&self) -> Arc<Generation> {
        Arc::clone(&read_unpoisoned(&self.current))
    }

    /// Publishes the current (fresh) store + tables as the new read
    /// generation: pinned readers keep their old `Arc`s, new pins get
    /// this one. Must only be called when the views are maintained to the
    /// store (`!is_stale()`), so every published generation is consistent.
    fn publish(&mut self) {
        self.rebuild_dirty();
        let generation = Arc::new(Generation {
            store: self.store.snapshot(),
            tables: Arc::new(self.tables.clone()),
        });
        *write_unpoisoned(&self.current) = generation;
    }

    /// The maintenance base store (reflects all applied updates).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Direct writable access to the maintenance base store — the
    /// versioned writable-store escape hatch for bulk loads that bypass
    /// incremental maintenance. After direct writes the views no longer
    /// reflect the store, and every read entry point returns
    /// [`SelectionError::StaleSession`] until [`Deployment::rematerialize`]
    /// runs. Returns `None` for entailment-aware deployments, whose
    /// explicit/saturated invariant direct writes would corrupt
    /// undetectably — feed those through [`Deployment::insert_batch`] /
    /// [`Deployment::delete_batch`] instead.
    pub fn store_mut(&mut self) -> Option<&mut TripleStore> {
        match self.entailment {
            Some(_) => None,
            None => Some(&mut self.store),
        }
    }

    /// The store version the views are currently maintained to.
    pub fn maintained_version(&self) -> u64 {
        self.maintained_version
    }

    /// Whether direct writes have desynchronized the views from the base
    /// store.
    pub fn is_stale(&self) -> bool {
        self.store.version() != self.maintained_version
    }

    /// Refuses reads while the views lag behind the base store.
    fn ensure_fresh(&self) -> Result<(), SelectionError> {
        if self.is_stale() {
            return Err(SelectionError::StaleSession {
                prepared: self.maintained_version,
                current: self.store.version(),
            });
        }
        Ok(())
    }

    /// Re-syncs the version stamp and publishes the new read generation
    /// after a maintenance pass — but only when the deployment was fresh
    /// going in. A batch applied on top of unabsorbed direct `store_mut`
    /// writes maintains the views for *its* triples only, so the
    /// deployment must stay stale (and keep serving the last consistent
    /// generation) until [`Deployment::rematerialize`] picks up the
    /// direct writes too.
    fn sync_version(&mut self, was_fresh: bool) {
        // `was_fresh` means the published generation matched the store at
        // batch start; republish only if the batch actually moved it.
        if was_fresh && self.maintained_version != self.store.version() {
            self.maintained_version = self.store.version();
            self.publish();
        }
    }

    /// Rebuilds every view from scratch over the current base store,
    /// re-syncs the version stamp, and publishes the result as the new
    /// read generation — the recovery path after direct writes through
    /// [`Deployment::store_mut`].
    pub fn rematerialize(&mut self) {
        for dv in &mut self.views {
            for b in &mut dv.branches {
                *b = MaintainedView::new(&self.store, b.definition().clone());
            }
        }
        self.dirty.clear();
        for dv in &self.views {
            self.tables
                .tables
                .insert(dv.id, Arc::new(dv.merged_table()));
        }
        self.maintained_version = self.store.version();
        self.publish();
    }

    /// Number of deployed views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Rebuilds the tables of views whose rows changed since the last
    /// publish: each rebuilt table gets a fresh `Arc`, so generations
    /// already published keep the pre-batch tables untouched.
    fn rebuild_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        for dv in &self.views {
            if self.dirty.remove(&dv.id) {
                self.tables
                    .tables
                    .insert(dv.id, Arc::new(dv.merged_table()));
            }
        }
    }

    /// The current view tables (refreshed if updates arrived). In strict
    /// mode fails with [`SelectionError::StaleSession`] after unmaintained
    /// direct writes; otherwise the tables reflect the last maintained
    /// (published) generation.
    pub fn tables(&mut self) -> Result<&MaterializedViews, SelectionError> {
        if self.strict {
            self.ensure_fresh()?;
        }
        self.rebuild_dirty();
        Ok(&self.tables)
    }

    /// Total rows across all views — the measured counterpart of VSO.
    pub fn total_rows(&mut self) -> Result<usize, SelectionError> {
        Ok(self.tables()?.total_rows())
    }

    /// Total cells (rows × columns) across all views.
    pub fn total_cells(&mut self) -> Result<usize, SelectionError> {
        Ok(self.tables()?.total_cells())
    }

    /// Total hash-index builds across the deployment's current view
    /// tables. Rewriting execution builds each `(table, bound-column
    /// mask)` index on first probe and then reuses it, so repeatedly
    /// answering the same plans leaves this constant; maintenance that
    /// rebuilds a table starts that table's count afresh (new version,
    /// new cache). Does not force a rebuild of dirty tables.
    pub fn view_index_builds(&self) -> usize {
        self.tables.index_builds()
    }

    /// Answers original workload query `query_idx` from the views alone —
    /// a thin delegate that plans the stored workload rewriting
    /// ([`Deployment::plan_workload`]) and executes it through
    /// [`Deployment::answer_query`]. In strict mode this fails with
    /// [`SelectionError::StaleSession`] after unmaintained direct writes;
    /// by default it answers from the published generation.
    pub fn answer(&mut self, query_idx: usize) -> Result<Answers, SelectionError> {
        if self.strict {
            self.ensure_fresh()?;
        }
        // Serve repeated calls from the plan cache. Plan structure is
        // generation-independent (stored rewritings + static catalog), so
        // a cached entry is re-stamped with the current snapshot identity
        // instead of re-planned: generation swaps neither thrash the
        // cache nor let a plan carry a foreign generation's stamp.
        let version = self.maintained_version;
        let plan = match self.workload_plans.get_mut(&query_idx) {
            Some(p) => {
                p.store_version = version;
                p.clone()
            }
            None => {
                let plan = self.ctx.plan_workload(query_idx, version)?;
                self.workload_plans.insert(query_idx, plan.clone());
                plan
            }
        };
        self.answer_query(&plan)
    }

    /// Plans original workload query `query_idx` from its **stored**
    /// rewriting(s) — no cover search needed: the recommendation already
    /// carries one views-only rewriting per effective query (several
    /// branches in pre-reformulation mode). The resulting plan is always
    /// views-only.
    pub fn plan_workload(&self, query_idx: usize) -> Result<QueryPlan, SelectionError> {
        if self.strict {
            self.ensure_fresh()?;
        }
        self.ctx.plan_workload(query_idx, self.maintained_version)
    }

    /// Plans an **ad-hoc** conjunctive query — any query, registered in
    /// the tuned workload or not — under the default
    /// ([`AnswerPolicy::Hybrid`]) policy. See [`Deployment::plan_with`].
    pub fn plan(&self, q: &ConjunctiveQuery) -> Result<QueryPlan, SelectionError> {
        self.plan_with(q, AnswerPolicy::default())
    }

    /// Plans an ad-hoc conjunctive query under `policy`.
    ///
    /// The query is minimized, then the bucket/MiniCon-style cover search
    /// of `rdfviews_core::rewrite` looks for a **complete views-only
    /// rewriting** (verified equivalent through its unfolding). Such a
    /// plan answers the query in every reasoning mode without
    /// reformulation — the view tables already hold the saturated
    /// extensions (Theorem 4.2). When atoms stay uncovered:
    ///
    /// * [`AnswerPolicy::ViewsOnly`] fails with
    ///   [`SelectionError::NoViewsOnlyPlan`];
    /// * [`AnswerPolicy::Hybrid`] mixes view scans with base-store scans;
    /// * [`AnswerPolicy::BaseFallback`] evaluates the whole query on the
    ///   base store.
    ///
    /// On deployments of pre/post-reformulation recommendations the base
    /// store is the *original* (unsaturated) one, so plans with base
    /// atoms first split the query into its reformulation branches
    /// (Theorem 4.1) — one [`PlannedBranch`] each — keeping base scans
    /// entailment-complete; branch answers union at execution.
    pub fn plan_with(
        &self,
        q: &ConjunctiveQuery,
        policy: AnswerPolicy,
    ) -> Result<QueryPlan, SelectionError> {
        if self.strict {
            self.ensure_fresh()?;
        }
        self.ctx.plan_with(q, policy, self.maintained_version)
    }
}

impl PlanCtx {
    /// [`Deployment::plan_workload`], parameterized by the snapshot
    /// identity to stamp into the plan.
    fn plan_workload(&self, query_idx: usize, version: u64) -> Result<QueryPlan, SelectionError> {
        let state = &self.rec.outcome.best_state;
        let mut branches = Vec::new();
        for (eff, &orig) in self.rec.branch_of.iter().enumerate() {
            if orig != query_idx {
                continue;
            }
            let r = &state.rewritings()[eff];
            let plan = RewritePlan {
                head: r.head.clone(),
                atoms: r.atoms.iter().map(|a| PlanAtom::View(a.clone())).collect(),
            };
            branches.push(self.branch_of_plan(self.rec.workload[eff].clone(), plan));
        }
        if branches.is_empty() {
            return Err(SelectionError::UnknownQuery {
                index: query_idx,
                len: self.rec.original_query_count(),
            });
        }
        Ok(QueryPlan {
            query: branches[0].query.clone(),
            branches,
            policy: AnswerPolicy::ViewsOnly,
            store_version: version,
            deployment: self.deployment_id,
        })
    }

    /// [`Deployment::plan_with`], parameterized by the snapshot identity
    /// to stamp into the plan.
    fn plan_with(
        &self,
        q: &ConjunctiveQuery,
        policy: AnswerPolicy,
        version: u64,
    ) -> Result<QueryPlan, SelectionError> {
        if q.atoms.is_empty() {
            return Err(SelectionError::UnsupportedQuery {
                reason: "the query body is empty".into(),
            });
        }
        if !q.is_safe() {
            return Err(SelectionError::UnsupportedQuery {
                reason: "a head variable does not occur in the body".into(),
            });
        }
        if q.atoms.len() > rewrite::MAX_QUERY_ATOMS {
            return Err(SelectionError::UnsupportedQuery {
                reason: format!(
                    "the query has {} atoms; the planner caps at {}",
                    q.atoms.len(),
                    rewrite::MAX_QUERY_ATOMS
                ),
            });
        }
        let minimized = minimize(q).normalized();
        let views = &self.rec.views;
        // One planner pass: a complete views-only cover when it exists,
        // the best hybrid otherwise.
        let best = rewrite::rewrite_best(&minimized, views);
        if best.is_views_only() {
            let branch = self.branch_of_plan(minimized.clone(), best);
            return Ok(QueryPlan {
                query: minimized,
                branches: vec![branch],
                policy,
                store_version: version,
                deployment: self.deployment_id,
            });
        }
        if policy == AnswerPolicy::ViewsOnly {
            // (No reformulation detour can save the views-only policy:
            // the original query is always its own first reformulation
            // branch, so an uncoverable query has an uncoverable branch.)
            return Err(SelectionError::NoViewsOnlyPlan {
                residual_atoms: best.residual_atoms(),
            });
        }
        let branches: Vec<PlannedBranch> = match self.reformulation_branches(&minimized)? {
            Some(branch_queries) => branch_queries
                .into_iter()
                .map(|b| {
                    // Branch 0 is the original query: reuse its search.
                    let best_b = if b == minimized {
                        best.clone()
                    } else {
                        rewrite::rewrite_best(&b, views)
                    };
                    let plan = match policy {
                        AnswerPolicy::Hybrid => best_b,
                        _ if best_b.is_views_only() => best_b,
                        _ => rewrite::base_plan(&b),
                    };
                    self.branch_of_plan(b, plan)
                })
                .collect(),
            None => {
                let plan = match policy {
                    AnswerPolicy::Hybrid => best,
                    _ => rewrite::base_plan(&minimized),
                };
                vec![self.branch_of_plan(minimized.clone(), plan)]
            }
        };
        Ok(QueryPlan {
            query: minimized,
            branches,
            policy,
            store_version: version,
            deployment: self.deployment_id,
        })
    }

    /// The reformulation branches of a (minimized) ad-hoc query, for
    /// deployments carrying a reformulation schema: `Ok(None)` when the
    /// deployment needs no reformulation (plain / saturation),
    /// `Err(UnsupportedQuery)` when the expansion exceeds the branch cap.
    fn reformulation_branches(
        &self,
        minimized: &ConjunctiveQuery,
    ) -> Result<Option<Vec<ConjunctiveQuery>>, SelectionError> {
        let Some((schema, vocab)) = &self.reform else {
            return Ok(None);
        };
        let limit = ReformLimit { max_queries: 256 };
        let ucq = reformulate_with_limit(minimized, schema, vocab, limit).map_err(|partial| {
            SelectionError::UnsupportedQuery {
                reason: format!(
                    "reformulation exceeds {} branches; answer it views-only or re-deploy \
                     under saturation",
                    partial.len()
                ),
            }
        })?;
        Ok(Some(
            ucq.branches()
                .iter()
                .map(|b| minimize(b).normalized())
                .collect(),
        ))
    }

    fn branch_of_plan(&self, query: ConjunctiveQuery, plan: RewritePlan) -> PlannedBranch {
        let estimated_cost = self.estimate_plan(&plan);
        PlannedBranch {
            query,
            plan,
            estimated_cost,
        }
    }

    /// Estimated evaluation cost of one plan from the recommendation's
    /// statistics catalog (the same System-R estimator the search used):
    /// total scanned cardinality plus the estimated join output.
    fn estimate_plan(&self, plan: &RewritePlan) -> f64 {
        let est = CardinalityEstimator::new(&self.rec.catalog);
        let rel_atoms: Vec<RelAtom> = plan
            .atoms
            .iter()
            .map(|pa| match pa {
                PlanAtom::View(ra) => {
                    let view = self
                        .rec
                        .views
                        .iter()
                        .find(|v| v.id == ra.view)
                        // xlint: allow(X001, reason = "plans are built only over views of this recommendation")
                        .expect("plan scans a deployed view");
                    RelAtom {
                        stats: est.view_stats(&view.as_query()),
                        args: ra.args.clone(),
                        baked: false,
                    }
                }
                PlanAtom::Base(a) => RelAtom {
                    stats: est.atom_stats(a),
                    args: a.terms().to_vec(),
                    baked: true,
                },
            })
            .collect();
        let io: f64 = rel_atoms.iter().map(|a| a.stats.card).sum();
        io + estimate_conjunction(&rel_atoms)
    }
}

impl Deployment {
    /// Executes a plan produced by [`Deployment::plan`] /
    /// [`Deployment::plan_workload`]: every branch runs through the shared
    /// join pipeline (`evaluate_mixed_stats` — view scans probe the
    /// materialized tables through resident indexes, base atoms the
    /// store's permutation indexes; cyclic branch shapes route to the
    /// worst-case-optimal leapfrog engine, see
    /// [`Deployment::last_eval_stats`]), and branch answers union
    /// set-wise. Execution runs against the **published generation** —
    /// the views and store of the last completed maintenance pass — so
    /// plans from any generation of this deployment execute consistently
    /// even while direct writes are pending.
    ///
    /// In strict mode ([`Deployment::set_strict`]) this instead fails
    /// with [`SelectionError::StaleSession`] when the deployment is stale
    /// **or** when the plan was made against an older store version:
    /// maintenance between planning and execution then requires
    /// re-planning, never a silently as-of read. A plan produced by a
    /// *different* deployment always fails with
    /// [`SelectionError::ForeignPlan`] — view ids only mean something
    /// within their own lineage.
    pub fn answer_query(&mut self, plan: &QueryPlan) -> Result<Answers, SelectionError> {
        if plan.deployment != self.ctx.deployment_id {
            return Err(SelectionError::ForeignPlan);
        }
        if self.strict {
            self.ensure_fresh()?;
            if plan.store_version != self.store.version() {
                return Err(SelectionError::StaleSession {
                    prepared: plan.store_version,
                    current: self.store.version(),
                });
            }
        }
        let generation = self.current_generation();
        let (answers, stats) = execute_plan(&generation.store, &generation.tables, plan);
        self.last_eval = stats;
        Ok(answers)
    }

    /// Per-branch evaluation statistics from the most recent
    /// [`Deployment::answer_query`] (and thus [`Deployment::answer`] /
    /// [`Deployment::answer_adhoc`]) call: which join engine the adaptive
    /// selector picked for each union branch — cyclic branch shapes route
    /// to the worst-case-optimal leapfrog triejoin, acyclic ones to the
    /// compiled backtracking core — plus leapfrog seek/emit counters.
    /// Empty until a query has been answered.
    pub fn last_eval_stats(&self) -> &[EvalStats] {
        &self.last_eval
    }

    /// Plans and answers an ad-hoc query in one call under the default
    /// ([`AnswerPolicy::Hybrid`]) policy.
    pub fn answer_adhoc(&mut self, q: &ConjunctiveQuery) -> Result<Answers, SelectionError> {
        self.answer_adhoc_with(q, AnswerPolicy::default())
    }

    /// Plans and answers an ad-hoc query in one call under `policy`.
    pub fn answer_adhoc_with(
        &mut self,
        q: &ConjunctiveQuery,
        policy: AnswerPolicy,
    ) -> Result<Answers, SelectionError> {
        let plan = self.plan_with(q, policy)?;
        self.answer_query(&plan)
    }

    /// Applies a triple insertion: updates the base store and every view
    /// via its incremental delta. Under saturation reasoning the RDFS
    /// consequences of the new triple are derived and maintained too.
    /// Returns the merged maintenance counters; a duplicate triple is a
    /// no-op.
    pub fn insert(&mut self, t: Triple) -> MaintenanceStats {
        self.insert_batch(std::slice::from_ref(&t))
    }

    /// Applies a triple deletion (delete-and-rederive): candidate rows are
    /// collected while the triple is still present, then re-derived
    /// against the shrunken store. Under saturation reasoning the triple
    /// must be explicit; the entailments that lose their last derivation
    /// are retracted along with it (an implicit or absent triple is a
    /// no-op, as is a missing one in plain deployments).
    pub fn delete(&mut self, t: Triple) -> MaintenanceStats {
        self.delete_batch(std::slice::from_ref(&t))
    }

    /// Applies a batch of deletions, set-at-a-time. Under saturation
    /// reasoning the entailment-loss set is computed **once** for the
    /// whole batch (one re-saturation of the explicit store); either way
    /// every view runs **one** two-phase delta pass — candidates collected
    /// with each atom position bound to the whole doomed set, then one
    /// re-derivation sweep against the shrunken store — so retraction
    /// feeds should prefer this over per-triple [`Deployment::delete`].
    /// `stats.batches` counts 1 per call that reached the delta joins.
    pub fn delete_batch(&mut self, batch: &[Triple]) -> MaintenanceStats {
        let was_fresh = !self.is_stale();
        let mut total = MaintenanceStats::default();
        let doomed: Vec<Triple> = match &mut self.entailment {
            Some(ent) => {
                if ent.explicit.remove_batch(batch).is_empty() {
                    return total;
                }
                // Everything in the saturated base that the remaining
                // explicit triples no longer entail must go.
                let still = saturated_copy(&ent.explicit, &ent.schema, &ent.vocab);
                self.store
                    .triples()
                    .iter()
                    .copied()
                    .filter(|&x| !still.contains(x))
                    .collect()
            }
            None => {
                let mut seen: FxHashSet<Triple> = FxHashSet::default();
                batch
                    .iter()
                    .copied()
                    .filter(|&t| self.store.contains(t) && seen.insert(t))
                    .collect()
            }
        };
        if doomed.is_empty() {
            return total;
        }
        total.batches = 1;
        // Phase 1: one shared delta set, one prepare per view branch,
        // while the doomed triples are still in the store.
        let delta_set = DeltaSet::new(&doomed);
        let deltas: Vec<Vec<DeleteDelta>> = self
            .views
            .iter()
            .map(|dv| {
                dv.branches
                    .iter()
                    .map(|b| b.prepare_delete_delta(&self.store, &delta_set))
                    .collect()
            })
            .collect();
        self.store.remove_batch(&doomed);
        // Phase 2: one re-derivation sweep per branch over the candidates.
        for (dv, branch_deltas) in self.views.iter_mut().zip(deltas) {
            let mut changed = false;
            for (b, delta) in dv.branches.iter_mut().zip(branch_deltas) {
                let s = b.commit_delete_batch(&self.store, &delta);
                changed |= s.removed > 0;
                total.merge(s);
            }
            if changed {
                self.dirty.insert(dv.id);
            }
        }
        self.sync_version(was_fresh);
        total
    }

    /// Applies a batch of insertions, set-at-a-time. Under saturation
    /// reasoning the RDFS fixpoint runs **once** for the whole batch
    /// (semi-naive: the consequences of all new explicit triples are
    /// derived together); then every view runs **one** delta-set join per
    /// atom position — Δv = ⋃ᵢ π_head(a₁ ⋈ … ⋈ Δaᵢ ⋈ … ⋈ aₙ) with Δ the
    /// whole batch, hash-indexed — instead of |Δ| per-triple passes.
    /// `stats.batches` counts 1 per call that reached the delta joins; a
    /// fully-duplicate batch is a no-op.
    pub fn insert_batch(&mut self, batch: &[Triple]) -> MaintenanceStats {
        let was_fresh = !self.is_stale();
        let mut total = MaintenanceStats::default();
        let added: Vec<Triple> = match &mut self.entailment {
            Some(ent) => {
                let newly_explicit = ent.explicit.insert_batch(batch);
                if newly_explicit.is_empty() {
                    return total;
                }
                let mut added = self.store.insert_batch(&newly_explicit);
                // One semi-naive fixpoint for the whole batch: saturation
                // is monotone, so the consequences of the new triples are
                // exactly the triples saturate() appends.
                let before = self.store.len();
                saturate(&mut self.store, &ent.schema, &ent.vocab);
                added.extend_from_slice(&self.store.triples()[before..]);
                added
            }
            None => self.store.insert_batch(batch),
        };
        if added.is_empty() {
            // Newly-explicit triples that were already entailed: the base
            // store (and the views) did not change.
            self.sync_version(was_fresh);
            return total;
        }
        total.batches = 1;
        // One shared delta set, one join pass per view branch against the
        // fully-updated base store.
        let delta_set = DeltaSet::new(&added);
        for dv in &mut self.views {
            let mut changed = false;
            for b in &mut dv.branches {
                let s = b.apply_insert_delta(&self.store, &delta_set);
                changed |= s.added > 0;
                total.merge(s);
            }
            if changed {
                self.dirty.insert(dv.id);
            }
        }
        self.sync_version(was_fresh);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdfviews_core::{select_views, SelectionOptions};

    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..30 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri("p"),
                Term::uri(format!("o{}", i % 3)),
            );
            db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("c"));
        }
        db
    }

    fn recommend(db: &mut Dataset) -> Recommendation {
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        select_views(
            db.store(),
            db.dict(),
            None,
            &[q],
            &SelectionOptions::recommended(),
        )
    }

    #[test]
    fn answers_from_views_match_direct_evaluation() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        assert_eq!(mv.len(), rec.views.len());
        let from_views = try_answer_original_query(&rec, &mv, 0).unwrap();
        let direct = rdf_engine::evaluate(db.store(), &rec.workload[0]);
        assert_eq!(from_views, direct);
        assert_eq!(from_views.len(), 10); // s1, s4, …, s28
    }

    #[test]
    fn materialize_state_covers_all_views() {
        let mut db = db();
        let q = parse_query("q(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let workload = vec![q];
        let state = State::initial(&workload);
        let mv = materialize_state(db.store(), &state);
        assert_eq!(mv.len(), 1);
        assert_eq!(mv.total_rows(), 30);
        assert_eq!(mv.total_cells(), 60);
    }

    #[test]
    fn unknown_query_index_is_an_error() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        let err = try_answer_original_query(&rec, &mv, 7).unwrap_err();
        assert_eq!(err, SelectionError::UnknownQuery { index: 7, len: 1 });
    }

    #[test]
    fn deployment_answers_and_maintains() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let direct = rdf_engine::evaluate(db.store(), &dep.recommendation().workload[0]);
        assert_eq!(dep.answer(0).unwrap(), direct);
        assert_eq!(
            dep.answer(3).unwrap_err(),
            SelectionError::UnknownQuery { index: 3, len: 1 }
        );

        // Insert a fresh qualifying subject: answers must grow.
        let before = dep.answer(0).unwrap().len();
        let s = db.dict_mut().intern_uri("fresh");
        let p = db.dict().lookup_uri("p").unwrap();
        let q = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        dep.insert([s, p, o1]);
        dep.insert([s, q, c]);
        let after = dep.answer(0).unwrap();
        assert_eq!(after.len(), before + 1);
        assert!(after.contains(&[s]));

        // Delete one of its triples: the subject disappears again.
        dep.delete([s, q, c]);
        let reverted = dep.answer(0).unwrap();
        assert_eq!(reverted.len(), before);
        assert!(!reverted.contains(&[s]));

        // The deployment's answers always match evaluation over its own
        // (maintained) base store.
        let fresh = rdf_engine::evaluate(dep.store(), &dep.recommendation().workload[0]);
        assert_eq!(dep.answer(0).unwrap(), fresh);
    }

    #[test]
    fn served_plans_reuse_view_indexes() {
        // A served workload answers the same plan over and over; every
        // probed (table, mask) hash index must be built exactly once and
        // reused, so the build count is flat after the first call.
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let plan = dep.plan_workload(0).unwrap();
        let first = dep.answer_query(&plan).unwrap();
        let builds = dep.view_index_builds();
        for _ in 0..5 {
            assert_eq!(dep.answer_query(&plan).unwrap(), first);
        }
        assert_eq!(
            dep.view_index_builds(),
            builds,
            "repeated answer_query must not rebuild view indexes"
        );
    }

    #[test]
    fn adaptive_engine_decision_surfaces_per_branch() {
        use rdf_engine::Engine;
        let mut db = db();
        // A directed triangle among fresh nodes so a cyclic ad-hoc query
        // has answers to find.
        let (a, b, c) = (
            db.dict_mut().intern_uri("ta"),
            db.dict_mut().intern_uri("tb"),
            db.dict_mut().intern_uri("tc"),
        );
        let p = db.dict().lookup_uri("p").unwrap();
        db.store_mut().insert([a, p, b]);
        db.store_mut().insert([b, p, c]);
        db.store_mut().insert([c, p, a]);
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);

        // Base-fallback keeps the whole query on the store, so the branch
        // shape is the query shape: the triangle routes to leapfrog...
        let tri = parse_query(
            "q(X, Y, Z) :- t(X, <p>, Y), t(Y, <p>, Z), t(Z, <p>, X)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let got = dep
            .answer_adhoc_with(&tri, AnswerPolicy::BaseFallback)
            .unwrap();
        assert_eq!(got, rdf_engine::evaluate(dep.store(), &tri));
        assert!(got.contains(&[a, b, c]));
        let stats = dep.last_eval_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].engine, Engine::Wcoj);
        assert!(stats[0].lf_seeks > 0);
        assert_eq!(stats[0].lf_emitted, got.len() as u64);

        // ...while an acyclic chain stays on the compiled core.
        let chain = parse_query("q(X, Z) :- t(X, <p>, Y), t(Y, <p>, Z)", db.dict_mut())
            .unwrap()
            .query;
        let got = dep
            .answer_adhoc_with(&chain, AnswerPolicy::BaseFallback)
            .unwrap();
        assert_eq!(got, rdf_engine::evaluate(dep.store(), &chain));
        let stats = dep.last_eval_stats();
        assert!(!stats.is_empty());
        assert!(stats.iter().all(|s| s.engine == Engine::Compiled));
    }

    #[test]
    fn deployment_totals_track_updates() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mv = materialize_recommendation(db.store(), &rec);
        let mut dep = Deployment::new(db.store(), rec);
        assert_eq!(dep.view_count(), mv.len());
        assert_eq!(dep.total_rows().unwrap(), mv.total_rows());
        assert_eq!(dep.total_cells().unwrap(), mv.total_cells());
        let s = db.dict_mut().intern_uri("extra");
        let p = db.dict().lookup_uri("p").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let stats = dep.insert([s, p, o1]);
        if stats.added > 0 {
            assert!(dep.total_rows().unwrap() > mv.total_rows());
        }
        // Rematerializing over the maintained store agrees with the
        // incremental tables.
        let remat = materialize_recommendation(dep.store(), dep.recommendation());
        assert_eq!(dep.total_rows().unwrap(), remat.total_rows());
        assert_eq!(dep.total_cells().unwrap(), remat.total_cells());
    }

    /// One batch = one maintenance pass: the `batches` counter makes the
    /// one-fixpoint-per-batch contract observable, and the batched path
    /// never derives more delta tuples than per-triple feeding.
    #[test]
    fn batched_feed_runs_one_pass_and_matches_per_triple() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut batched = Deployment::new(db.store(), rec.clone());
        let mut per_triple = Deployment::new(db.store(), rec);

        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        let mut feed = Vec::new();
        for i in 0..20 {
            let s = db.dict_mut().intern_uri(&format!("fresh{i}"));
            feed.push([s, p, o1]);
            feed.push([s, qq, c]);
        }

        let bstats = batched.insert_batch(&feed);
        assert_eq!(bstats.batches, 1, "one pass for the whole batch");
        let mut pstats = MaintenanceStats::default();
        for &t in &feed {
            pstats.merge(per_triple.insert(t));
        }
        assert_eq!(pstats.batches, feed.len(), "one pass per triple");
        assert_eq!(bstats.added, pstats.added);
        assert!(bstats.delta_tuples <= pstats.delta_tuples);
        assert_eq!(batched.answer(0).unwrap(), per_triple.answer(0).unwrap());
        assert_eq!(
            batched.total_rows().unwrap(),
            per_triple.total_rows().unwrap()
        );

        // Deletion side: one batch pass equals sequential deletes.
        let doomed: Vec<Triple> = feed.iter().copied().step_by(3).collect();
        let bdel = batched.delete_batch(&doomed);
        assert_eq!(bdel.batches, 1);
        let mut pdel = MaintenanceStats::default();
        for &t in &doomed {
            pdel.merge(per_triple.delete(t));
        }
        assert_eq!(bdel.removed, pdel.removed);
        assert!(bdel.delta_tuples <= pdel.delta_tuples);
        assert_eq!(batched.answer(0).unwrap(), per_triple.answer(0).unwrap());
        // A fully-duplicate batch is a no-op with no pass (feed[0] was
        // retracted above; feed[1..3] are still present).
        assert_eq!(batched.insert_batch(&feed[1..3]).batches, 0);
    }

    /// The versioned writable store under the opt-in strict policy:
    /// direct writes stale the deployment's reads until it
    /// rematerializes (the pre-snapshot contract).
    #[test]
    fn direct_writes_stale_reads_until_rematerialize() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        dep.set_strict(true);
        assert!(dep.strict());
        let baseline = dep.answer(0).unwrap();
        assert!(!dep.is_stale());

        let s = db.dict_mut().intern_uri("sideloaded");
        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        let store = dep.store_mut().expect("plain deployments are writable");
        store.insert_batch(&[[s, p, o1], [s, qq, c]]);

        assert!(dep.is_stale());
        let prepared = dep.maintained_version();
        let current = dep.store().version();
        for err in [
            dep.answer(0).unwrap_err(),
            dep.tables().map(|_| ()).unwrap_err(),
            dep.total_rows().map(|_| ()).unwrap_err(),
            dep.total_cells().map(|_| ()).unwrap_err(),
        ] {
            assert_eq!(err, SelectionError::StaleSession { prepared, current });
        }

        dep.rematerialize();
        assert!(!dep.is_stale());
        let refreshed = dep.answer(0).unwrap();
        assert_eq!(refreshed.len(), baseline.len() + 1);
        let direct = rdf_engine::evaluate(dep.store(), &dep.recommendation().workload[0]);
        assert_eq!(refreshed, direct);
    }

    /// A maintenance batch applied on top of unabsorbed direct writes must
    /// NOT clear the stale flag: its delta joins covered only the batch,
    /// not the direct writes.
    #[test]
    fn maintenance_batches_do_not_mask_direct_write_staleness() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        dep.set_strict(true);

        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        let direct = db.dict_mut().intern_uri("direct");
        let fed = db.dict_mut().intern_uri("fed");

        // Direct write that the views never absorb …
        let store = dep.store_mut().unwrap();
        store.insert_batch(&[[direct, p, o1], [direct, qq, c]]);
        assert!(dep.is_stale());
        // … then a regular maintenance batch on top.
        dep.insert_batch(&[[fed, p, o1], [fed, qq, c]]);
        assert!(
            dep.is_stale(),
            "batch must not mask the unabsorbed direct writes"
        );
        assert!(dep.answer(0).is_err());
        dep.delete_batch(&[[fed, p, o1]]);
        assert!(dep.is_stale(), "delete batch must not mask them either");

        // Rematerializing picks up direct writes and batches alike.
        dep.rematerialize();
        let answers = dep.answer(0).unwrap();
        assert!(answers.contains(&[direct]));
        let truth = rdf_engine::evaluate(dep.store(), &dep.recommendation().workload[0]);
        assert_eq!(answers, truth);
    }

    /// Default policy: direct writes never make reads refuse — they keep
    /// serving the last published consistent generation until
    /// rematerialize absorbs the writes.
    #[test]
    fn default_reads_serve_published_generation_after_direct_writes() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let baseline = dep.answer(0).unwrap();

        let s = db.dict_mut().intern_uri("sideloaded");
        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        let store = dep.store_mut().expect("plain deployments are writable");
        store.insert_batch(&[[s, p, o1], [s, qq, c]]);

        // Stale relative to the live store, but reads stay available and
        // consistent: the published generation predates the direct write.
        assert!(dep.is_stale());
        let served = dep.answer(0).unwrap();
        assert_eq!(served, baseline);
        assert!(!served.contains(&[s]));
        assert_eq!(
            dep.total_rows().unwrap(),
            dep.snapshot().tables().total_rows()
        );

        // Rematerialize publishes a generation that includes the write.
        dep.rematerialize();
        let refreshed = dep.answer(0).unwrap();
        assert_eq!(refreshed.len(), baseline.len() + 1);
        assert!(refreshed.contains(&[s]));
    }

    /// Snapshots pin a generation: maintenance batches applied afterwards
    /// are invisible to the pin, while new pins see them.
    #[test]
    fn snapshots_pin_generations_across_batches() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let baseline = dep.answer(0).unwrap();
        let pinned = dep.snapshot();
        assert_eq!(pinned.version(), dep.maintained_version());
        assert_eq!(pinned.lineage(), dep.lineage());

        let s = db.dict_mut().intern_uri("batched");
        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        dep.insert_batch(&[[s, p, o1], [s, qq, c]]);

        // The pin answers as-of its generation — repeatedly.
        for _ in 0..2 {
            let as_of = pinned.answer(0).unwrap();
            assert_eq!(as_of, baseline);
            assert!(!as_of.contains(&[s]));
        }
        // The live deployment (and a fresh pin) see the batch.
        let now = dep.answer(0).unwrap();
        assert_eq!(now.len(), baseline.len() + 1);
        let repinned = dep.snapshot();
        assert!(repinned.version() > pinned.version());
        assert_eq!(repinned.answer(0).unwrap(), now);
        // Ad-hoc planning works against the pin too.
        let adhoc = pinned
            .answer_adhoc(&dep.recommendation().workload[0])
            .unwrap();
        assert_eq!(adhoc, baseline);
    }

    /// Plan structure is generation-independent: a plan made before a
    /// maintenance batch executes against the new generation by default,
    /// and is refused only under the strict policy.
    #[test]
    fn old_plans_execute_on_new_generations_unless_strict() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let plan = dep.plan_workload(0).unwrap();
        let before = dep.answer_query(&plan).unwrap();

        let s = db.dict_mut().intern_uri("later");
        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        dep.insert_batch(&[[s, p, o1], [s, qq, c]]);

        let after = dep.answer_query(&plan).unwrap();
        assert_eq!(after.len(), before.len() + 1);
        assert!(after.contains(&[s]));

        dep.set_strict(true);
        let err = dep.answer_query(&plan).unwrap_err();
        assert_eq!(
            err,
            SelectionError::StaleSession {
                prepared: plan.store_version(),
                current: dep.store().version(),
            }
        );
    }

    /// Reader handles follow the writer's publishes: each pin observes
    /// the most recent complete generation.
    #[test]
    fn reader_handles_track_published_generations() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        let reader = dep.reader();
        let first = reader.snapshot();
        assert_eq!(reader.lineage(), dep.lineage());
        let baseline = first.answer(0).unwrap();

        let s = db.dict_mut().intern_uri("published");
        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        dep.insert_batch(&[[s, p, o1], [s, qq, c]]);

        let second = reader.snapshot();
        assert!(second.version() > first.version());
        assert_eq!(second.answer(0).unwrap().len(), baseline.len() + 1);
        // The older pin still answers as-of its own generation.
        assert_eq!(first.answer(0).unwrap(), baseline);
    }

    /// Snapshots enforce lineage like the deployment does.
    #[test]
    fn snapshots_refuse_foreign_plans() {
        let mut db = db();
        let rec = recommend(&mut db);
        let dep = Deployment::new(db.store(), rec.clone());
        let other = Deployment::new(db.store(), rec);
        let foreign = other.plan_workload(0).unwrap();
        assert_eq!(
            dep.snapshot().answer_query(&foreign).unwrap_err(),
            SelectionError::ForeignPlan
        );
    }

    /// The workload-plan cache is keyed by snapshot identity: generation
    /// swaps re-stamp the cached plan instead of thrashing the cache or
    /// serving a stale version stamp.
    #[test]
    fn workload_plan_cache_survives_generation_swaps() {
        let mut db = db();
        let rec = recommend(&mut db);
        let mut dep = Deployment::new(db.store(), rec);
        dep.answer(0).unwrap();
        assert_eq!(dep.workload_plans.len(), 1);
        let p = db.dict().lookup_uri("p").unwrap();
        let qq = db.dict().lookup_uri("q").unwrap();
        let o1 = db.dict().lookup_uri("o1").unwrap();
        let c = db.dict().lookup_uri("c").unwrap();
        for i in 0..3 {
            let s = db.dict_mut().intern_uri(&format!("swap{i}"));
            dep.insert_batch(&[[s, p, o1], [s, qq, c]]);
            let answers = dep.answer(0).unwrap();
            assert!(answers.contains(&[s]));
            // One cached entry, re-stamped to the current snapshot
            // identity — never duplicated, never left on an old stamp.
            assert_eq!(dep.workload_plans.len(), 1);
            assert_eq!(
                dep.workload_plans[&0].store_version(),
                dep.maintained_version()
            );
        }
    }

    /// The reader handle is shareable across threads by construction.
    #[test]
    fn reader_and_snapshot_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SnapshotReader>();
        assert_send_sync::<DeploymentSnapshot>();
    }
}
