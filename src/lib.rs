//! # rdfviews
//!
//! **View selection for Semantic Web databases** — a from-scratch Rust
//! reproduction of Goasdoué, Karanasos, Leblay & Manolescu, *View Selection
//! in Semantic Web Databases*, PVLDB 5(2) / VLDB 2012 (arXiv:1110.6648).
//!
//! Given an RDF database (triples + optional RDF Schema) and a workload of
//! conjunctive queries, the library recommends a set of materialized views
//! and one equivalent rewriting per query, such that **every workload query
//! can be answered from the views alone** — enabling three-tier or offline
//! deployments where clients never touch the database — while minimizing a
//! weighted combination of rewriting evaluation cost, view storage space
//! and view maintenance cost.
//!
//! The workspace crates map to the paper's components:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`model`] (`rdf-model`) | dictionary-encoded triple store, six permutation indexes |
//! | [`schema`] (`rdf-schema`) | RDFS statements, closure, database saturation |
//! | [`query`] (`rdf-query`) | conjunctive queries, containment, minimization, canonical forms |
//! | [`reform`] (`rdf-reform`) | query reformulation — Algorithm 1 / Theorems 4.1–4.2 |
//! | [`stats`] (`rdf-stats`) | workload statistics, cardinality estimation, post-reformulation statistics |
//! | [`engine`] (`rdf-engine`) | SPJ evaluation, view materialization, rewriting execution |
//! | [`core`] (`rdfviews-core`) | states, transitions SC/JC/VB/VF, cost model, search strategies |
//! | [`workload`] (`rdfviews-workload`) | Barton-like dataset, star/chain/cycle/random/mixed workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use rdfviews::prelude::*;
//!
//! // 1. Load data.
//! let mut db = Dataset::new();
//! # use rdfviews::model::Term;
//! # for i in 0..20 {
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 4)));
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//!
//! // 2. Declare a workload.
//! let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut()).unwrap();
//! let workload = vec![q.query];
//!
//! // 3. Select views.
//! let rec = select_views(db.store(), db.dict(), None, &workload, &SelectionOptions::recommended());
//!
//! // 4. Materialize them and answer the workload from the views alone.
//! let mv = rdfviews::exec::materialize_recommendation(db.store(), &rec);
//! let from_views = rdfviews::exec::answer_original_query(&rec, &mv, 0);
//! let direct = rdfviews::engine::evaluate(db.store(), &rec.workload[0]);
//! assert_eq!(from_views, direct);
//! ```

pub use rdf_engine as engine;
pub use rdf_model as model;
pub use rdf_query as query;
pub use rdf_reform as reform;
pub use rdf_schema as schema;
pub use rdf_stats as stats;
pub use rdfviews_core as core;
pub use rdfviews_workload as workload;

pub mod exec;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::core::{
        select_views, select_views_partitioned, CostModel, CostWeights, ReasoningMode,
        Recommendation, SearchConfig, SearchOutcome, SelectionOptions, State, StrategyKind,
    };
    pub use crate::engine::{
        evaluate, evaluate_union, materialize, Answers, MaintainedView, ViewTable,
    };
    pub use crate::exec::{answer_original_query, answer_query, materialize_recommendation};
    pub use crate::model::{Dataset, Dictionary, Term, TripleStore};
    pub use crate::query::parser::parse_query;
    pub use crate::query::{ConjunctiveQuery, UnionQuery};
    pub use crate::reform::reformulate;
    pub use crate::schema::{saturate, Schema, SchemaStatement, VocabIds};
    pub use crate::stats::collect_stats;
    pub use crate::workload::{
        generate_barton, generate_satisfiable, generate_workload, BartonSpec, Commonality,
        SatisfiableSpec, Shape, WorkloadSpec,
    };
}
