//! # rdfviews
//!
//! **View selection for Semantic Web databases** — a from-scratch Rust
//! reproduction of Goasdoué, Karanasos, Leblay & Manolescu, *View Selection
//! in Semantic Web Databases*, PVLDB 5(2) / VLDB 2012 (arXiv:1110.6648).
//!
//! Given an RDF database (triples + optional RDF Schema) and a workload of
//! conjunctive queries, the library recommends a set of materialized views
//! and one equivalent rewriting per query, such that **every workload query
//! can be answered from the views alone** — enabling three-tier or offline
//! deployments where clients never touch the database — while minimizing a
//! weighted combination of rewriting evaluation cost, view storage space
//! and view maintenance cost.
//!
//! ## Quickstart: the advisor session lifecycle
//!
//! The public API is organized around two long-lived objects:
//!
//! * [`Advisor`](advisor::Advisor) — a view-selection **session** over one
//!   database. Building it prepares the expensive per-database artifacts
//!   (saturated store copy, statistics catalog) **once**; every
//!   `recommend` call after that reuses them and only collects statistics
//!   for atom shapes it has never seen. All fallible paths return
//!   [`SelectionError`](core::SelectionError) instead of panicking.
//! * [`Deployment`](exec::Deployment) — a deployed recommendation: the
//!   views materialized, bundled with a maintenance base copy of the
//!   store. It answers workload queries from the views alone and absorbs
//!   triple insertions/deletions through incremental view maintenance.
//!
//! ```
//! use rdfviews::prelude::*;
//!
//! // 1. Load data.
//! let mut db = Dataset::new();
//! # use rdfviews::model::Term;
//! # for i in 0..20 {
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 4)));
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//!
//! // 2. Declare a workload.
//! let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut()).unwrap();
//! let workload = vec![q.query];
//!
//! // 3. Open an advisor session and recommend views. The session caches
//! //    the statistics catalog: a second `recommend` over the same
//! //    workload does zero store work.
//! let mut advisor = Advisor::builder(&db).build()?;
//! let rec = advisor.recommend(&workload)?;
//!
//! // 4. Deploy: materialize the views and answer the workload from them
//! //    alone — no connection to the database needed.
//! let mut deployment = advisor.deploy(rec)?;
//! let from_views = deployment.answer(0)?;
//! let direct = rdfviews::engine::evaluate(db.store(), &deployment.recommendation().workload[0]);
//! assert_eq!(from_views, direct);
//! # Ok::<(), rdfviews::core::SelectionError>(())
//! ```
//!
//! ## Ad-hoc querying: rewrite arbitrary queries over the deployed views
//!
//! `answer(query_idx)` serves the tuned workload by index — but a real
//! front end must answer queries that arrive **after** tuning. Any
//! conjunctive query goes through the deployment's planner:
//! [`Deployment::plan`](exec::Deployment::plan) computes a
//! bucket/MiniCon-style rewriting over the deployed views (verified
//! equivalent through its unfolding, the same Definition-2.2 yardstick the
//! selection search uses) and returns an inspectable
//! [`QueryPlan`](exec::QueryPlan) — which views cover which atoms, the
//! residual base-store atoms, the estimated cost — executed by
//! [`Deployment::answer_query`](exec::Deployment::answer_query). The
//! [`AnswerPolicy`](exec::AnswerPolicy) decides what happens when the
//! views cannot cover the whole query: `ViewsOnly` fails with the typed
//! [`SelectionError::NoViewsOnlyPlan`](core::SelectionError::NoViewsOnlyPlan)
//! (never wrong or silently empty answers), `Hybrid` — the default —
//! mixes view scans with base-store scans, and `BaseFallback` evaluates
//! the whole query on the base store. Index-based `answer(idx)` is now a
//! thin delegate that plans the stored workload rewriting through the same
//! path.
//!
//! ```
//! use rdfviews::prelude::*;
//! # use rdfviews::model::Term;
//! let mut db = Dataset::new();
//! # for i in 0..20 {
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 4)));
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//! let q = parse_query("q(X, Y) :- t(X, <p>, Y)", db.dict_mut()).unwrap();
//! let mut advisor = Advisor::builder(&db).build()?;
//! let rec = advisor.recommend(&[q.query])?;
//! let mut deployment = advisor.deploy(rec)?;
//!
//! // An ad-hoc query the workload never mentioned: a selection over the
//! // tuned predicate. The planner covers it from the views alone.
//! let adhoc = parse_query("a(X) :- t(X, <p>, <o1>)", db.dict_mut()).unwrap().query;
//! let plan = deployment.plan(&adhoc)?;
//! assert!(plan.is_views_only());
//! let answers = deployment.answer_query(&plan)?;
//! assert_eq!(answers, rdfviews::engine::evaluate(db.store(), &adhoc));
//!
//! // Maintenance between planning and execution? Under the default
//! // snapshot policy the plan still runs: plan *structure* (which views
//! // cover which atoms) is generation-independent, so it executes
//! // against the newly published generation and sees the insert.
//! # let s2 = db.dict().lookup_uri("s2").unwrap();
//! # let p = db.dict().lookup_uri("p").unwrap();
//! # let o1 = db.dict().lookup_uri("o1").unwrap();
//! let before = deployment.answer_query(&plan)?.len();
//! deployment.insert([s2, p, o1]);
//! assert_eq!(deployment.answer_query(&plan)?.len(), before + 1);
//!
//! // Strict mode restores the old refuse-on-mismatch contract: a plan
//! // stamped with an older generation is refused, never silently served.
//! deployment.set_strict(true);
//! assert!(matches!(deployment.answer_query(&plan), Err(SelectionError::StaleSession { .. })));
//! assert!(deployment.answer_adhoc(&adhoc).is_ok()); // re-plans at the current generation
//! # Ok::<(), rdfviews::core::SelectionError>(())
//! ```
//!
//! Under RDFS reasoning the planner stays entailment-complete: views-only
//! plans need no reformulation (the view tables hold the saturated
//! extensions, Theorem 4.2), saturation-mode deployments scan a saturated
//! base store, and pre/post-reformulation deployments reformulate a
//! hybrid plan's query per Theorem 4.1 — one plan branch per
//! reformulation branch — before letting it touch their original
//! (unsaturated) base store.
//!
//! ## Snapshot-isolated reads: pinned copy-on-write generations
//!
//! Every maintenance batch **publishes a generation**: an immutable
//! `Arc`'d pair of (base-store snapshot, view tables) swapped into place
//! in one atomic assignment. Readers pin a generation with
//! [`Deployment::snapshot`](exec::Deployment::snapshot) and keep
//! answering from it — wait-free, no locks held — while writers apply
//! batches and publish newer generations around them:
//!
//! ```
//! use rdfviews::prelude::*;
//! # use rdfviews::model::Term;
//! let mut db = Dataset::new();
//! # for i in 0..20 {
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 4)));
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//! let q = parse_query("q(X, Y) :- t(X, <p>, Y)", db.dict_mut()).unwrap();
//! let mut advisor = Advisor::builder(&db).build()?;
//! let rec = advisor.recommend(&[q.query])?;
//! let mut deployment = advisor.deploy(rec)?;
//! # let s2 = db.dict().lookup_uri("s2").unwrap();
//! # let p = db.dict().lookup_uri("p").unwrap();
//! # let o1 = db.dict().lookup_uri("o1").unwrap();
//! let adhoc = parse_query("a(X) :- t(X, <p>, <o1>)", db.dict_mut()).unwrap().query;
//!
//! // Pin the current generation: O(1) — one read-lock acquisition,
//! // `Arc` bumps only.
//! let pinned = deployment.snapshot();
//! let before = pinned.answer_adhoc(&adhoc)?;
//!
//! // A maintenance batch publishes a NEW generation; the pin is untouched.
//! deployment.insert_batch(&[[s2, p, o1]]);
//! assert_eq!(pinned.answer_adhoc(&adhoc)?, before); // pinned: as-of answers
//! assert_eq!(deployment.answer_adhoc(&adhoc)?.len(), before.len() + 1); // live
//! assert!(pinned.version() < deployment.snapshot().version());
//!
//! // `SnapshotReader` is the `Send + Sync` handle to hand worker
//! // threads: each `snapshot()` call re-pins whatever generation the
//! // writer published most recently, without blocking it.
//! let reader = deployment.reader();
//! assert_eq!(reader.snapshot().version(), deployment.snapshot().version());
//! # Ok::<(), rdfviews::core::SelectionError>(())
//! ```
//!
//! The mechanics worth knowing:
//!
//! * **Copy-on-write, not copy.** A generation shares everything the
//!   batch did not touch with its predecessor: sorted index runs are
//!   advanced by merging the delta into `Arc`-shared runs, and unchanged
//!   view tables are the *same* `Arc<ViewTable>` objects — so their warm
//!   hash/sorted index caches keep accruing across generations. Memory
//!   per retained generation is proportional to the batch delta, not the
//!   database.
//! * **Pin release.** A generation stays alive exactly as long as some
//!   [`DeploymentSnapshot`](exec::DeploymentSnapshot) (or clone of one)
//!   holds it; dropping the last pin frees whatever that generation did
//!   not share with its neighbors. Long-lived pins are the one way to
//!   accumulate memory — re-pin via [`SnapshotReader`](exec::SnapshotReader)
//!   when you want the latest data.
//! * **Strict mode.** [`Deployment::set_strict`](exec::Deployment::set_strict)`(true)`
//!   opts back into the historical refuse-on-mismatch behavior: plans
//!   stamped with an older store version fail with
//!   [`SelectionError::StaleSession`](core::SelectionError::StaleSession)
//!   instead of executing against the published generation. Use it where
//!   an as-of answer is worse than no answer.
//! * **Direct writes.** Writing through `store_mut()` without running
//!   maintenance does *not* publish; default-mode reads keep serving the
//!   last published consistent generation (and strict mode refuses).
//!   [`Deployment::rematerialize`](exec::Deployment::rematerialize)
//!   re-syncs and publishes.
//!
//! ## Maintenance quickstart: batched updates and writable stores
//!
//! Update feeds go through [`Deployment::insert_batch`] /
//! [`Deployment::delete_batch`] (exec::Deployment): the whole batch runs
//! **one** RDFS saturation fixpoint and **one** set-at-a-time delta join
//! per view — Δv = ⋃ᵢ π_head(a₁ ⋈ … ⋈ Δaᵢ ⋈ … ⋈ aₙ), the Δ set
//! hash-indexed — instead of one pass per triple. The returned
//! [`MaintenanceStats`](engine::MaintenanceStats) stamps `batches` so the
//! one-pass contract is observable; per-triple `insert`/`delete` are thin
//! delegates over singleton batches.
//!
//! When the data must change while a session lives, build the advisor in
//! **writable-store mode** ([`Advisor::builder_owned`](advisor::Advisor::builder_owned)):
//! the session owns its [`Dataset`](model::Dataset) and hands out mutable
//! access. The store is version-stamped; once it moves past the prepared
//! version, every `recommend*` / `deploy` call fails with
//! [`SelectionError::StaleSession`](core::SelectionError::StaleSession) —
//! never a silently stale answer — until
//! [`Advisor::refresh`](advisor::Advisor::refresh) re-prepares:
//!
//! ```
//! use rdfviews::prelude::*;
//! # use rdfviews::model::Term;
//! let mut db = Dataset::new();
//! # for i in 0..20 {
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 4)));
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//! let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut()).unwrap();
//! let p = db.dict().lookup_uri("p").unwrap();
//! let qq = db.dict().lookup_uri("q").unwrap();
//! let o1 = db.dict().lookup_uri("o1").unwrap();
//! let c = db.dict().lookup_uri("c").unwrap();
//! let workload = vec![q.query];
//!
//! let mut advisor = Advisor::builder_owned(db).build()?;
//! let rec = advisor.recommend(&workload)?;
//! let mut deployment = advisor.deploy(rec)?;
//!
//! // A 2-triple feed: one maintenance pass, not two.
//! let s = advisor.dataset_mut().unwrap().dict_mut().intern_uri("fresh");
//! let stats = deployment.insert_batch(&[[s, p, o1], [s, qq, c]]);
//! assert_eq!(stats.batches, 1);
//!
//! // Writable-store mode: mutating the advisor's dataset stales the
//! // session until refresh() re-prepares.
//! advisor.dataset_mut().unwrap().store_mut().insert([s, p, o1]);
//! assert!(advisor.is_stale());
//! advisor.refresh()?;
//! let _rec = advisor.recommend(&workload)?; // fresh again
//! # Ok::<(), rdfviews::core::SelectionError>(())
//! ```
//!
//! With reasoning, the builder carries the schema and mode; `build`
//! saturates (or derives saturated statistics) once for the whole session.
//! `.parallelism(n)` runs each search with `n` explorer threads (work
//! stealing over a shared frontier; `0` = one per core) — parallel runs
//! visit states in a different order but report the same best cost:
//!
//! ```no_run
//! # use rdfviews::prelude::*;
//! # let mut db = Dataset::new();
//! # let schema = Schema::new();
//! # let vocab = VocabIds::intern(db.dict_mut());
//! # let workload: Vec<ConjunctiveQuery> = vec![];
//! let mut advisor = Advisor::builder(&db)
//!     .schema(&schema, &vocab)
//!     .reasoning(ReasoningMode::PostReformulation)
//!     .strategy(StrategyKind::Dfs)
//!     .parallelism(4)
//!     .budget(std::time::Duration::from_secs(10))
//!     .build()?;
//! let rec = advisor.recommend(&workload)?;
//! # Ok::<(), rdfviews::core::SelectionError>(())
//! ```
//!
//! Evolving workloads should go through
//! [`Advisor::recommend_incremental`](advisor::Advisor::recommend_incremental):
//! a ±1-query delta **warm-starts** the search from the previous best
//! state's surviving views, exploring a small neighborhood of the
//! previous optimum instead of the whole space (observable as far fewer
//! `created` states in the returned `SearchStats`).
//!
//! ## Durability quickstart: persist, open, recover
//!
//! A deployment can outlive its process.
//! [`Advisor::deploy_durable`](advisor::Advisor::deploy_durable) (or
//! [`Deployment::persist`](exec::Deployment::persist) on an existing
//! deployment) writes a **snapshot bundle** — a versioned, per-section
//! checksummed, content-hashed byte format holding the dictionary, base
//! store, recommendation, and materialized view tables — into a
//! directory, alongside a **write-ahead log**: every
//! [`DurableDeployment::insert_batch`](exec::DurableDeployment::insert_batch)
//! / `delete_batch` is CRC-framed and fsync'd *before* it is applied in
//! memory. After a crash,
//! [`DurableDeployment::recover`](exec::DurableDeployment::recover)
//! reloads the snapshot and replays the log suffix through the ordinary
//! maintenance path, reproducing the pre-crash state exactly — provable
//! via [`Deployment::content_hash`](exec::Deployment::content_hash). Torn
//! tail records (a crash mid-append) are dropped gracefully, and the log
//! is compacted into a fresh snapshot once it grows past a threshold.
//!
//! ```
//! use rdfviews::prelude::*;
//! # use rdfviews::model::Term;
//! # let dir = std::env::temp_dir().join(format!("rdfviews-doc-{}", std::process::id()));
//! let mut db = Dataset::new();
//! # for i in 0..20 {
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 4)));
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//! let q = parse_query("q(X) :- t(X, <p>, <o1>)", db.dict_mut()).unwrap();
//! let mut advisor = Advisor::builder(&db).build()?;
//! let rec = advisor.recommend(&[q.query])?;
//!
//! // Deploy durably: snapshot + write-ahead log in `dir`.
//! let mut durable = advisor.deploy_durable(rec, &dir)?;
//! let s = durable.dict_mut().intern(Term::uri("fresh"));
//! let p = durable.dict().lookup_uri("p").unwrap();
//! let o1 = durable.dict().lookup_uri("o1").unwrap();
//! durable.insert_batch(&[[s, p, o1]])?; // logged, fsync'd, then applied
//! let live_hash = durable.deployment().content_hash(durable.dict())?;
//! drop(durable); // simulate the process dying
//!
//! // Recover: snapshot + WAL replay ≡ the pre-crash deployment.
//! let (recovered, report) = DurableDeployment::recover(&dir)?;
//! assert_eq!(report.records_replayed, 1);
//! assert_eq!(report.state_hash, live_hash);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), rdfviews::core::SelectionError>(())
//! ```
//!
//! Bundles carry a format version (currently 1): a bundle written by a
//! different, incompatible format version — or any flipped bit, anywhere
//! in the file — is refused at load time with the typed
//! [`SelectionError::CorruptBundle`](core::SelectionError::CorruptBundle),
//! never a wrong answer at query time. All filesystem failures surface as
//! [`SelectionError::Io`](core::SelectionError::Io); a strict WAL check
//! ([`Deployment::verify_wal`](exec::Deployment::verify_wal)) reports a
//! torn tail as
//! [`SelectionError::WalTornTail`](core::SelectionError::WalTornTail).
//!
//! ## Migrating from the free functions
//!
//! The pre-session entry points still exist (and now share the prepared
//! pipeline underneath), but new code should use the session API:
//!
//! | old free function | session replacement |
//! |-------------------|---------------------|
//! | `select_views(store, dict, schema, w, opts)` | `Advisor::builder(&db).schema(..).options(opts).build()?` then `advisor.recommend(&w)?` |
//! | `select_views_partitioned(store, dict, schema, w, opts, par)` | `advisor.recommend_partitioned(&w, par)?` |
//! | `exec::materialize_recommendation(store, &rec)` | `advisor.deploy(rec)?` (a [`Deployment`](exec::Deployment)) |
//! | `exec::answer_original_query(&rec, &mv, i)` (deprecated) | `deployment.answer(i)?` |
//! | `exec::answer_query(&state, &mv, i)` | `deployment.answer(i)?` (per-branch access stays available) |
//! | `answer(query_idx)` for an unregistered query | `deployment.plan(&q)?` + `deployment.answer_query(&plan)?` (or `deployment.answer_adhoc(&q)?`) |
//! | *(not possible: index-only API)* | `deployment.plan_with(&q, AnswerPolicy::ViewsOnly \| Hybrid \| BaseFallback)?` |
//! | `mv.total_rows()` / `mv.total_cells()` | `deployment.total_rows()?` / `deployment.total_cells()?` |
//! | manual `MaintainedView` feeding | `deployment.insert_batch(&triples)` / `deployment.delete_batch(&triples)` |
//! | panic on missing schema | `Err(SelectionError::SchemaRequired(mode))` |
//! | *(not possible: in-memory only)* | `advisor.deploy_durable(rec, dir)?` (a [`DurableDeployment`](exec::DurableDeployment)) |
//! | *(not possible)* | `deployment.persist(dir, dict)?` / `Deployment::open(dir)?` / `Deployment::recover(dir)?` |
//! | ad-hoc file formats, panics on bad bytes | `Err(SelectionError::Io \| CorruptBundle \| WalTornTail)` |
//! | `answer_query(&plan)` refused after any maintenance | executes against the current published generation by default; `deployment.set_strict(true)` restores the `StaleSession` refusal |
//! | *(not possible: reads block on writes)* | `deployment.snapshot()` / `deployment.reader()` — wait-free pinned reads on COW generations ([`DeploymentSnapshot`](exec::DeploymentSnapshot), [`SnapshotReader`](exec::SnapshotReader)) |
//!
//! The workspace crates map to the paper's components:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`model`] (`rdf-model`) | dictionary-encoded triple store, six permutation indexes |
//! | [`schema`] (`rdf-schema`) | RDFS statements, closure, database saturation |
//! | [`query`] (`rdf-query`) | conjunctive queries, containment, minimization, canonical forms |
//! | [`reform`] (`rdf-reform`) | query reformulation — Algorithm 1 / Theorems 4.1–4.2 |
//! | [`stats`] (`rdf-stats`) | workload statistics, cardinality estimation, post-reformulation statistics |
//! | [`engine`] (`rdf-engine`) | SPJ evaluation, view materialization, incremental maintenance |
//! | [`core`] (`rdfviews-core`) | states, transitions SC/JC/VB/VF, cost model, search strategies, prepared pipeline |
//! | [`workload`] (`rdfviews-workload`) | Barton-like dataset, star/chain/cycle/random/mixed workload generators |
//! | [`durability`] (`rdfviews-durability`) | snapshot bundle format, CRC-framed write-ahead log, content hashing |
//!
//! ## Code discipline: the `xlint` gate
//!
//! The workspace carries its own static analysis pass (`crates/xlint`, no
//! external dependencies) that machine-checks the invariants this tree
//! depends on. CI runs it as a required gate; run it locally with:
//!
//! ```text
//! cargo run -p xlint -- --deny-all
//! ```
//!
//! The rules, briefly (see `crates/xlint/src/rules.rs` for the catalog):
//!
//! | rule | checks |
//! |------|--------|
//! | X001 | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` on non-test library paths — return [`SelectionError`](core::SelectionError) |
//! | X002 | every atomic op names an explicit `Ordering`; `SeqCst` needs a justification |
//! | X003 | `.lock()` / RwLock `.read()`/`.write()` results handle poisoning (no bare `.unwrap()`); one stripe lock per expression |
//! | X004 | no `HashMap`/`HashSet`/`SystemTime`/`Instant` in the byte-deterministic persistence codec |
//! | X005 | wire/section tag constants stay unique per namespace |
//! | X006 | every `unsafe` block carries a `// SAFETY:` comment |
//! | X007 | bench JSON fields validated by CI appear as literals in the bench source |
//!
//! Genuine exceptions are suppressed inline — the reason is mandatory and
//! the pragma covers its own line plus the next one:
//!
//! ```text
//! // xlint: allow(X001, reason = "slot index handed to exactly one worker")
//! ```

pub use rdf_engine as engine;
pub use rdf_model as model;
pub use rdf_query as query;
pub use rdf_reform as reform;
pub use rdf_schema as schema;
pub use rdf_stats as stats;
pub use rdfviews_core as core;
pub use rdfviews_durability as durability;
pub use rdfviews_workload as workload;

pub mod advisor;
pub mod exec;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::advisor::{parse_workload_queries, Advisor, AdvisorBuilder, WorkloadChange};
    pub use crate::core::{
        select_views, select_views_partitioned, try_select_views, CostModel, CostWeights,
        Preparation, ReasoningMode, Recommendation, SearchConfig, SearchOutcome, SelectionError,
        SelectionOptions, State, StrategyKind,
    };
    pub use crate::engine::{
        evaluate, evaluate_union, materialize, Answers, MaintainedView, MaintenanceStats, ViewTable,
    };
    #[allow(deprecated)]
    pub use crate::exec::answer_original_query;
    pub use crate::exec::{
        answer_query, materialize_recommendation, try_answer_original_query, AnswerPolicy,
        Deployment, DeploymentSnapshot, DurableDeployment, MaterializedViews, PlannedBranch,
        QueryPlan, RecoveryReport, SnapshotReader,
    };
    pub use crate::model::{Dataset, Dictionary, Term, Triple, TripleStore};
    pub use crate::query::parser::parse_query;
    pub use crate::query::{ConjunctiveQuery, UnionQuery};
    pub use crate::reform::reformulate;
    pub use crate::schema::{saturate, Schema, SchemaStatement, VocabIds};
    pub use crate::stats::collect_stats;
    pub use crate::workload::{
        generate_barton, generate_satisfiable, generate_workload, BartonSpec, Commonality,
        SatisfiableSpec, Shape, WorkloadSpec,
    };
}
