//! Durable deployments: snapshot bundles, the write-ahead log, and
//! deterministic replay recovery.
//!
//! A deployment directory holds two artifacts:
//!
//! * **`snapshot.rdfb`** — a [`rdfviews_durability::bundle`] serializing
//!   the complete deployment: dictionary, base store at its version, the
//!   recommendation (workload, search outcome, views, materialization
//!   definitions, statistics catalog), the maintained view rows per
//!   branch, the entailment/reformulation context, and the lineage id.
//!   Written atomically (temp file + fsync + rename).
//! * **`wal.rdfl`** — a [`rdfviews_durability::wal`] of every
//!   `insert_batch`/`delete_batch` applied since the snapshot. Records are
//!   CRC-framed, stamped with the pre-apply store version, and fsync'd
//!   **before** the in-memory apply, so a crash at any instant loses at
//!   most an un-applied (and un-acknowledged) batch.
//!
//! Recovery ([`Deployment::recover`]) loads the snapshot and replays the
//! WAL suffix through the ordinary set-at-a-time maintenance path — the
//! same joins, the same saturation fixpoint — which makes it
//! *deterministic*: the recovered state reproduces the pre-crash state
//! bit-for-bit, proven by the 128-bit **state hash** (domain
//! `rdfviews.state.v1`, over the canonical semantic sections). Torn tail
//! records are dropped gracefully; records already absorbed by a newer
//! snapshot (a crash between checkpoint and WAL reset) are skipped by
//! their version stamps.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rdf_model::{Term, TermKind};
use rdf_query::{Atom, QTerm, UnionQuery, Var};
use rdf_schema::SchemaStatement;
use rdf_stats::{AtomKey, KeySlot, StatsCatalog};
use rdfviews_core::{RewAtom, Rewriting, SearchOutcome, SearchStats, View};
use rdfviews_durability::hash::Hasher128;
use rdfviews_durability::wire::{Reader, Writer};
use rdfviews_durability::{bundle, fsutil, wal, DurabilityError};

use super::*;

/// File name of the snapshot bundle inside a deployment directory.
pub const SNAPSHOT_FILE: &str = "snapshot.rdfb";
/// File name of the write-ahead log inside a deployment directory.
pub const WAL_FILE: &str = "wal.rdfl";

/// Domain string of the semantic state hash (see [`Deployment::content_hash`]).
const STATE_DOMAIN: &str = "rdfviews.state.v1";

// Section tags, in their required file order.
const SEC_DICT: u32 = 1;
const SEC_STORE: u32 = 2;
const SEC_REC: u32 = 3;
const SEC_VIEWS: u32 = 4;
const SEC_ENTAIL: u32 = 5;
const SEC_REFORM: u32 = 6;
const SEC_META: u32 = 7;
const SECTION_ORDER: [u32; 7] = [
    SEC_DICT, SEC_STORE, SEC_REC, SEC_VIEWS, SEC_ENTAIL, SEC_REFORM, SEC_META,
];

fn lift(e: DurabilityError) -> SelectionError {
    match e {
        DurabilityError::Io { context, message } => SelectionError::Io { context, message },
        DurabilityError::Corrupt { detail } => SelectionError::CorruptBundle { detail },
        DurabilityError::TornTail { offset } => SelectionError::WalTornTail { offset },
    }
}

fn corrupt(detail: impl Into<String>) -> DurabilityError {
    DurabilityError::Corrupt {
        detail: detail.into(),
    }
}

type DResult<T> = Result<T, DurabilityError>;

// ---------------------------------------------------------------------
// Canonical encoding of the domain types. Unordered collections (view
// rows, catalog counts) are sorted before encoding so that equal states
// always produce equal bytes — the property the state hash relies on.
// ---------------------------------------------------------------------

fn enc_term(w: &mut Writer, t: &Term) {
    w.u8(match t.kind() {
        TermKind::Uri => 0,
        TermKind::Blank => 1,
        TermKind::Literal => 2,
    });
    w.str(t.lexical());
}

fn dec_term(r: &mut Reader<'_>) -> DResult<Term> {
    let kind = r.u8("term kind")?;
    let lex = r.str("term lexical")?;
    Ok(match kind {
        0 => Term::uri(lex),
        1 => Term::blank(lex),
        2 => Term::literal(lex),
        other => return Err(corrupt(format!("unknown term kind {other}"))),
    })
}

fn enc_dict(dict: &Dictionary) -> Vec<u8> {
    let mut w = Writer::new();
    w.len_prefix(dict.len());
    for (_, term) in dict.iter() {
        enc_term(&mut w, term);
    }
    w.into_bytes()
}

fn dec_dict(bytes: &[u8]) -> DResult<Dictionary> {
    let mut r = Reader::new(bytes);
    let n = r.len_prefix("dictionary size", 2)?;
    let mut dict = Dictionary::new();
    for i in 0..n {
        let term = dec_term(&mut r)?;
        let id = dict.intern(term);
        if id.index() != i {
            return Err(corrupt(format!(
                "dictionary entry {i} is a duplicate of id {}",
                id.index()
            )));
        }
    }
    r.expect_exhausted("dictionary section")?;
    Ok(dict)
}

fn enc_store_into(w: &mut Writer, store: &TripleStore) {
    w.u64(store.version());
    w.len_prefix(store.len());
    for t in store.triples() {
        for &id in t {
            w.u32(id.0);
        }
    }
}

fn dec_store(r: &mut Reader<'_>, dict_len: usize) -> DResult<TripleStore> {
    let version = r.u64("store version")?;
    let n = r.len_prefix("store triple count", 12)?;
    let mut triples = Vec::with_capacity(n);
    for _ in 0..n {
        let mut t = [Id(0); 3];
        for slot in &mut t {
            let raw = r.u32("triple id")?;
            if raw as usize >= dict_len {
                return Err(corrupt(format!(
                    "triple id {raw} outside dictionary of {dict_len} terms"
                )));
            }
            *slot = Id(raw);
        }
        triples.push(t);
    }
    let store = TripleStore::from_parts(triples, version);
    if store.len() != n {
        return Err(corrupt("store section contains duplicate triples"));
    }
    Ok(store)
}

fn enc_qterm(w: &mut Writer, t: QTerm) {
    match t {
        QTerm::Var(v) => {
            w.u8(0);
            w.u32(v.0);
        }
        QTerm::Const(c) => {
            w.u8(1);
            w.u32(c.0);
        }
    }
}

fn dec_qterm(r: &mut Reader<'_>) -> DResult<QTerm> {
    match r.u8("qterm tag")? {
        0 => Ok(QTerm::Var(Var(r.u32("qterm var")?))),
        1 => Ok(QTerm::Const(Id(r.u32("qterm const")?))),
        other => Err(corrupt(format!("unknown qterm tag {other}"))),
    }
}

fn enc_atom(w: &mut Writer, a: &Atom) {
    for &t in a.terms() {
        enc_qterm(w, t);
    }
}

fn dec_atom(r: &mut Reader<'_>) -> DResult<Atom> {
    Ok(Atom([dec_qterm(r)?, dec_qterm(r)?, dec_qterm(r)?]))
}

fn enc_cq(w: &mut Writer, q: &ConjunctiveQuery) {
    w.len_prefix(q.head.len());
    for &t in &q.head {
        enc_qterm(w, t);
    }
    w.len_prefix(q.atoms.len());
    for a in &q.atoms {
        enc_atom(w, a);
    }
}

fn dec_cq(r: &mut Reader<'_>) -> DResult<ConjunctiveQuery> {
    let hn = r.len_prefix("query head", 5)?;
    let mut head = Vec::with_capacity(hn);
    for _ in 0..hn {
        head.push(dec_qterm(r)?);
    }
    let an = r.len_prefix("query atoms", 15)?;
    let mut atoms = Vec::with_capacity(an);
    for _ in 0..an {
        atoms.push(dec_atom(r)?);
    }
    Ok(ConjunctiveQuery::new(head, atoms))
}

fn enc_view(w: &mut Writer, v: &View) {
    w.u32(v.id.0);
    w.len_prefix(v.head.len());
    for &h in &v.head {
        w.u32(h.0);
    }
    w.len_prefix(v.atoms.len());
    for a in &v.atoms {
        enc_atom(w, a);
    }
}

fn dec_view(r: &mut Reader<'_>) -> DResult<View> {
    let id = ViewId(r.u32("view id")?);
    let hn = r.len_prefix("view head", 4)?;
    let mut head = Vec::with_capacity(hn);
    for _ in 0..hn {
        head.push(Var(r.u32("view head var")?));
    }
    let an = r.len_prefix("view atoms", 15)?;
    let mut atoms = Vec::with_capacity(an);
    for _ in 0..an {
        atoms.push(dec_atom(r)?);
    }
    Ok(View { id, head, atoms })
}

fn enc_rewriting(w: &mut Writer, rw: &Rewriting) {
    w.u64(rw.query_index as u64);
    w.len_prefix(rw.head.len());
    for &t in &rw.head {
        enc_qterm(w, t);
    }
    w.len_prefix(rw.atoms.len());
    for a in &rw.atoms {
        w.u32(a.view.0);
        w.len_prefix(a.args.len());
        for &arg in &a.args {
            enc_qterm(w, arg);
        }
    }
    w.u32(rw.next_var());
}

fn dec_rewriting(r: &mut Reader<'_>) -> DResult<Rewriting> {
    let query_index = r.u64("rewriting query index")? as usize;
    let hn = r.len_prefix("rewriting head", 5)?;
    let mut head = Vec::with_capacity(hn);
    for _ in 0..hn {
        head.push(dec_qterm(r)?);
    }
    let an = r.len_prefix("rewriting atoms", 12)?;
    let mut atoms = Vec::with_capacity(an);
    for _ in 0..an {
        let view = ViewId(r.u32("rewriting atom view")?);
        let argn = r.len_prefix("rewriting atom args", 5)?;
        let mut args = Vec::with_capacity(argn);
        for _ in 0..argn {
            args.push(dec_qterm(r)?);
        }
        atoms.push(RewAtom { view, args });
    }
    let next_var = r.u32("rewriting next_var")?;
    Ok(Rewriting::from_parts(query_index, head, atoms, next_var))
}

fn enc_state(w: &mut Writer, s: &State) {
    w.len_prefix(s.view_count());
    for v in s.views() {
        enc_view(w, v);
    }
    w.len_prefix(s.rewritings().len());
    for rw in s.rewritings() {
        enc_rewriting(w, rw);
    }
    w.u32(s.next_view_id());
}

fn dec_state(r: &mut Reader<'_>) -> DResult<State> {
    let vn = r.len_prefix("state views", 20)?;
    let mut views = Vec::with_capacity(vn);
    for _ in 0..vn {
        views.push(dec_view(r)?);
    }
    let rn = r.len_prefix("state rewritings", 20)?;
    let mut rewritings = Vec::with_capacity(rn);
    for _ in 0..rn {
        rewritings.push(dec_rewriting(r)?);
    }
    let next_view_id = r.u32("state next_view_id")?;
    Ok(State::from_parts(views, rewritings, next_view_id))
}

fn enc_stats(w: &mut Writer, s: &SearchStats) {
    w.u64(s.created);
    w.u64(s.duplicates);
    w.u64(s.discarded);
    w.u64(s.explored);
    w.u64(s.transitions);
    w.u64(s.reexpansions);
    w.u64(s.frontier_remaining);
    w.len_prefix(s.best_cost_trace.len());
    for &(t, c) in &s.best_cost_trace {
        w.f64(t);
        w.f64(c);
    }
    w.bool(s.out_of_budget);
    w.bool(s.timed_out);
    w.u64(s.elapsed.as_secs());
    w.u32(s.elapsed.subsec_nanos());
}

fn dec_stats(r: &mut Reader<'_>) -> DResult<SearchStats> {
    let mut s = SearchStats {
        created: r.u64("stats created")?,
        duplicates: r.u64("stats duplicates")?,
        discarded: r.u64("stats discarded")?,
        explored: r.u64("stats explored")?,
        transitions: r.u64("stats transitions")?,
        reexpansions: r.u64("stats reexpansions")?,
        frontier_remaining: r.u64("stats frontier")?,
        ..SearchStats::default()
    };
    let tn = r.len_prefix("stats trace", 16)?;
    s.best_cost_trace = Vec::with_capacity(tn);
    for _ in 0..tn {
        let t = r.f64("trace time")?;
        let c = r.f64("trace cost")?;
        s.best_cost_trace.push((t, c));
    }
    s.out_of_budget = r.bool("stats out_of_budget")?;
    s.timed_out = r.bool("stats timed_out")?;
    let secs = r.u64("stats elapsed secs")?;
    let nanos = r.u32("stats elapsed nanos")?;
    if nanos >= 1_000_000_000 {
        return Err(corrupt("stats elapsed nanos out of range"));
    }
    s.elapsed = Duration::new(secs, nanos);
    Ok(s)
}

fn enc_catalog(w: &mut Writer, cat: &StatsCatalog) {
    // HashMap entries sorted by their encoded bytes (KeySlot has no Ord).
    let mut entries: Vec<Vec<u8>> = cat
        .counts()
        .map(|(key, count)| {
            let mut ew = Writer::new();
            for slot in key.0 {
                match slot {
                    KeySlot::Const(id) => {
                        ew.u8(0);
                        ew.u32(id.0);
                    }
                    KeySlot::Var(v) => {
                        ew.u8(1);
                        ew.u32(v as u32);
                    }
                }
            }
            ew.u64(count);
            ew.into_bytes()
        })
        .collect();
    entries.sort_unstable();
    w.len_prefix(entries.len());
    for e in entries {
        w.raw(&e);
    }
    w.u64(cat.dataset_size());
    for col in 0..3 {
        w.u64(cat.distinct(col));
    }
    match cat.min_max() {
        Some(mm) => {
            w.bool(true);
            for (lo, hi) in mm {
                w.u32(lo.0);
                w.u32(hi.0);
            }
        }
        None => w.bool(false),
    }
    for width in cat.avg_widths_raw() {
        w.f64(width);
    }
}

fn dec_catalog(r: &mut Reader<'_>) -> DResult<StatsCatalog> {
    let n = r.len_prefix("catalog entries", 23)?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        let mut slots = [KeySlot::Var(0); 3];
        for slot in &mut slots {
            *slot = match r.u8("catalog key slot tag")? {
                0 => KeySlot::Const(Id(r.u32("catalog key const")?)),
                1 => {
                    let v = r.u32("catalog key var")?;
                    if v > u8::MAX as u32 {
                        return Err(corrupt("catalog key var out of range"));
                    }
                    KeySlot::Var(v as u8)
                }
                other => return Err(corrupt(format!("unknown key slot tag {other}"))),
            };
        }
        let count = r.u64("catalog count")?;
        counts.push((AtomKey(slots), count));
    }
    let dataset_size = r.u64("catalog dataset size")?;
    let mut distinct = [0u64; 3];
    for d in &mut distinct {
        *d = r.u64("catalog distinct")?;
    }
    let min_max = if r.bool("catalog min_max flag")? {
        let mut mm = [(Id(0), Id(0)); 3];
        for pair in &mut mm {
            pair.0 = Id(r.u32("catalog min")?);
            pair.1 = Id(r.u32("catalog max")?);
        }
        Some(mm)
    } else {
        None
    };
    let mut widths = [0.0f64; 3];
    for width in &mut widths {
        *width = r.f64("catalog avg width")?;
    }
    Ok(StatsCatalog::from_parts(
        counts,
        dataset_size,
        distinct,
        min_max,
        widths,
    ))
}

fn enc_rec(rec: &Recommendation) -> Vec<u8> {
    let mut w = Writer::new();
    w.len_prefix(rec.workload.len());
    for q in &rec.workload {
        enc_cq(&mut w, q);
    }
    w.len_prefix(rec.branch_of.len());
    for &orig in &rec.branch_of {
        w.u64(orig as u64);
    }
    enc_state(&mut w, &rec.outcome.best_state);
    w.f64(rec.outcome.best_cost);
    w.f64(rec.outcome.initial_cost);
    enc_stats(&mut w, &rec.outcome.stats);
    w.len_prefix(rec.views.len());
    for v in &rec.views {
        enc_view(&mut w, v);
    }
    w.len_prefix(rec.materialization.len());
    for u in &rec.materialization {
        w.len_prefix(u.branches().len());
        for b in u.branches() {
            enc_cq(&mut w, b);
        }
    }
    enc_catalog(&mut w, &rec.catalog);
    w.into_bytes()
}

fn dec_rec(bytes: &[u8]) -> DResult<Recommendation> {
    let mut r = Reader::new(bytes);
    let wn = r.len_prefix("workload", 16)?;
    let mut workload = Vec::with_capacity(wn);
    for _ in 0..wn {
        workload.push(dec_cq(&mut r)?);
    }
    let bn = r.len_prefix("branch_of", 8)?;
    let mut branch_of = Vec::with_capacity(bn);
    for _ in 0..bn {
        branch_of.push(r.u64("branch_of entry")? as usize);
    }
    let best_state = dec_state(&mut r)?;
    let best_cost = r.f64("best cost")?;
    let initial_cost = r.f64("initial cost")?;
    let stats = dec_stats(&mut r)?;
    let vn = r.len_prefix("recommended views", 20)?;
    let mut views = Vec::with_capacity(vn);
    for _ in 0..vn {
        views.push(dec_view(&mut r)?);
    }
    let mn = r.len_prefix("materialization", 8)?;
    let mut materialization = Vec::with_capacity(mn);
    for _ in 0..mn {
        let un = r.len_prefix("union branches", 16)?;
        let mut u = UnionQuery::new();
        for _ in 0..un {
            if !u.push(dec_cq(&mut r)?) {
                return Err(corrupt("materialization union has duplicate branches"));
            }
        }
        materialization.push(u);
    }
    let catalog = Arc::new(dec_catalog(&mut r)?);
    r.expect_exhausted("recommendation section")?;
    if branch_of.len() != workload.len() {
        return Err(corrupt("branch_of length does not match workload"));
    }
    if views.len() != materialization.len() {
        return Err(corrupt("views and materialization lengths differ"));
    }
    Ok(Recommendation {
        workload,
        branch_of,
        outcome: SearchOutcome {
            best_state,
            best_cost,
            initial_cost,
            stats,
        },
        views,
        materialization,
        catalog,
    })
}

fn enc_deployed_views(views: &[DeployedView]) -> Vec<u8> {
    let mut w = Writer::new();
    w.len_prefix(views.len());
    for dv in views {
        w.u32(dv.id.0);
        w.len_prefix(dv.arity);
        w.len_prefix(dv.branches.len());
        for b in &dv.branches {
            enc_cq(&mut w, b.definition());
            let mut rows: Vec<&Vec<Id>> = b.rows().collect();
            rows.sort_unstable();
            w.len_prefix(rows.len());
            for row in rows {
                for &id in row {
                    w.u32(id.0);
                }
            }
        }
    }
    w.into_bytes()
}

fn dec_deployed_views(bytes: &[u8]) -> DResult<Vec<DeployedView>> {
    let mut r = Reader::new(bytes);
    let n = r.len_prefix("deployed views", 20)?;
    let mut views = Vec::with_capacity(n);
    for _ in 0..n {
        let id = ViewId(r.u32("deployed view id")?);
        let arity = r.len_prefix("deployed view arity", 0)?;
        let bn = r.len_prefix("deployed view branches", 16)?;
        let mut branches = Vec::with_capacity(bn);
        for _ in 0..bn {
            let def = dec_cq(&mut r)?;
            if def.head.len() != arity {
                return Err(corrupt("branch arity does not match its view"));
            }
            let rn = r.len_prefix("branch rows", arity.max(1) * 4)?;
            let mut rows = Vec::with_capacity(rn);
            for _ in 0..rn {
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(Id(r.u32("branch row id")?));
                }
                rows.push(row);
            }
            let mv = MaintainedView::from_parts(def, rows);
            if mv.len() != rn {
                return Err(corrupt("branch rows contain duplicates"));
            }
            branches.push(mv);
        }
        views.push(DeployedView {
            id,
            arity,
            branches,
        });
    }
    r.expect_exhausted("deployed views section")?;
    Ok(views)
}

fn enc_schema_into(w: &mut Writer, schema: &Schema, vocab: &VocabIds) {
    w.len_prefix(schema.statements().len());
    for stmt in schema.statements() {
        let (tag, (a, b)) = match stmt {
            SchemaStatement::SubClassOf(..) => (0u8, stmt.pair()),
            SchemaStatement::SubPropertyOf(..) => (1, stmt.pair()),
            SchemaStatement::Domain(..) => (2, stmt.pair()),
            SchemaStatement::Range(..) => (3, stmt.pair()),
        };
        w.u8(tag);
        w.u32(a.0);
        w.u32(b.0);
    }
    for id in [
        vocab.rdf_type,
        vocab.sub_class_of,
        vocab.sub_property_of,
        vocab.domain,
        vocab.range,
    ] {
        w.u32(id.0);
    }
}

fn dec_schema(r: &mut Reader<'_>) -> DResult<(Schema, VocabIds)> {
    let n = r.len_prefix("schema statements", 9)?;
    let mut schema = Schema::new();
    for _ in 0..n {
        let tag = r.u8("schema statement tag")?;
        let a = Id(r.u32("schema statement lhs")?);
        let b = Id(r.u32("schema statement rhs")?);
        let stmt = match tag {
            0 => SchemaStatement::SubClassOf(a, b),
            1 => SchemaStatement::SubPropertyOf(a, b),
            2 => SchemaStatement::Domain(a, b),
            3 => SchemaStatement::Range(a, b),
            other => return Err(corrupt(format!("unknown schema statement tag {other}"))),
        };
        schema.add(stmt);
    }
    let mut ids = [Id(0); 5];
    for id in &mut ids {
        *id = Id(r.u32("vocab id")?);
    }
    Ok((
        schema,
        VocabIds {
            rdf_type: ids[0],
            sub_class_of: ids[1],
            sub_property_of: ids[2],
            domain: ids[3],
            range: ids[4],
        },
    ))
}

// ---------------------------------------------------------------------
// Bundle assembly.
// ---------------------------------------------------------------------

struct EncodedBundle {
    sections: Vec<(u32, Vec<u8>)>,
    state_hash: u128,
}

/// Hashes the semantic payloads (everything except the lineage id) under
/// the state domain. Each payload is length-prefixed into the hash so
/// section boundaries cannot alias.
fn state_hash_of(semantic: &[&[u8]], maintained_version: u64) -> u128 {
    let mut h = Hasher128::with_domain(STATE_DOMAIN);
    for payload in semantic {
        h.update(&(payload.len() as u64).to_le_bytes());
        h.update(payload);
    }
    h.update(&maintained_version.to_le_bytes());
    h.finish()
}

impl Deployment {
    fn encode_bundle(&self, dict: &Dictionary) -> EncodedBundle {
        let dict_bytes = enc_dict(dict);
        let mut store_w = Writer::new();
        enc_store_into(&mut store_w, &self.store);
        let store_bytes = store_w.into_bytes();
        let rec_bytes = enc_rec(&self.ctx.rec);
        let views_bytes = enc_deployed_views(&self.views);
        let entail_bytes = {
            let mut w = Writer::new();
            match &self.entailment {
                Some(ent) => {
                    w.bool(true);
                    enc_schema_into(&mut w, &ent.schema, &ent.vocab);
                    enc_store_into(&mut w, &ent.explicit);
                }
                None => w.bool(false),
            }
            w.into_bytes()
        };
        let reform_bytes = {
            let mut w = Writer::new();
            match &self.ctx.reform {
                Some((schema, vocab)) => {
                    w.bool(true);
                    enc_schema_into(&mut w, schema, vocab);
                }
                None => w.bool(false),
            }
            w.into_bytes()
        };
        let state_hash = state_hash_of(
            &[
                &dict_bytes,
                &store_bytes,
                &rec_bytes,
                &views_bytes,
                &entail_bytes,
                &reform_bytes,
            ],
            self.maintained_version,
        );
        let mut meta_w = Writer::new();
        meta_w.u64(self.maintained_version);
        meta_w.u64(self.ctx.lineage);
        EncodedBundle {
            sections: vec![
                (SEC_DICT, dict_bytes),
                (SEC_STORE, store_bytes),
                (SEC_REC, rec_bytes),
                (SEC_VIEWS, views_bytes),
                (SEC_ENTAIL, entail_bytes),
                (SEC_REFORM, reform_bytes),
                (SEC_META, meta_w.into_bytes()),
            ],
            state_hash,
        }
    }

    fn decode_bundle(bytes: &[u8]) -> DResult<(Deployment, Dictionary, u128)> {
        let sections = bundle::decode(bytes)?;
        if sections.len() != SECTION_ORDER.len() {
            return Err(corrupt(format!(
                "bundle has {} sections, expected {}",
                sections.len(),
                SECTION_ORDER.len()
            )));
        }
        for (got, want) in sections.iter().zip(SECTION_ORDER) {
            if got.0 != want {
                return Err(corrupt(format!(
                    "unexpected section tag {} (expected {want})",
                    got.0
                )));
            }
        }

        let dict = dec_dict(&sections[0].1)?;
        let mut store_r = Reader::new(&sections[1].1);
        let store = dec_store(&mut store_r, dict.len())?;
        store_r.expect_exhausted("store section")?;
        let rec = dec_rec(&sections[2].1)?;
        let views = dec_deployed_views(&sections[3].1)?;

        let mut ent_r = Reader::new(&sections[4].1);
        let entailment = if ent_r.bool("entailment flag")? {
            let (schema, vocab) = dec_schema(&mut ent_r)?;
            let explicit = dec_store(&mut ent_r, dict.len())?;
            Some(EntailmentBase {
                schema,
                vocab,
                explicit,
            })
        } else {
            None
        };
        ent_r.expect_exhausted("entailment section")?;

        let mut ref_r = Reader::new(&sections[5].1);
        let reform = if ref_r.bool("reformulation flag")? {
            Some(dec_schema(&mut ref_r)?)
        } else {
            None
        };
        ref_r.expect_exhausted("reformulation section")?;

        let mut meta_r = Reader::new(&sections[6].1);
        let maintained_version = meta_r.u64("maintained version")?;
        let lineage = meta_r.u64("lineage")?;
        meta_r.expect_exhausted("meta section")?;

        if maintained_version != store.version() {
            return Err(corrupt(format!(
                "maintained version {maintained_version} does not match store version {}",
                store.version()
            )));
        }
        if views.len() != rec.views.len() {
            return Err(corrupt("deployed view count does not match recommendation"));
        }

        let state_hash = state_hash_of(
            &[
                &sections[0].1,
                &sections[1].1,
                &sections[2].1,
                &sections[3].1,
                &sections[4].1,
                &sections[5].1,
            ],
            maintained_version,
        );

        let mut tables = MaterializedViews::default();
        for dv in &views {
            tables.tables.insert(dv.id, Arc::new(dv.merged_table()));
        }
        let generation = Arc::new(Generation {
            store: store.snapshot(),
            tables: Arc::new(tables.clone()),
        });
        let dep = Deployment {
            ctx: Arc::new(PlanCtx {
                rec,
                reform,
                // Fresh process-scoped id: plans from the pre-crash process
                // must not execute against the reloaded deployment.
                deployment_id: DEPLOYMENT_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                lineage,
            }),
            store,
            views,
            tables,
            dirty: FxHashSet::default(),
            entailment,
            maintained_version,
            strict: false,
            current: Arc::new(RwLock::new(generation)),
            workload_plans: FxHashMap::default(),
            last_eval: Vec::new(),
        };
        Ok((dep, dict, state_hash))
    }

    /// Serializes the deployment (and the dictionary its ids refer to)
    /// into `dir/snapshot.rdfb`, written atomically. Returns the 128-bit
    /// **state hash** — the canonical content fingerprint that
    /// [`Deployment::recover`] reproduces exactly.
    ///
    /// Fails with [`SelectionError::StaleSession`] while unmaintained
    /// direct writes are pending (a snapshot must never capture views that
    /// lag their store), and with [`SelectionError::Io`] on filesystem
    /// failures.
    pub fn persist(&self, dir: &Path, dict: &Dictionary) -> Result<u128, SelectionError> {
        self.ensure_fresh()?;
        fsutil::ensure_dir(dir).map_err(lift)?;
        let encoded = self.encode_bundle(dict);
        let bytes = bundle::encode(&encoded.sections);
        fsutil::atomic_write(&dir.join(SNAPSHOT_FILE), &bytes).map_err(lift)?;
        Ok(encoded.state_hash)
    }

    /// Loads the snapshot bundle from `dir`, ignoring any write-ahead log
    /// (use [`Deployment::recover`] to replay one). Returns the deployment
    /// and the dictionary it was persisted with. All structural validation
    /// happens here: a corrupted or version-mixed bundle is a
    /// [`SelectionError::CorruptBundle`] at load time, never a wrong
    /// answer at query time.
    pub fn open(dir: &Path) -> Result<(Deployment, Dictionary), SelectionError> {
        let bytes = fsutil::read_file(&dir.join(SNAPSHOT_FILE)).map_err(lift)?;
        let (dep, dict, _) = Self::decode_bundle(&bytes).map_err(lift)?;
        Ok((dep, dict))
    }

    /// The deployment's canonical 128-bit content fingerprint (domain
    /// `rdfviews.state.v1`), over the same canonical encoding
    /// [`Deployment::persist`] writes — equal hashes mean equal
    /// dictionary, store, recommendation, and view tables. The lineage id
    /// is excluded, so a live deployment and its recovered twin compare
    /// equal.
    pub fn content_hash(&self, dict: &Dictionary) -> Result<u128, SelectionError> {
        self.ensure_fresh()?;
        Ok(self.encode_bundle(dict).state_hash)
    }

    /// Recovers a deployment from `dir`: loads the snapshot, then replays
    /// the write-ahead log suffix through the ordinary batch-maintenance
    /// path (the same delta joins and saturation fixpoint the live
    /// deployment ran). A torn tail record — the signature of a crash
    /// mid-append — is dropped gracefully and reported; records already
    /// absorbed by a newer snapshot are skipped by their version stamps;
    /// a record from the *future* (version stamp ahead of the store) is
    /// corruption.
    pub fn recover(dir: &Path) -> Result<(Deployment, Dictionary, RecoveryReport), SelectionError> {
        let (mut dep, mut dict) = Self::open(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let scan = if wal_path.exists() {
            wal::scan(&fsutil::read_file(&wal_path).map_err(lift)?).map_err(lift)?
        } else {
            wal::WalScan {
                records: Vec::new(),
                valid_len: 0,
                torn_tail: None,
            }
        };
        let mut report = RecoveryReport {
            records_scanned: scan.records.len(),
            records_replayed: 0,
            records_skipped: 0,
            torn_tail: scan.torn_tail,
            wal_valid_len: scan.valid_len,
            triples_inserted: 0,
            triples_deleted: 0,
            state_hash: 0,
        };
        for record in &scan.records {
            let (kind, pre_version, new_terms, triples) =
                dec_wal_record(&record.payload).map_err(lift)?;
            // Dictionary growth replays idempotently: terms already known
            // (snapshot newer than the record) re-intern to their ids.
            for term in new_terms {
                dict.intern(term);
            }
            for t in &triples {
                for &id in t {
                    if id.index() >= dict.len() {
                        return Err(SelectionError::CorruptBundle {
                            detail: format!(
                                "wal record at byte {} references id {} outside the dictionary",
                                record.offset, id.0
                            ),
                        });
                    }
                }
            }
            let current = dep.store.version();
            if pre_version > current {
                return Err(SelectionError::CorruptBundle {
                    detail: format!(
                        "wal record at byte {} expects store version {pre_version} but the \
                         store is at {current}",
                        record.offset
                    ),
                });
            }
            if pre_version < current {
                // Already absorbed by a newer snapshot (crash between
                // checkpoint write and wal reset).
                report.records_skipped += 1;
                continue;
            }
            match kind {
                WalKind::Insert => {
                    dep.insert_batch(&triples);
                    report.triples_inserted += triples.len();
                }
                WalKind::Delete => {
                    dep.delete_batch(&triples);
                    report.triples_deleted += triples.len();
                }
            }
            report.records_replayed += 1;
        }
        report.state_hash = dep.content_hash(&dict)?;
        Ok((dep, dict, report))
    }

    /// Strictly verifies the write-ahead log in `dir`: returns the number
    /// of valid records, [`SelectionError::WalTornTail`] if the log ends
    /// in an incomplete record, [`SelectionError::CorruptBundle`] on a
    /// malformed header. A missing log is an empty one.
    pub fn verify_wal(dir: &Path) -> Result<usize, SelectionError> {
        let wal_path = dir.join(WAL_FILE);
        if !wal_path.exists() {
            return Ok(0);
        }
        let bytes = fsutil::read_file(&wal_path).map_err(lift)?;
        Ok(wal::scan_strict(&bytes).map_err(lift)?.len())
    }
}

/// What [`Deployment::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid WAL records found (replayed + skipped).
    pub records_scanned: usize,
    /// Records replayed through the maintenance path.
    pub records_replayed: usize,
    /// Records skipped because a newer snapshot had already absorbed them
    /// (their version stamp predates the snapshot's store version).
    pub records_skipped: usize,
    /// Offset of a torn tail record that was dropped, if any.
    pub torn_tail: Option<u64>,
    /// Length of the trusted WAL prefix (what an appender must truncate
    /// to).
    pub wal_valid_len: u64,
    /// Triples submitted through replayed insert records.
    pub triples_inserted: usize,
    /// Triples submitted through replayed delete records.
    pub triples_deleted: usize,
    /// The recovered deployment's content hash — equal to the pre-crash
    /// deployment's [`Deployment::content_hash`] at the last durable
    /// record.
    pub state_hash: u128,
}

// ---------------------------------------------------------------------
// WAL records.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalKind {
    Insert,
    Delete,
}

fn enc_wal_record(
    kind: WalKind,
    pre_version: u64,
    new_terms: &[&Term],
    batch: &[Triple],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(match kind {
        WalKind::Insert => 0,
        WalKind::Delete => 1,
    });
    w.u64(pre_version);
    w.len_prefix(new_terms.len());
    for term in new_terms {
        enc_term(&mut w, term);
    }
    w.len_prefix(batch.len());
    for t in batch {
        for &id in t {
            w.u32(id.0);
        }
    }
    w.into_bytes()
}

fn dec_wal_record(payload: &[u8]) -> DResult<(WalKind, u64, Vec<Term>, Vec<Triple>)> {
    let mut r = Reader::new(payload);
    let kind = match r.u8("wal record kind")? {
        0 => WalKind::Insert,
        1 => WalKind::Delete,
        other => return Err(corrupt(format!("unknown wal record kind {other}"))),
    };
    let pre_version = r.u64("wal record version")?;
    let tn = r.len_prefix("wal record terms", 2)?;
    let mut new_terms = Vec::with_capacity(tn);
    for _ in 0..tn {
        new_terms.push(dec_term(&mut r)?);
    }
    let bn = r.len_prefix("wal record triples", 12)?;
    let mut batch = Vec::with_capacity(bn);
    for _ in 0..bn {
        let mut t = [Id(0); 3];
        for slot in &mut t {
            *slot = Id(r.u32("wal record triple id")?);
        }
        batch.push(t);
    }
    r.expect_exhausted("wal record")?;
    Ok((kind, pre_version, new_terms, batch))
}

// ---------------------------------------------------------------------
// The durable wrapper: a deployment whose batches tee into the WAL.
// ---------------------------------------------------------------------

/// A [`Deployment`] bound to a directory: every
/// [`DurableDeployment::insert_batch`] / [`DurableDeployment::delete_batch`]
/// is appended to the write-ahead log (and fsync'd) *before* it is applied
/// in memory, so the deployment state is recoverable after a crash at any
/// instant. Once the WAL exceeds the compaction threshold, a fresh
/// snapshot absorbs it automatically.
///
/// The wrapper owns the [`Dictionary`]: terms interned after deployment
/// (new subjects arriving in update feeds) travel inside the WAL records
/// that first reference them, so recovery rebuilds the dictionary too.
#[derive(Debug)]
pub struct DurableDeployment {
    dep: Deployment,
    dict: Dictionary,
    dir: PathBuf,
    wal: wal::WalWriter,
    /// Dictionary length already captured by the snapshot or an earlier
    /// WAL record; the next record carries the terms beyond it.
    persisted_dict_len: usize,
    compact_threshold: u64,
}

impl DurableDeployment {
    /// Default WAL size (bytes) that triggers a compaction checkpoint.
    pub const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

    /// Persists `dep` into `dir` (snapshot + empty WAL) and returns the
    /// durable handle. The dictionary is the one the deployment's ids
    /// refer to — usually the advisor's (see `Advisor::deploy_durable`).
    pub fn create(
        dir: &Path,
        dep: Deployment,
        dict: Dictionary,
    ) -> Result<DurableDeployment, SelectionError> {
        fsutil::ensure_dir(dir).map_err(lift)?;
        dep.persist(dir, &dict)?;
        let wal = wal::WalWriter::create(&dir.join(WAL_FILE)).map_err(lift)?;
        Ok(DurableDeployment {
            dep,
            persisted_dict_len: dict.len(),
            dict,
            dir: dir.to_path_buf(),
            wal,
            compact_threshold: Self::DEFAULT_COMPACT_THRESHOLD,
        })
    }

    /// Recovers the deployment in `dir` (snapshot + WAL replay) and
    /// reopens the WAL for appending, truncating any torn tail.
    pub fn recover(dir: &Path) -> Result<(DurableDeployment, RecoveryReport), SelectionError> {
        let (dep, dict, report) = Deployment::recover(dir)?;
        let wal =
            wal::WalWriter::open_at(&dir.join(WAL_FILE), report.wal_valid_len).map_err(lift)?;
        Ok((
            DurableDeployment {
                dep,
                persisted_dict_len: dict.len(),
                dict,
                dir: dir.to_path_buf(),
                wal,
                compact_threshold: Self::DEFAULT_COMPACT_THRESHOLD,
            },
            report,
        ))
    }

    /// Overrides the WAL size threshold that triggers automatic
    /// compaction (`0` compacts after every batch).
    pub fn with_compact_threshold(mut self, bytes: u64) -> Self {
        self.compact_threshold = bytes;
        self
    }

    /// The deployment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read access to the wrapped deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.dep
    }

    /// Mutable access for the read entry points that cache (`answer`,
    /// `answer_adhoc`, `tables`, …). Mutating the base store directly
    /// through this handle bypasses the WAL — such writes are not durable
    /// until the next [`DurableDeployment::checkpoint`].
    pub fn deployment_mut(&mut self) -> &mut Deployment {
        &mut self.dep
    }

    /// The dictionary the deployment's ids refer to.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable dictionary access (interning terms for new triples or
    /// ad-hoc queries). Newly interned terms become durable with the next
    /// logged batch or checkpoint.
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// Pins the wrapped deployment's published read generation — see
    /// [`Deployment::snapshot`]. Snapshot readers keep answering as-of
    /// their pinned generation while this handle logs and applies further
    /// batches against the **write generation** (WAL records are stamped
    /// with the live store's pre-apply version, which never depends on
    /// what readers have pinned).
    pub fn snapshot(&self) -> DeploymentSnapshot {
        self.dep.snapshot()
    }

    /// A thread-safe handle onto the published-generation slot — see
    /// [`Deployment::reader`].
    pub fn reader(&self) -> SnapshotReader {
        self.dep.reader()
    }

    /// Current WAL size in bytes (header included).
    pub fn wal_size(&self) -> u64 {
        self.wal.size()
    }

    /// Consumes the handle, releasing the deployment and dictionary.
    pub fn into_parts(self) -> (Deployment, Dictionary) {
        (self.dep, self.dict)
    }

    fn log_and_apply(
        &mut self,
        kind: WalKind,
        batch: &[Triple],
    ) -> Result<MaintenanceStats, SelectionError> {
        if batch.is_empty() {
            return Ok(MaintenanceStats::default());
        }
        let new_terms: Vec<&Term> = (self.persisted_dict_len..self.dict.len())
            .map(|i| self.dict.term(Id(i as u32)))
            .collect();
        let record = enc_wal_record(kind, self.dep.store.version(), &new_terms, batch);
        // Durability point: the record is on disk before the apply.
        self.wal.append(&record).map_err(lift)?;
        self.persisted_dict_len = self.dict.len();
        let stats = match kind {
            WalKind::Insert => self.dep.insert_batch(batch),
            WalKind::Delete => self.dep.delete_batch(batch),
        };
        if self.wal.size() >= self.compact_threshold {
            self.checkpoint()?;
        }
        Ok(stats)
    }

    /// Logs and applies an insertion batch (see
    /// [`Deployment::insert_batch`] for maintenance semantics).
    pub fn insert_batch(&mut self, batch: &[Triple]) -> Result<MaintenanceStats, SelectionError> {
        self.log_and_apply(WalKind::Insert, batch)
    }

    /// Logs and applies a deletion batch (see
    /// [`Deployment::delete_batch`]).
    pub fn delete_batch(&mut self, batch: &[Triple]) -> Result<MaintenanceStats, SelectionError> {
        self.log_and_apply(WalKind::Delete, batch)
    }

    /// Writes a fresh snapshot absorbing every logged record, then resets
    /// the WAL. Crash-safe in both orders: a crash before the snapshot
    /// rename keeps the old snapshot + full WAL; a crash between rename
    /// and reset leaves a newer snapshot + stale records, which recovery
    /// skips by their version stamps. Returns the snapshot's state hash.
    pub fn checkpoint(&mut self) -> Result<u128, SelectionError> {
        let hash = self.dep.persist(&self.dir, &self.dict)?;
        self.wal.reset().map_err(lift)?;
        self.persisted_dict_len = self.dict.len();
        Ok(hash)
    }
}
