//! `rdfviews` — command-line view selection for RDF databases.
//!
//! ```text
//! rdfviews <data.nt> <workload.rq> [options]
//! rdfviews query <data.nt> <workload.rq> [options] [--query "<q>"]...
//! rdfviews save <data.nt> <workload.rq> <dir> [options]
//! rdfviews load <dir> [--query "<q>"]... [--policy ...]
//! rdfviews recover <dir> [--query "<q>"]... [--policy ...]
//!
//! The `query` subcommand tunes on the workload, deploys the recommended
//! views, then answers **ad-hoc** queries against the deployment — from
//! repeated `--query` arguments, or one query per stdin line when none is
//! given — printing each chosen plan (view scans vs base scans) and its
//! answers.
//!
//! The durability subcommands: `save` tunes and persists the deployment
//! into `<dir>` (snapshot bundle + write-ahead log), printing its content
//! hash; `load` reopens the snapshot (ignoring the log) and can answer
//! ad-hoc queries against it; `recover` additionally replays the
//! write-ahead log through the maintenance path, reporting replayed /
//! skipped records and any dropped torn tail.
//!
//! options:
//!   --query <q>                      (query mode) an ad-hoc query to
//!                                    answer; repeatable
//!   --policy views|hybrid|base       (query mode) answer policy for atoms
//!                                    no view covers (default: hybrid)
//!   --pin                            (query mode) pin one snapshot
//!                                    generation up front and answer every
//!                                    query from it (wait-free reads on a
//!                                    fixed store version)
//!   --stats                          (query mode) print per-branch
//!                                    evaluation statistics (engine,
//!                                    leapfrog seeks/emitted) per query
//!   --mode plain|saturate|pre|post   entailment handling (default: plain;
//!                                    all but plain extract the RDFS from
//!                                    the data triples)
//!   --strategy dfs|gstr|exnaive|exstr|pruning|greedy|heuristic
//!   --budget <seconds>               search time budget (default: 10)
//!   --max-states <n>                 state budget (default: 1000000)
//!   --strict-budget                  fail instead of returning a partial
//!                                    result when the budget runs out
//!   --partition                      search independent workload groups
//!                                    in parallel (one shared session)
//!   --threads <n>                    explorer threads per search
//!                                    (default: 1; 0 = one per core);
//!                                    with --partition the budget is split
//!                                    across the group scheduler
//!   --materialize                    also deploy and report view sizes
//! ```
//!
//! `data.nt` holds one triple per line (`<s> <p> <o> .`); schema statements
//! (`rdfs:subClassOf`, `rdfs:subPropertyOf`, `rdfs:domain`, `rdfs:range`)
//! are read from the same file. `workload.rq` holds one conjunctive query
//! per line: `q1(X, Z) :- t(X, <p>, Y), t(Y, <q>, Z)`.

use std::process::ExitCode;
use std::time::Duration;

use rdfviews::core::display::state_to_string;
use rdfviews::prelude::*;

struct Args {
    data: String,
    workload: String,
    /// The `save` subcommand's deployment directory.
    save_dir: Option<String>,
    mode: ReasoningMode,
    strategy: StrategyKind,
    budget: Duration,
    max_states: usize,
    strict_budget: bool,
    partition: bool,
    materialize: bool,
    threads: usize,
    /// The `query` subcommand: deploy, then answer ad-hoc queries.
    query_mode: bool,
    /// Ad-hoc queries from `--query` (stdin when empty in query mode).
    adhoc: Vec<String>,
    policy: AnswerPolicy,
    /// Query mode: answer everything from one pinned snapshot generation.
    pin: bool,
    /// Query mode: print per-branch evaluation statistics.
    stats: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rdfviews [query] <data.nt> <workload.rq> [--mode plain|saturate|pre|post] \
         [--strategy dfs|gstr|exnaive|exstr|pruning|greedy|heuristic] \
         [--budget SECONDS] [--max-states N] [--strict-budget] [--partition] [--threads N] \
         [--materialize] [--query QUERY]... [--policy views|hybrid|base] [--pin] [--stats]\n\
         \x20      rdfviews save <data.nt> <workload.rq> <dir> [tuning options]\n\
         \x20      rdfviews load <dir> [--query QUERY]... [--policy views|hybrid|base]\n\
         \x20      rdfviews recover <dir> [--query QUERY]... [--policy views|hybrid|base]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut positional: Vec<String> = Vec::new();
    let mut args = Args {
        data: String::new(),
        workload: String::new(),
        save_dir: None,
        mode: ReasoningMode::Plain,
        strategy: StrategyKind::Dfs,
        budget: Duration::from_secs(10),
        max_states: 1_000_000,
        strict_budget: false,
        partition: false,
        materialize: false,
        threads: 1,
        query_mode: false,
        adhoc: Vec::new(),
        policy: AnswerPolicy::Hybrid,
        pin: false,
        stats: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    let mut save_mode = false;
    match it.peek().map(String::as_str) {
        Some("query") => {
            args.query_mode = true;
            it.next();
        }
        Some("save") => {
            save_mode = true;
            it.next();
        }
        _ => {}
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--query" => {
                args.adhoc.push(it.next().ok_or_else(usage)?);
            }
            "--policy" => {
                args.policy = match it.next().as_deref() {
                    Some("views") => AnswerPolicy::ViewsOnly,
                    Some("hybrid") => AnswerPolicy::Hybrid,
                    Some("base") => AnswerPolicy::BaseFallback,
                    _ => return Err(usage()),
                }
            }
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("plain") => ReasoningMode::Plain,
                    Some("saturate") => ReasoningMode::Saturation,
                    Some("pre") => ReasoningMode::PreReformulation,
                    Some("post") => ReasoningMode::PostReformulation,
                    _ => return Err(usage()),
                }
            }
            "--strategy" => {
                args.strategy = match it.next().as_deref() {
                    Some("dfs") => StrategyKind::Dfs,
                    Some("gstr") => StrategyKind::Gstr,
                    Some("exnaive") => StrategyKind::ExNaive,
                    Some("exstr") => StrategyKind::ExStr,
                    Some("pruning") => StrategyKind::Pruning,
                    Some("greedy") => StrategyKind::Greedy,
                    Some("heuristic") => StrategyKind::Heuristic,
                    _ => return Err(usage()),
                }
            }
            "--budget" => {
                let secs: u64 = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
                args.budget = Duration::from_secs(secs);
            }
            "--max-states" => {
                args.max_states = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--threads" => {
                args.threads = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--strict-budget" => args.strict_budget = true,
            "--partition" => args.partition = true,
            "--materialize" => args.materialize = true,
            "--pin" => args.pin = true,
            "--stats" => args.stats = true,
            "--help" | "-h" => return Err(usage()),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != if save_mode { 3 } else { 2 } {
        return Err(usage());
    }
    args.data = positional.remove(0);
    args.workload = positional.remove(0);
    if save_mode {
        args.save_dir = Some(positional.remove(0));
    }
    Ok(args)
}

/// The `load` / `recover` subcommands: reopen a persisted deployment
/// directory (replaying the write-ahead log when `replay_wal`) and answer
/// any ad-hoc queries against it.
fn run_open(replay_wal: bool) -> ExitCode {
    let mut dir = None;
    let mut adhoc: Vec<String> = Vec::new();
    let mut policy = AnswerPolicy::Hybrid;
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--query" => match it.next() {
                Some(q) => adhoc.push(q),
                None => return usage(),
            },
            "--policy" => {
                policy = match it.next().as_deref() {
                    Some("views") => AnswerPolicy::ViewsOnly,
                    Some("hybrid") => AnswerPolicy::Hybrid,
                    Some("base") => AnswerPolicy::BaseFallback,
                    _ => return usage(),
                }
            }
            "--help" | "-h" => return usage(),
            other if dir.is_none() => dir = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(dir) = dir else { return usage() };
    let dir = std::path::Path::new(&dir);

    let (mut deployment, mut dict) = if replay_wal {
        match Deployment::recover(dir) {
            Ok((dep, dict, report)) => {
                println!(
                    "# recovered: {} wal records replayed, {} skipped (absorbed by snapshot)",
                    report.records_replayed, report.records_skipped
                );
                if let Some(offset) = report.torn_tail {
                    println!("# dropped torn tail record at byte {offset}");
                }
                println!("# state hash   : {:032x}", report.state_hash);
                (dep, dict)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match Deployment::open(dir) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "# loaded deployment {:#x}: {} views over {} triples (store version {})",
        deployment.lineage(),
        deployment.view_count(),
        deployment.store().len(),
        deployment.store().version(),
    );
    if !replay_wal {
        match deployment.content_hash(&dict) {
            Ok(hash) => println!("# state hash   : {hash:032x}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for text in &adhoc {
        println!("#\n# query: {text}");
        let q = match parse_query(text, &mut dict) {
            Ok(p) => p.query,
            Err(e) => {
                eprintln!("error: ad-hoc query `{text}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let plan = match deployment.plan_with(&q, policy) {
            Ok(p) => p,
            Err(e) => {
                println!("#   no plan: {e}");
                continue;
            }
        };
        print!("{}", plan.describe(&dict));
        match deployment.answer_query(&plan) {
            Ok(answers) => println!("# answers: {}", answers.len()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("load") => return run_open(false),
        Some("recover") => return run_open(true),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    // -- Load data. -------------------------------------------------------
    let text = match std::fs::read_to_string(&args.data) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.data);
            return ExitCode::FAILURE;
        }
    };
    let mut db = match rdfviews::model::ntriples::parse_dataset(&text) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {}: {e}", args.data);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded {} triples from {}", db.len(), args.data);

    // -- Load workload (parse failures surface as SelectionError). --------
    let wtext = match std::fs::read_to_string(&args.workload) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.workload);
            return ExitCode::FAILURE;
        }
    };
    let workload = match parse_workload_queries(&wtext, db.dict_mut()) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: {}: {e}", args.workload);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("parsed {} workload queries", workload.len());

    // -- Ad-hoc queries (query mode): --query args, or stdin lines. -------
    let mut adhoc_texts = args.adhoc.clone();
    if args.query_mode && adhoc_texts.is_empty() {
        use std::io::Read;
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_ok() {
            adhoc_texts.extend(
                buf.lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .map(String::from),
            );
        }
    }
    let mut adhoc_queries = Vec::new();
    for text in &adhoc_texts {
        match parse_query(text, db.dict_mut()) {
            Ok(p) => adhoc_queries.push((text.clone(), p.query)),
            Err(e) => {
                eprintln!("error: ad-hoc query `{text}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.query_mode && adhoc_queries.is_empty() {
        eprintln!("error: query mode needs at least one ad-hoc query (--query or stdin)");
        return ExitCode::FAILURE;
    }

    // -- Schema (extracted from data when reasoning is requested). --------
    // Intern the RDFS vocabulary first: extraction looks the vocabulary up
    // in the dictionary, and a data file need not mention every RDFS URI.
    let vocab = VocabIds::intern(db.dict_mut());
    let schema = Schema::from_dataset(&db);

    // -- Open the advisor session and recommend. ---------------------------
    let mut builder = Advisor::builder(&db)
        .reasoning(args.mode)
        .strategy(args.strategy)
        .budget(args.budget)
        .max_states(args.max_states)
        .parallelism(args.threads)
        .strict_budget(args.strict_budget);
    if args.mode.needs_schema() {
        eprintln!("schema: {} RDFS statements", schema.len());
        builder = builder.schema(&schema, &vocab);
    }
    let mut advisor = match builder.build() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.partition {
        advisor.recommend_partitioned(&workload, true)
    } else {
        advisor.recommend(&workload)
    };
    let rec = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("# initial cost : {:.4e}", rec.outcome.initial_cost);
    println!("# best cost    : {:.4e}", rec.outcome.best_cost);
    println!("# rcr          : {:.4}", rec.rcr());
    println!(
        "# states       : {} created / {} duplicates / {} discarded",
        rec.outcome.stats.created, rec.outcome.stats.duplicates, rec.outcome.stats.discarded
    );
    if rec.outcome.stats.out_of_budget {
        println!("# WARNING: state budget exhausted; recommendation may be improvable");
    }
    println!("#\n# recommended views and rewritings:");
    print!("{}", state_to_string(&rec.outcome.best_state, db.dict()));
    if args.mode == ReasoningMode::PostReformulation {
        println!("#\n# materialization definitions (reformulated):");
        for (v, u) in rec.views.iter().zip(rec.materialization.iter()) {
            println!(
                "{}",
                rdfviews::query::display::ucq_to_string(&v.id.to_string(), u, db.dict())
            );
        }
    }

    if let Some(dir) = &args.save_dir {
        let dir = std::path::Path::new(dir);
        let durable = match advisor.deploy_durable(rec, dir) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let hash = match durable.deployment().content_hash(durable.dict()) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snapshot_bytes = std::fs::metadata(dir.join(rdfviews::exec::SNAPSHOT_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        println!(
            "#\n# saved deployment {:#x} to {}: {} views, snapshot {} bytes, wal {} bytes",
            durable.deployment().lineage(),
            dir.display(),
            durable.deployment().view_count(),
            snapshot_bytes,
            durable.wal_size(),
        );
        println!("# state hash   : {hash:032x}");
        return ExitCode::SUCCESS;
    }

    if args.query_mode {
        let mut deployment = match advisor.deploy(rec) {
            Ok(dep) => dep,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "#\n# deployed {} views; answering {} ad-hoc queries (policy: {:?})",
            deployment.view_count(),
            adhoc_queries.len(),
            args.policy
        );
        // --pin: answer every query from one generation pinned up front;
        // the deployment could keep absorbing maintenance batches while
        // these reads run, without perturbing the pinned answers.
        let pinned = args.pin.then(|| deployment.snapshot());
        if let Some(snap) = &pinned {
            println!("# pinned generation: store version {}", snap.version());
        }
        for (text, q) in &adhoc_queries {
            println!("#\n# query: {text}");
            let planned = match &pinned {
                Some(snap) => snap.plan_with(q, args.policy),
                None => deployment.plan_with(q, args.policy),
            };
            let plan = match planned {
                Ok(p) => p,
                Err(e) => {
                    println!("#   no plan: {e}");
                    continue;
                }
            };
            print!("{}", plan.describe(db.dict()));
            let outcome = match &pinned {
                Some(snap) => snap.answer_query_stats(&plan),
                None => deployment
                    .answer_query(&plan)
                    .map(|answers| (answers, deployment.last_eval_stats().to_vec())),
            };
            match outcome {
                Ok((answers, stats)) => {
                    println!("# answers: {}", answers.len());
                    for row in answers.tuples().iter().take(5) {
                        let rendered: Vec<String> = row
                            .iter()
                            .map(|&id| {
                                rdfviews::query::display::term_to_string(
                                    &rdfviews::query::QTerm::Const(id),
                                    db.dict(),
                                )
                            })
                            .collect();
                        println!("#   ({})", rendered.join(", "));
                    }
                    if answers.len() > 5 {
                        println!("#   … {} more", answers.len() - 5);
                    }
                    if args.stats {
                        for (i, s) in stats.iter().enumerate() {
                            println!(
                                "#   branch {i}: engine {}, {} leapfrog seeks, {} tuples emitted",
                                s.engine.as_str(),
                                s.lf_seeks,
                                s.lf_emitted
                            );
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    if args.materialize {
        let mut deployment = match advisor.deploy(rec) {
            Ok(dep) => dep,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (rows, cells) = (
            deployment.total_rows().expect("freshly deployed"),
            deployment.total_cells().expect("freshly deployed"),
        );
        println!(
            "#\n# deployed: {} views, {} rows, {} cells ({:.1}% of the triple table)",
            deployment.view_count(),
            rows,
            cells,
            100.0 * cells as f64 / (db.len() * 3).max(1) as f64
        );
    }
    ExitCode::SUCCESS
}
