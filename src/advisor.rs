//! The advisor session API — the crate's primary entry point.
//!
//! RDFViewS (Goasdoué et al., 2010) wraps the view-selection engine as a
//! long-lived tuning advisor; this module is that deployment story as an
//! API. An [`Advisor`] is built once per database via [`Advisor::builder`]
//! and prepares the expensive per-database artifacts — the saturated copy
//! of the store and the statistics catalog — exactly once. Every
//! [`Advisor::recommend`] call after that reuses them, only counting atom
//! shapes the catalog has never seen.
//!
//! ```
//! use rdfviews::prelude::*;
//! # use rdfviews::model::Term;
//!
//! let mut db = Dataset::new();
//! # for i in 0..20 {
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("p"), Term::uri(format!("o{}", i % 4)));
//! #   db.insert_terms(Term::uri(format!("s{i}")), Term::uri("q"), Term::uri("c"));
//! # }
//! let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut()).unwrap();
//!
//! let mut advisor = Advisor::builder(&db).build().unwrap();
//! let rec = advisor.recommend(&[q.query]).unwrap();
//! let mut deployment = advisor.deploy(rec).unwrap();
//! let answers = deployment.answer(0).unwrap();
//! assert_eq!(answers, rdfviews::engine::evaluate(db.store(), &deployment.recommendation().workload[0]));
//! ```

use std::time::Duration;

use rdf_model::{Dataset, Dictionary};
use rdf_query::parser::parse_workload;
use rdf_query::ConjunctiveQuery;
use rdf_schema::{Schema, VocabIds};
use rdfviews_core::{
    select_views_partitioned_session, select_views_session, CostWeights, Preparation,
    ReasoningMode, Recommendation, SelectionError, SelectionOptions, StrategyKind,
};

use crate::exec::{Deployment, DurableDeployment};

/// The advisor's dataset: borrowed for the classic read-only session, or
/// owned for the **writable-store mode** where the session itself holds
/// the data and hands out mutable access ([`Advisor::dataset_mut`]).
#[derive(Debug, Clone)]
enum AdvisorData<'a> {
    Borrowed(&'a Dataset),
    Owned(Box<Dataset>),
}

impl AdvisorData<'_> {
    fn get(&self) -> &Dataset {
        match self {
            AdvisorData::Borrowed(db) => db,
            AdvisorData::Owned(db) => db,
        }
    }
}

/// Configures and validates an [`Advisor`]. Created by
/// [`Advisor::builder`] (borrowed dataset) or [`Advisor::builder_owned`]
/// (writable-store mode); every setter is chainable and [`build`]
/// (`AdvisorBuilder::build`) performs the one-time per-database
/// preparation.
///
/// [`build`]: AdvisorBuilder::build
#[derive(Debug, Clone)]
pub struct AdvisorBuilder<'a> {
    db: AdvisorData<'a>,
    schema: Option<(&'a Schema, &'a VocabIds)>,
    options: SelectionOptions,
}

impl<'a> AdvisorBuilder<'a> {
    /// Attaches the RDF Schema (required for every reasoning mode except
    /// [`ReasoningMode::Plain`]).
    pub fn schema(mut self, schema: &'a Schema, vocab: &'a VocabIds) -> Self {
        self.schema = Some((schema, vocab));
        self
    }

    /// Sets how implicit triples participate (default:
    /// [`ReasoningMode::Plain`]).
    pub fn reasoning(mut self, mode: ReasoningMode) -> Self {
        self.options.reasoning = mode;
        self
    }

    /// Sets the cost weights (`cs`, `cr`, `cm`, `c1`, `c2`, `f`).
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.options.weights = weights;
        self
    }

    /// Auto-scales `cm` against the initial state (default: on, as the
    /// paper recommends).
    pub fn calibrate_cm(mut self, on: bool) -> Self {
        self.options.calibrate_cm = on;
        self
    }

    /// Sets the wall-clock budget per search.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.options.search.time_budget = Some(budget);
        self
    }

    /// Caps the number of created states per search.
    pub fn max_states(mut self, n: usize) -> Self {
        self.options.search.max_states = Some(n);
        self
    }

    /// Sets the search strategy (default: DFS, the paper's best scaling
    /// strategy).
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.options.search.strategy = strategy;
        self
    }

    /// Sets the number of explorer threads expanding one search's state
    /// space concurrently (default: 1, the sequential loop; 0 means one
    /// per available core). Parallel searches visit states in a different
    /// order but complete to the same reachable set, so a non-truncated
    /// run reports the same best cost at any setting. Under
    /// [`Advisor::recommend_partitioned`] the same budget also bounds the
    /// group scheduler's worker pool, split between concurrent groups and
    /// per-group explorers.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.options.search.parallelism = threads;
        self
    }

    /// Makes an exhausted search budget an error
    /// ([`SelectionError::BudgetExhausted`]) instead of a best-effort
    /// result (default: best-effort).
    pub fn strict_budget(mut self, on: bool) -> Self {
        self.options.fail_on_exhausted_budget = on;
        self
    }

    /// Replaces the whole option set (escape hatch for settings without a
    /// dedicated builder method).
    pub fn options(mut self, options: SelectionOptions) -> Self {
        self.options = options;
        self
    }

    /// Validates the configuration and runs the one-time per-database
    /// preparation: saturating the store (saturation mode) or deriving the
    /// saturated statistics (post-reformulation), plus the store-level
    /// catalog.
    ///
    /// Returns [`SelectionError::SchemaRequired`] when the reasoning mode
    /// needs a schema and none was attached.
    pub fn build(self) -> Result<Advisor<'a>, SelectionError> {
        let prep = Preparation::new(
            self.db.get().store(),
            self.db.get().dict(),
            self.schema,
            self.options.reasoning,
        )?;
        Ok(Advisor {
            db: self.db,
            schema: self.schema,
            options: self.options,
            prep,
            workload: Vec::new(),
        })
    }
}

/// An incremental change to an [`Advisor`]'s session workload, applied by
/// [`Advisor::recommend_incremental`].
#[derive(Debug, Clone)]
pub enum WorkloadChange {
    /// Appends a query to the session workload.
    Add(ConjunctiveQuery),
    /// Removes the query at this index from the session workload.
    Remove(usize),
}

/// A long-lived view-selection session over one database.
///
/// Building the advisor prepares the per-database artifacts once; every
/// recommendation after that reuses the cached saturated store and
/// statistics catalog instead of recomputing them per invocation (the
/// counters [`Advisor::stats_collections`] / [`Advisor::saturation_runs`]
/// make the reuse observable). All fallible paths return
/// [`SelectionError`] — nothing in the session API panics on
/// misconfiguration.
#[derive(Debug, Clone)]
pub struct Advisor<'a> {
    db: AdvisorData<'a>,
    schema: Option<(&'a Schema, &'a VocabIds)>,
    options: SelectionOptions,
    prep: Preparation,
    workload: Vec<ConjunctiveQuery>,
}

impl<'a> Advisor<'a> {
    /// Starts configuring an advisor for a borrowed `db` (the classic
    /// read-only session — the borrow itself guarantees the data cannot
    /// change underneath the preparation).
    pub fn builder(db: &'a Dataset) -> AdvisorBuilder<'a> {
        AdvisorBuilder {
            db: AdvisorData::Borrowed(db),
            schema: None,
            options: SelectionOptions::recommended(),
        }
    }

    /// Starts configuring an advisor that **owns** its dataset — the
    /// writable-store mode. The session hands out mutable access through
    /// [`Advisor::dataset_mut`]; once the store's version stamp moves past
    /// the prepared one, every recommendation entry point returns
    /// [`SelectionError::StaleSession`] (instead of silently computing on
    /// stale statistics) until [`Advisor::refresh`] re-prepares.
    pub fn builder_owned(db: Dataset) -> AdvisorBuilder<'a> {
        AdvisorBuilder {
            db: AdvisorData::Owned(Box::new(db)),
            schema: None,
            options: SelectionOptions::recommended(),
        }
    }

    /// The database this session advises.
    pub fn dataset(&self) -> &Dataset {
        self.db.get()
    }

    /// Mutable access to the session's dataset — the writable-store mode
    /// entry point, available only for advisors built with
    /// [`Advisor::builder_owned`] (`None` for borrowed sessions). Mutating
    /// the store makes the session stale: subsequent `recommend*` /
    /// `deploy` calls fail with [`SelectionError::StaleSession`] until
    /// [`Advisor::refresh`] runs.
    pub fn dataset_mut(&mut self) -> Option<&mut Dataset> {
        match &mut self.db {
            AdvisorData::Borrowed(_) => None,
            AdvisorData::Owned(db) => Some(db),
        }
    }

    /// Whether the store has changed since the session's preparation (the
    /// condition under which `recommend*` / `deploy` refuse to run).
    pub fn is_stale(&self) -> bool {
        self.prep.ensure_fresh(self.db.get().store()).is_err()
    }

    /// Re-runs the per-database preparation against the store's current
    /// contents — the recovery path from [`SelectionError::StaleSession`]
    /// after writable-store mutations. Saturation (or saturated
    /// statistics) is redone once; the warm-start cache is dropped, since
    /// its best state was optimized for data that changed.
    pub fn refresh(&mut self) -> Result<(), SelectionError> {
        let db = self.db.get();
        self.prep.refresh(db.store(), db.dict(), self.schema)
    }

    /// The reasoning mode the session was prepared for.
    pub fn reasoning(&self) -> ReasoningMode {
        self.prep.reasoning()
    }

    /// The effective selection options.
    pub fn options(&self) -> &SelectionOptions {
        &self.options
    }

    /// Changes the cost weights for subsequent recommendations. Weights
    /// only affect the cost model, never the cached statistics, so a
    /// weight sweep reuses the whole preparation.
    pub fn set_weights(&mut self, weights: CostWeights) {
        self.options.weights = weights;
    }

    /// Changes the `cm` auto-calibration for subsequent recommendations.
    pub fn set_calibrate_cm(&mut self, on: bool) {
        self.options.calibrate_cm = on;
    }

    /// Changes the search strategy for subsequent recommendations.
    pub fn set_strategy(&mut self, strategy: StrategyKind) {
        self.options.search.strategy = strategy;
    }

    /// Changes the explorer-thread count for subsequent recommendations
    /// (see [`AdvisorBuilder::parallelism`]).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.options.search.parallelism = threads;
    }

    /// Cumulative number of atom shapes counted against the store. Flat
    /// across calls whose workloads are already covered — the observable
    /// proof that the session skips statistics re-collection.
    pub fn stats_collections(&self) -> usize {
        self.prep.stats_collections()
    }

    /// How many times the store was saturated (at most once, at build
    /// time).
    pub fn saturation_runs(&self) -> usize {
        self.prep.saturation_runs()
    }

    /// Recommends views for `workload`, reusing the session's cached
    /// artifacts.
    pub fn recommend(
        &mut self,
        workload: &[ConjunctiveQuery],
    ) -> Result<Recommendation, SelectionError> {
        select_views_session(
            &mut self.prep,
            self.db.get().store(),
            self.schema,
            workload,
            &self.options,
        )
    }

    /// Recommends views per sharing group of `workload` (Section 8's
    /// parallelization direction), optionally on threads, still through
    /// the session's shared catalog.
    pub fn recommend_partitioned(
        &mut self,
        workload: &[ConjunctiveQuery],
        parallel: bool,
    ) -> Result<Recommendation, SelectionError> {
        select_views_partitioned_session(
            &mut self.prep,
            self.db.get().store(),
            self.schema,
            workload,
            &self.options,
            parallel,
        )
    }

    /// The session workload maintained by
    /// [`Advisor::recommend_incremental`].
    pub fn workload(&self) -> &[ConjunctiveQuery] {
        &self.workload
    }

    /// Applies one workload change and recommends for the updated session
    /// workload. The statistics of unchanged queries are already in the
    /// catalog, so only a genuinely new query costs collection work — and
    /// when the session has already searched (any earlier `recommend` /
    /// `recommend_incremental` call), the search itself **warm-starts**:
    /// the frontier is seeded from the previous best state's surviving
    /// views (plus the added query's initial view), so the ±1-delta
    /// search explores a small neighborhood of the previous optimum
    /// instead of the whole space and reports far fewer created states in
    /// its [`rdfviews_core::SearchStats`].
    ///
    /// The change only commits when the recommendation succeeds: after an
    /// `Err` the session workload is exactly what it was before, so a
    /// retry does not duplicate the added query.
    pub fn recommend_incremental(
        &mut self,
        change: WorkloadChange,
    ) -> Result<Recommendation, SelectionError> {
        let mut workload = self.workload.clone();
        match change {
            WorkloadChange::Add(q) => workload.push(q),
            WorkloadChange::Remove(idx) => {
                if idx >= workload.len() {
                    return Err(SelectionError::UnknownQuery {
                        index: idx,
                        len: workload.len(),
                    });
                }
                workload.remove(idx);
            }
        }
        let mut options = self.options.clone();
        options.warm_start = true;
        let rec = select_views_session(
            &mut self.prep,
            self.db.get().store(),
            self.schema,
            &workload,
            &options,
        )?;
        self.workload = workload;
        Ok(rec)
    }

    /// Bundles a recommendation with its materialized views and a
    /// maintenance base copy of the store — see [`Deployment`].
    ///
    /// In [`ReasoningMode::Saturation`] the views materialize over the
    /// session's cached saturated copy and the deployment carries the
    /// schema, keeping `insert`/`delete` entailment-aware; the
    /// reformulation modes materialize over the original store, which
    /// Theorem 4.2 makes equivalent.
    ///
    /// Fails with [`SelectionError::StaleSession`] when the store changed
    /// since preparation (writable-store mode) — a deployment built then
    /// would mix current data with a stale saturated copy and a
    /// recommendation tuned for data that no longer exists; call
    /// [`Advisor::refresh`] and re-recommend instead.
    pub fn deploy(&self, rec: Recommendation) -> Result<Deployment, SelectionError> {
        let db = self.db.get();
        self.prep.ensure_fresh(db.store())?;
        Ok(match (self.prep.saturated_store(), self.schema) {
            (Some(saturated), Some((schema, vocab))) => {
                Deployment::with_entailment(db.store(), saturated, rec, schema.clone(), *vocab)
            }
            (None, Some((schema, vocab))) if self.prep.reasoning().needs_schema() => {
                // Pre/post-reformulation: the base store is the original
                // (unsaturated) one, so ad-hoc hybrid plans must
                // reformulate before scanning it (Theorem 4.1).
                Deployment::new(db.store(), rec).with_query_reformulation(schema.clone(), *vocab)
            }
            _ => Deployment::new(db.store(), rec),
        })
    }

    /// [`Advisor::deploy`] plus durability: the deployment is persisted
    /// into `dir` (snapshot bundle + empty write-ahead log) together with
    /// a clone of the session dictionary, and returned as a
    /// [`DurableDeployment`] whose `insert_batch`/`delete_batch` are
    /// write-ahead logged. Reopen later with
    /// [`DurableDeployment::recover`].
    pub fn deploy_durable(
        &self,
        rec: Recommendation,
        dir: &std::path::Path,
    ) -> Result<DurableDeployment, SelectionError> {
        let dep = self.deploy(rec)?;
        DurableDeployment::create(dir, dep, self.db.get().dict().clone())
    }
}

/// Parses a newline-separated workload (the CLI/file format: one
/// `q(X) :- t(X, <p>, Y)` query per line) into conjunctive queries,
/// reporting failures as [`SelectionError::Parse`].
pub fn parse_workload_queries(
    text: &str,
    dict: &mut Dictionary,
) -> Result<Vec<ConjunctiveQuery>, SelectionError> {
    let parsed = parse_workload(text, dict)?;
    Ok(parsed.into_iter().map(|p| p.query).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Term;
    use rdf_query::parser::parse_query;

    fn db() -> Dataset {
        let mut db = Dataset::new();
        for i in 0..24 {
            let s = format!("s{i}");
            db.insert_terms(
                Term::uri(s.as_str()),
                Term::uri("p"),
                Term::uri(format!("o{}", i % 3)),
            );
            db.insert_terms(Term::uri(s.as_str()), Term::uri("q"), Term::uri("c"));
        }
        db
    }

    #[test]
    fn builder_rejects_missing_schema() {
        let db = db();
        let err = Advisor::builder(&db)
            .reasoning(ReasoningMode::Saturation)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SelectionError::SchemaRequired(ReasoningMode::Saturation)
        );
    }

    #[test]
    fn empty_workload_is_rejected() {
        let db = db();
        let mut advisor = Advisor::builder(&db).build().unwrap();
        assert_eq!(
            advisor.recommend(&[]).unwrap_err(),
            SelectionError::EmptyWorkload
        );
    }

    #[test]
    fn incremental_add_and_remove() {
        let mut db = db();
        let q0 = parse_query("q0(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        let q1 = parse_query("q1(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let mut advisor = Advisor::builder(&db).build().unwrap();
        let r0 = advisor
            .recommend_incremental(WorkloadChange::Add(q0.clone()))
            .unwrap();
        assert_eq!(r0.original_query_count(), 1);
        let r01 = advisor
            .recommend_incremental(WorkloadChange::Add(q1))
            .unwrap();
        assert_eq!(r01.original_query_count(), 2);
        let after_adds = advisor.stats_collections();
        // Removing q1 shrinks the workload; its stats stay cached, so no
        // new collection happens.
        let r0_again = advisor
            .recommend_incremental(WorkloadChange::Remove(1))
            .unwrap();
        assert_eq!(r0_again.original_query_count(), 1);
        assert_eq!(advisor.stats_collections(), after_adds);
        assert_eq!(r0_again.outcome.best_cost, r0.outcome.best_cost);
        // Out-of-range removal is an error and leaves the workload alone.
        assert_eq!(
            advisor
                .recommend_incremental(WorkloadChange::Remove(5))
                .unwrap_err(),
            SelectionError::UnknownQuery { index: 5, len: 1 }
        );
        assert_eq!(advisor.workload().len(), 1);
    }

    #[test]
    fn borrowed_sessions_have_no_writable_store() {
        let db = db();
        let mut advisor = Advisor::builder(&db).build().unwrap();
        assert!(advisor.dataset_mut().is_none());
        assert!(!advisor.is_stale());
    }

    #[test]
    fn writable_store_stales_every_entry_point_until_refresh() {
        let mut db = db();
        let q = parse_query("q(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query;
        let mut advisor = Advisor::builder_owned(db).build().unwrap();
        let rec = advisor.recommend(std::slice::from_ref(&q)).unwrap();
        assert!(!advisor.is_stale());

        // Writable-store mode: mutate the owned dataset.
        let writable = advisor.dataset_mut().expect("owned session is writable");
        let s = writable.dict_mut().intern_uri("late");
        let p = writable.dict().lookup_uri("p").unwrap();
        let o1 = writable.dict().lookup_uri("o1").unwrap();
        writable.store_mut().insert([s, p, o1]);
        assert!(advisor.is_stale());

        let stale = |e: &SelectionError| matches!(e, SelectionError::StaleSession { .. });
        assert!(stale(
            &advisor.recommend(std::slice::from_ref(&q)).unwrap_err()
        ));
        assert!(stale(
            &advisor
                .recommend_partitioned(std::slice::from_ref(&q), false)
                .unwrap_err()
        ));
        assert!(stale(
            &advisor
                .recommend_incremental(WorkloadChange::Add(q.clone()))
                .unwrap_err()
        ));
        assert!(
            advisor.workload().is_empty(),
            "failed incremental change must roll back"
        );
        assert!(stale(&advisor.deploy(rec).unwrap_err()));

        // refresh() re-prepares against the mutated store; everything
        // works again and sees the new triple.
        advisor.refresh().unwrap();
        assert!(!advisor.is_stale());
        let rec = advisor.recommend(std::slice::from_ref(&q)).unwrap();
        let mut deployment = advisor.deploy(rec).unwrap();
        let direct = rdf_engine::evaluate(
            advisor.dataset().store(),
            &deployment.recommendation().workload[0],
        );
        assert_eq!(deployment.answer(0).unwrap(), direct);
    }

    #[test]
    fn parse_workload_queries_reports_errors() {
        let mut dict = Dictionary::new();
        let ok = parse_workload_queries("q(X) :- t(X, <p>, Y)\n", &mut dict).unwrap();
        assert_eq!(ok.len(), 1);
        let err = parse_workload_queries("not a query", &mut dict).unwrap_err();
        assert!(matches!(err, SelectionError::Parse(_)));
    }
}
