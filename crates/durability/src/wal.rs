//! The write-ahead log: an append-only file of CRC-framed records.
//!
//! Layout (little-endian):
//!
//! ```text
//! header:      magic b"RDFVWAL\0" | format version u32      12 bytes
//! per record:  len u32 | payload | crc32(payload) u32
//! ```
//!
//! The append protocol is *frame, write, fsync, then apply in memory* —
//! a record is durable before its effects exist anywhere volatile.
//! Scanning stops at the first incomplete or checksum-failing frame and
//! reports it as a **torn tail**: everything before it is trusted,
//! everything from it on is dropped. Recovery treats a torn tail as the
//! expected signature of a crash mid-append, not an error.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::fsutil;
use crate::{DurabilityError, Result};

/// First bytes of every WAL file.
pub const MAGIC: [u8; 8] = *b"RDFVWAL\0";
/// The current WAL format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the file header in bytes.
pub const HEADER_LEN: u64 = 12;

fn header_bytes() -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(&MAGIC);
    h[8..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

/// One validated record returned by a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset of the record's frame within the file.
    pub offset: u64,
    /// The record payload (framing stripped, CRC verified).
    pub payload: Vec<u8>,
}

/// Result of scanning a WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Records with valid framing and checksums, in file order.
    pub records: Vec<WalRecord>,
    /// Length of the trusted prefix: header plus every valid frame. An
    /// appender reopening this WAL must truncate to this length first.
    pub valid_len: u64,
    /// Offset of the first torn/corrupt frame, if the file does not end
    /// cleanly on a record boundary.
    pub torn_tail: Option<u64>,
}

/// Scans WAL bytes, tolerating a torn tail.
///
/// An empty byte string is a valid empty log (a crash can leave the file
/// created but unwritten); a present-but-malformed *header* is corruption,
/// not a torn tail.
pub fn scan(bytes: &[u8]) -> Result<WalScan> {
    if bytes.is_empty() {
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: None,
        });
    }
    if bytes.len() < HEADER_LEN as usize {
        return Err(DurabilityError::corrupt("wal header truncated"));
    }
    if bytes[..8] != MAGIC {
        return Err(DurabilityError::corrupt("bad wal magic"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(DurabilityError::corrupt(format!(
            "unsupported wal format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn = None;
    while pos < bytes.len() {
        let frame_start = pos;
        if bytes.len() - pos < 4 {
            torn = Some(frame_start as u64);
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        pos += 4;
        if bytes.len() - pos < len + 4 {
            torn = Some(frame_start as u64);
            break;
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        let stored =
            u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        pos += 4;
        if crc32(payload) != stored {
            torn = Some(frame_start as u64);
            break;
        }
        records.push(WalRecord {
            offset: frame_start as u64,
            payload: payload.to_vec(),
        });
    }
    let valid_len = torn.unwrap_or(bytes.len() as u64);
    Ok(WalScan {
        records,
        valid_len,
        torn_tail: torn,
    })
}

/// Like [`scan`], but a torn tail is an error ([`DurabilityError::TornTail`]).
pub fn scan_strict(bytes: &[u8]) -> Result<Vec<WalRecord>> {
    let s = scan(bytes)?;
    match s.torn_tail {
        Some(offset) => Err(DurabilityError::TornTail { offset }),
        None => Ok(s.records),
    }
}

/// An open WAL file positioned for appending.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
}

impl WalWriter {
    /// Creates (or truncates) the WAL at `path` with a fresh header,
    /// fsync'd before returning.
    pub fn create(path: &Path) -> Result<Self> {
        let ctx = || format!("creating wal {}", path.display());
        let mut file = File::create(path).map_err(|e| DurabilityError::io(ctx(), e))?;
        file.write_all(&header_bytes())
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        file.sync_all().map_err(|e| DurabilityError::io(ctx(), e))?;
        if let Some(dir) = path.parent() {
            fsutil::sync_dir(dir)?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: HEADER_LEN,
        })
    }

    /// Reopens an existing WAL for appending after a scan, truncating any
    /// torn tail beyond `valid_len`. A `valid_len` below the header size
    /// (an empty or never-synced file) recreates the log from scratch.
    pub fn open_at(path: &Path, valid_len: u64) -> Result<Self> {
        if valid_len < HEADER_LEN {
            return Self::create(path);
        }
        let ctx = || format!("opening wal {}", path.display());
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        file.set_len(valid_len)
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        file.sync_all().map_err(|e| DurabilityError::io(ctx(), e))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            len: valid_len,
        })
    }

    /// Appends one record and fsyncs it. When this returns `Ok`, the
    /// record is durable — callers apply the in-memory effect only after.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let ctx = || format!("appending to wal {}", self.path.display());
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        self.file
            .write_all(&frame)
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        self.file
            .sync_data()
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Total file length in bytes (header included).
    pub fn size(&self) -> u64 {
        self.len
    }

    /// Truncates the log back to an empty header (used after a snapshot
    /// checkpoint absorbs every logged record).
    pub fn reset(&mut self) -> Result<()> {
        let ctx = || format!("resetting wal {}", self.path.display());
        self.file
            .set_len(HEADER_LEN)
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        use std::io::Seek;
        self.file
            .seek(std::io::SeekFrom::Start(HEADER_LEN))
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        self.file
            .sync_all()
            .map_err(|e| DurabilityError::io(ctx(), e))?;
        self.len = HEADER_LEN;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rdfviews_wal_test");
        fsutil::ensure_dir(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_scan_round_trip() {
        let path = tmp("basic.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"one").unwrap();
        w.append(b"").unwrap();
        w.append(&[0xAB; 300]).unwrap();
        let scan = scan(&fsutil::read_file(&path).unwrap()).unwrap();
        assert_eq!(scan.torn_tail, None);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].payload, b"one");
        assert_eq!(scan.records[1].payload, b"");
        assert_eq!(scan.records[2].payload, vec![0xAB; 300]);
        assert_eq!(scan.valid_len, w.size());
    }

    #[test]
    fn torn_tail_at_every_cut() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"first-record").unwrap();
        let boundary = w.size();
        w.append(b"second-record").unwrap();
        let bytes = fsutil::read_file(&path).unwrap();
        // Every truncation strictly inside the second frame drops exactly
        // that frame and keeps the first.
        for cut in boundary + 1..bytes.len() as u64 {
            let scan = scan(&bytes[..cut as usize]).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, boundary, "cut at {cut}");
            assert_eq!(scan.torn_tail, Some(boundary), "cut at {cut}");
        }
        // Exactly on the boundary: clean, one record.
        let clean = scan(&bytes[..boundary as usize]).unwrap();
        assert_eq!(clean.torn_tail, None);
        assert_eq!(clean.records.len(), 1);
    }

    #[test]
    fn corrupt_record_stops_scan() {
        let path = tmp("corrupt.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"good").unwrap();
        let first_end = w.size();
        w.append(b"evil").unwrap();
        let mut bytes = fsutil::read_file(&path).unwrap();
        let flip = first_end as usize + 5; // inside the second payload
        bytes[flip] ^= 0xFF;
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_tail, Some(first_end));
        assert!(matches!(
            scan_strict(&bytes),
            Err(DurabilityError::TornTail { offset }) if offset == first_end
        ));
    }

    #[test]
    fn reopen_truncates_torn_tail() {
        let path = tmp("reopen.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"keep-me").unwrap();
        let boundary = w.size();
        w.append(b"torn-away").unwrap();
        drop(w);
        // Simulate the crash: chop the last frame in half.
        let bytes = fsutil::read_file(&path).unwrap();
        std::fs::write(&path, &bytes[..boundary as usize + 3]).unwrap();
        let scan1 = scan(&fsutil::read_file(&path).unwrap()).unwrap();
        assert_eq!(scan1.torn_tail, Some(boundary));
        let mut w = WalWriter::open_at(&path, scan1.valid_len).unwrap();
        w.append(b"after-recovery").unwrap();
        let scan2 = scan(&fsutil::read_file(&path).unwrap()).unwrap();
        assert_eq!(scan2.torn_tail, None);
        assert_eq!(
            scan2
                .records
                .iter()
                .map(|r| r.payload.clone())
                .collect::<Vec<_>>(),
            vec![b"keep-me".to_vec(), b"after-recovery".to_vec()]
        );
    }

    #[test]
    fn empty_and_bad_headers() {
        assert_eq!(scan(&[]).unwrap().records.len(), 0);
        assert!(matches!(
            scan(&[1, 2, 3]),
            Err(DurabilityError::Corrupt { .. })
        ));
        let mut bad = header_bytes();
        bad[0] ^= 1;
        assert!(matches!(scan(&bad), Err(DurabilityError::Corrupt { .. })));
        let mut vers = header_bytes();
        vers[8] = 9;
        assert!(matches!(scan(&vers), Err(DurabilityError::Corrupt { .. })));
    }

    #[test]
    fn reset_empties_log() {
        let path = tmp("reset.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"soon-gone").unwrap();
        w.reset().unwrap();
        assert_eq!(w.size(), HEADER_LEN);
        let s1 = scan(&fsutil::read_file(&path).unwrap()).unwrap();
        assert!(s1.records.is_empty());
        assert_eq!(s1.torn_tail, None);
        w.append(b"fresh").unwrap();
        let s2 = scan(&fsutil::read_file(&path).unwrap()).unwrap();
        assert_eq!(s2.records.len(), 1);
    }
}
