//! Durability primitives for deployed view recommendations.
//!
//! The crate is deliberately domain-free: it knows nothing about triples,
//! views, or dictionaries. It provides the four layers the facade's
//! persistence module (`rdfviews::exec`) composes into durable deployments:
//!
//! * [`wire`] — a canonical little-endian codec. Every integer has a fixed
//!   width, every collection is length-prefixed, floats travel as IEEE-754
//!   bit patterns, so the same value always encodes to the same bytes.
//! * [`crc`] — CRC-32 (IEEE polynomial) for per-section and per-record
//!   corruption checks.
//! * [`hash`] — SipHash-2-4 with 128-bit output and explicit domain
//!   separation, used for whole-bundle integrity and for the semantic
//!   *state hash* that proves replay determinism.
//! * [`bundle`] / [`wal`] — the two on-disk artifacts: a versioned,
//!   section-framed snapshot bundle and a CRC-framed append-only log with
//!   torn-tail detection.
//!
//! Everything fallible returns [`DurabilityError`]; the crate never panics
//! on malformed input.

pub mod bundle;
pub mod crc;
pub mod fsutil;
pub mod hash;
pub mod wal;
pub mod wire;

/// Errors raised by the durability layer.
///
/// String payloads (rather than `std::io::Error` values) keep the type
/// `Clone + PartialEq`, which the facade's `SelectionError` requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An operating-system I/O failure, with the operation that failed.
    Io {
        /// What was being attempted (e.g. `"write snapshot /tmp/x"`).
        context: String,
        /// The OS error message.
        message: String,
    },
    /// A bundle or WAL failed structural validation: bad magic, unsupported
    /// format version, checksum mismatch, or inconsistent section contents.
    Corrupt {
        /// Human-readable description of the first defect found.
        detail: String,
    },
    /// The write-ahead log ends in an incomplete record at `offset`.
    ///
    /// Recovery treats this as a survivable condition (the tail is
    /// dropped); strict readers surface it as an error.
    TornTail {
        /// Byte offset of the first incomplete record.
        offset: u64,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io { context, message } => {
                write!(f, "i/o failure while {context}: {message}")
            }
            DurabilityError::Corrupt { detail } => write!(f, "corrupt artifact: {detail}"),
            DurabilityError::TornTail { offset } => {
                write!(f, "write-ahead log has a torn tail record at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl DurabilityError {
    /// Wraps an OS error with the operation being attempted.
    pub fn io(context: impl Into<String>, err: std::io::Error) -> Self {
        DurabilityError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// A structural-validation failure.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        DurabilityError::Corrupt {
            detail: detail.into(),
        }
    }
}

/// Shorthand for results in this crate.
pub type Result<T> = std::result::Result<T, DurabilityError>;
