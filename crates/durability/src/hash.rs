//! SipHash-2-4 with 128-bit output and domain separation.
//!
//! Snapshot bundles carry two content hashes with distinct domains: the
//! *bundle hash* (over the raw bundle bytes — detects corruption and
//! mixed-format artifacts) and the *state hash* (over the canonical
//! semantic sections only — the value replay recovery must reproduce
//! exactly). Domain separation guarantees the two can never be confused
//! for one another even over identical input bytes.
//!
//! SipHash is not collision-resistant against adversaries who know the
//! key; here it serves as a fast, well-distributed content fingerprint
//! for *accident* detection (bit rot, torn writes, version mixing), the
//! same role the CRC layer plays per-section.

/// Fixed keys: "rdfviews" / "durable!" as little-endian u64s. The hash is
/// a public content fingerprint, not a MAC, so the key is a constant.
const K0: u64 = u64::from_le_bytes(*b"rdfviews");
const K1: u64 = u64::from_le_bytes(*b"durable!");

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Streaming SipHash-2-4 producing a 128-bit digest.
#[derive(Debug, Clone)]
pub struct Hasher128 {
    v: [u64; 4],
    buf: [u8; 8],
    buf_len: usize,
    total: u64,
}

impl Hasher128 {
    /// A hasher keyed with the crate's fixed keys.
    pub fn new() -> Self {
        Self::keyed(K0, K1)
    }

    /// A hasher with explicit keys (used by the test vectors).
    pub fn keyed(k0: u64, k1: u64) -> Self {
        Hasher128 {
            v: [
                k0 ^ 0x736f_6d65_7073_6575,
                // 128-bit variant: v1 is additionally xored with 0xee.
                k1 ^ 0x646f_7261_6e64_6f6d ^ 0xee,
                k0 ^ 0x6c79_6765_6e65_7261,
                k1 ^ 0x7465_6462_7974_6573,
            ],
            buf: [0; 8],
            buf_len: 0,
            total: 0,
        }
    }

    /// A hasher whose input stream starts with the length-prefixed domain
    /// string — two hashers with different domains can never collide by
    /// concatenation tricks.
    pub fn with_domain(domain: &str) -> Self {
        let mut h = Self::new();
        h.update(&(domain.len() as u64).to_le_bytes());
        h.update(domain.as_bytes());
        h
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v[3] ^= m;
        sipround(&mut self.v);
        sipround(&mut self.v);
        self.v[0] ^= m;
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.buf_len > 0 {
            let need = 8 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 8 {
                let m = u64::from_le_bytes(self.buf);
                self.compress(m);
                self.buf_len = 0;
            }
        }
        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.compress(u64::from_le_bytes(word));
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Finalizes and returns the 128-bit digest (low half first).
    pub fn finish(mut self) -> u128 {
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = (self.total & 0xFF) as u8;
        self.compress(u64::from_le_bytes(last));

        self.v[2] ^= 0xee;
        for _ in 0..4 {
            sipround(&mut self.v);
        }
        let h1 = self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3];
        self.v[1] ^= 0xdd;
        for _ in 0..4 {
            sipround(&mut self.v);
        }
        let h2 = self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3];
        (h1 as u128) | ((h2 as u128) << 64)
    }
}

impl Default for Hasher128 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot domain-separated 128-bit hash.
pub fn hash128(domain: &str, data: &[u8]) -> u128 {
    let mut h = Hasher128::with_domain(domain);
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4-128 test vectors: key `0x0f0e...0100`, input
    /// the byte sequence `00 01 02 ...` of growing length.
    fn reference(input: &[u8]) -> u128 {
        let mut h = Hasher128::keyed(0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908);
        h.update(input);
        h.finish()
    }

    #[test]
    fn official_vectors() {
        assert_eq!(
            reference(&[]),
            u128::from_le_bytes([
                0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7, 0x55,
                0x02, 0x93
            ])
        );
        assert_eq!(
            reference(&[0x00]),
            u128::from_le_bytes([
                0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b, 0x22,
                0xfc, 0x45
            ])
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut h = Hasher128::with_domain("test");
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), hash128("test", &data));
    }

    #[test]
    fn domains_separate() {
        assert_ne!(hash128("a", b"payload"), hash128("b", b"payload"));
        // Concatenation cannot smuggle the domain into the data.
        assert_ne!(hash128("ab", b"cd"), hash128("abc", b"d"));
    }
}
