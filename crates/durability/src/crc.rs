//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Used for per-section checksums in snapshot bundles and per-record
//! framing in the write-ahead log. CRC catches the byte-flip and
//! truncation corruption these artifacts are exposed to; whole-artifact
//! integrity is additionally covered by the 128-bit bundle hash.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (initial value all-ones, final xor all-ones — the
/// standard zlib/PNG convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[3] ^= 0x40;
        assert_ne!(crc32(&data), clean);
    }
}
