//! Filesystem helpers with crash-safe semantics.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::{DurabilityError, Result};

/// Writes `bytes` to `path` atomically: a temporary sibling file is
/// written and fsync'd, renamed over the target, and the directory entry
/// is fsync'd. A crash at any point leaves either the old file or the new
/// one — never a partial mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        DurabilityError::corrupt(format!("invalid target path {}", path.display()))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let ctx = || format!("writing {}", path.display());
    let mut f = File::create(&tmp).map_err(|e| DurabilityError::io(ctx(), e))?;
    f.write_all(bytes)
        .map_err(|e| DurabilityError::io(ctx(), e))?;
    f.sync_all().map_err(|e| DurabilityError::io(ctx(), e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| DurabilityError::io(ctx(), e))?;
    if let Some(dir) = dir {
        sync_dir(dir)?;
    }
    Ok(())
}

/// fsyncs a directory so a just-renamed entry survives a crash. Best
/// effort on platforms where directories cannot be opened for sync.
pub fn sync_dir(dir: &Path) -> Result<()> {
    match File::open(dir) {
        Ok(f) => f
            .sync_all()
            .map_err(|e| DurabilityError::io(format!("syncing directory {}", dir.display()), e)),
        // Opening a directory read-only can fail on some platforms; the
        // rename itself is still atomic there.
        Err(_) => Ok(()),
    }
}

/// Reads a whole file, mapping failures to typed I/O errors.
pub fn read_file(path: &Path) -> Result<Vec<u8>> {
    fs::read(path).map_err(|e| DurabilityError::io(format!("reading {}", path.display()), e))
}

/// Creates a directory (and parents) if absent.
pub fn ensure_dir(path: &Path) -> Result<()> {
    fs::create_dir_all(path)
        .map_err(|e| DurabilityError::io(format!("creating directory {}", path.display()), e))
}

/// Opens a file for appending, creating it if needed.
pub fn open_append(path: &Path) -> Result<File> {
    OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .map_err(|e| DurabilityError::io(format!("opening {} for append", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_round_trips() {
        let dir = std::env::temp_dir().join("rdfviews_fsutil_test");
        ensure_dir(&dir).unwrap();
        let path = dir.join("blob.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_missing_is_typed_io() {
        let err = read_file(Path::new("/nonexistent/rdfviews/nope.bin")).unwrap_err();
        assert!(matches!(err, DurabilityError::Io { .. }));
    }
}
