//! A canonical little-endian wire codec.
//!
//! Canonical means: the same value always produces the same bytes. Fixed
//! integer widths, `u64` length prefixes for every variable-length field,
//! floats as IEEE-754 bit patterns. Callers are responsible for ordering
//! unordered collections (hash maps/sets) before encoding.

use crate::{DurabilityError, Result};

/// An append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` length.
    pub fn len_prefix(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes raw bytes with no framing.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_prefix(s.len());
        self.raw(s.as_bytes());
    }
}

/// A cursor-based decoder over a byte slice.
///
/// Every read is bounds-checked; running off the end or decoding invalid
/// UTF-8 yields a [`DurabilityError::Corrupt`] naming the offset.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed every byte.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless every byte was consumed — canonical decoding rejects
    /// trailing garbage.
    pub fn expect_exhausted(&self, what: &str) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(DurabilityError::corrupt(format!(
                "{what}: {} trailing bytes at offset {}",
                self.remaining(),
                self.pos
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DurabilityError::corrupt(format!(
                "{what}: need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self, what: &str) -> Result<u128> {
        let b = self.take(16, what)?;
        let mut w = [0u8; 16];
        w.copy_from_slice(b);
        Ok(u128::from_le_bytes(w))
    }

    /// Reads a `u64` length prefix, validating it fits the remaining bytes
    /// when each element occupies at least `min_elem_bytes`.
    pub fn len_prefix(&mut self, what: &str, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u64(what)?;
        let cap = self
            .remaining()
            .checked_div(min_elem_bytes)
            .map_or(u64::MAX, |c| c as u64);
        if n > cap {
            return Err(DurabilityError::corrupt(format!(
                "{what}: length {n} exceeds remaining input at offset {}",
                self.pos
            )));
        }
        Ok(n as usize)
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DurabilityError::corrupt(format!(
                "{what}: invalid bool byte {other} at offset {}",
                self.pos - 1
            ))),
        }
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<&'a str> {
        let n = self.len_prefix(what, 1)?;
        let bytes = self.take(n, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| DurabilityError::corrupt(format!("{what}: invalid utf-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.u128(1 << 100);
        w.f64(-0.5);
        w.bool(true);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.u128("d").unwrap(), 1 << 100);
        assert_eq!(r.f64("e").unwrap(), -0.5);
        assert!(r.bool("f").unwrap());
        assert_eq!(r.str("g").unwrap(), "héllo");
        r.expect_exhausted("trailer").unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(
            r.u64("field"),
            Err(DurabilityError::Corrupt { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.len_prefix("vec", 4),
            Err(DurabilityError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            r.bool("flag"),
            Err(DurabilityError::Corrupt { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u8("x").unwrap();
        assert!(matches!(
            r.expect_exhausted("payload"),
            Err(DurabilityError::Corrupt { .. })
        ));
    }
}
