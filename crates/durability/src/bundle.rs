//! The snapshot bundle: a versioned, section-framed, content-hashed
//! container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            b"RDFVSNAP"                      8 bytes
//! format version   u32 (currently 1)
//! section count    u32
//! per section:     tag u32 | len u64 | payload | crc32(payload) u32
//! trailer:         bundle hash u128 over every preceding byte,
//!                  domain "rdfviews.bundle.v1"
//! ```
//!
//! Validation order on load: magic → format version → trailer hash →
//! per-section CRC → section framing. A bundle produced by a different
//! format version fails before any section is interpreted, so mixed
//! versions are a load-time [`DurabilityError::Corrupt`], never a
//! query-time surprise.

use crate::crc::crc32;
use crate::hash::hash128;
use crate::wire::{Reader, Writer};
use crate::{DurabilityError, Result};

/// First bytes of every snapshot bundle.
pub const MAGIC: [u8; 8] = *b"RDFVSNAP";
/// The current bundle format version.
pub const FORMAT_VERSION: u32 = 1;
/// Domain string for the whole-bundle trailer hash.
pub const BUNDLE_DOMAIN: &str = "rdfviews.bundle.v1";

/// Encodes tagged sections into a complete bundle with per-section CRCs
/// and the trailing bundle hash.
pub fn encode(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(sections.len() as u32);
    for (tag, payload) in sections {
        w.u32(*tag);
        w.len_prefix(payload.len());
        w.raw(payload);
        w.u32(crc32(payload));
    }
    let mut bytes = w.into_bytes();
    let hash = hash128(BUNDLE_DOMAIN, &bytes);
    bytes.extend_from_slice(&hash.to_le_bytes());
    bytes
}

/// Decodes and fully validates a bundle, returning its sections in file
/// order.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u32, Vec<u8>)>> {
    if bytes.len() < MAGIC.len() + 4 + 4 + 16 {
        return Err(DurabilityError::corrupt(format!(
            "bundle too short ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(DurabilityError::corrupt("bad bundle magic"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 16);
    let mut want = [0u8; 16];
    want.copy_from_slice(trailer);
    let want = u128::from_le_bytes(want);
    if hash128(BUNDLE_DOMAIN, body) != want {
        return Err(DurabilityError::corrupt("bundle hash mismatch"));
    }

    let mut r = Reader::new(body);
    r.raw(MAGIC.len(), "magic")?;
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(DurabilityError::corrupt(format!(
            "unsupported bundle format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let count = r.u32("section count")?;
    let mut sections = Vec::with_capacity(count as usize);
    for i in 0..count {
        let tag = r.u32("section tag")?;
        let len = r.len_prefix("section length", 1)?;
        let payload = r.raw(len, "section payload")?;
        let stored_crc = r.u32("section crc")?;
        if crc32(payload) != stored_crc {
            return Err(DurabilityError::corrupt(format!(
                "section {i} (tag {tag}) checksum mismatch"
            )));
        }
        sections.push((tag, payload.to_vec()));
    }
    r.expect_exhausted("bundle body")?;
    Ok(sections)
}

/// The trailer hash of an encoded bundle, without full validation.
pub fn trailer_hash(bytes: &[u8]) -> Result<u128> {
    if bytes.len() < 16 {
        return Err(DurabilityError::corrupt("bundle too short for trailer"));
    }
    let mut want = [0u8; 16];
    want.copy_from_slice(&bytes[bytes.len() - 16..]);
    Ok(u128::from_le_bytes(want))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u32, Vec<u8>)> {
        vec![(1, b"alpha".to_vec()), (2, vec![]), (7, vec![0xFF; 100])]
    }

    #[test]
    fn round_trip() {
        let bytes = encode(&sample());
        assert_eq!(decode(&bytes).unwrap(), sample());
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let clean = encode(&sample());
        for pos in 0..clean.len() {
            let mut bad = clean.clone();
            bad[pos] ^= 0x01;
            assert!(decode(&bad).is_err(), "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let clean = encode(&sample());
        for cut in 0..clean.len() {
            assert!(decode(&clean[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn version_mixing_is_detected_before_sections() {
        let mut w = Writer::new();
        w.raw(&MAGIC);
        w.u32(FORMAT_VERSION + 1);
        w.u32(0);
        let mut bytes = w.into_bytes();
        let hash = hash128(BUNDLE_DOMAIN, &bytes);
        bytes.extend_from_slice(&hash.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt { detail } if detail.contains("version")));
    }
}
