//! **Ablation** (beyond the paper's figures): does the VMC estimate
//! `f^len(v)` rank views by real maintenance effort?
//!
//! The paper models view maintenance as `VMCǫ = Σ_v f^len(v)` with a
//! user-chosen fan-out factor `f` (Section 3.3), deliberately ignoring the
//! real statistics. This bench materializes views of 1–4 atoms, feeds the
//! store a stream of insertions through the incremental maintenance engine
//! (`rdf-engine::maintain`), and compares measured delta work against the
//! `f^len` ranking — validating the model's monotonicity (more atoms ⇒
//! more maintenance work per insertion).

use rdfviews::engine::maintain::MaintainedView;
use rdfviews::model::Triple;
use rdfviews::query::ConjunctiveQuery;
use rdfviews::workload::{
    generate_matching_data, generate_workload, Commonality, Shape, WorkloadSpec,
};
use rdfviews_bench::Table;

fn main() {
    println!("== VMC ablation: estimated f^len vs measured maintenance work ==\n");
    let f: f64 = std::env::var("RDFVIEWS_VMC_F")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    // One chain query per length; its initial view is the whole query.
    let mut db = rdfviews::model::Dataset::new();
    let mut specs: Vec<(usize, ConjunctiveQuery)> = Vec::new();
    for atoms in 1..=4usize {
        let mut spec = WorkloadSpec::new(1, atoms, Shape::Chain, Commonality::Low)
            .with_seed(77 + atoms as u64);
        spec.property_pool = 6; // shared vocabulary across lengths
        spec.object_const_prob = 0.0;
        let q = generate_workload(&spec, db.dict_mut()).remove(0);
        specs.push((atoms, q));
    }
    let (mut dict, mut store) = db.into_parts();
    let data_spec = {
        let mut s = WorkloadSpec::new(1, 4, Shape::Chain, Commonality::Low).with_seed(77);
        s.property_pool = 6;
        s
    };
    generate_matching_data(&data_spec, &mut dict, &mut store, 4_000);

    // The update stream: 300 fresh triples over the same vocabulary.
    let mut feed_store = rdfviews::model::TripleStore::new();
    let feed_spec = {
        let mut s = data_spec.clone();
        s.seed = 0xfeed;
        s
    };
    generate_matching_data(&feed_spec, &mut dict, &mut feed_store, 300);
    let feed: Vec<Triple> = feed_store
        .triples()
        .iter()
        .copied()
        .filter(|t| !store.contains(*t))
        .collect();

    let table = Table::new(
        &[
            "len(v)",
            "f^len",
            "initial rows",
            "delta tuples",
            "rows added",
            "per-insert",
        ],
        &[7, 8, 12, 12, 10, 10],
    );
    let mut measured: Vec<(usize, f64)> = Vec::new();
    for (atoms, q) in &specs {
        let mut view = MaintainedView::new(&store, q.clone());
        let initial = view.len();
        let mut working = store.clone();
        let mut delta = 0usize;
        let mut added = 0usize;
        for &t in &feed {
            working.insert(t);
            let s = view.apply_insert(&working, t);
            delta += s.delta_tuples;
            added += s.added;
        }
        let per_insert = delta as f64 / feed.len().max(1) as f64;
        table.row(&[
            &atoms.to_string(),
            &format!("{:.0}", f.powi(*atoms as i32)),
            &initial.to_string(),
            &delta.to_string(),
            &added.to_string(),
            &format!("{per_insert:.2}"),
        ]);
        measured.push((*atoms, per_insert));
    }
    // Check the ranking the cost model relies on.
    let monotone = measured.windows(2).all(|w| w[1].1 >= w[0].1 * 0.5);
    println!(
        "\nf^len ranking vs measured per-insert delta work: {}",
        if monotone {
            "consistent ✓ (longer views cost more to maintain)"
        } else {
            "inverted for this data — tune f per workload as the paper suggests"
        }
    );
}
