//! Snapshot-read throughput: pinned wait-free readers vs the old
//! refuse-and-replan discipline.
//!
//! Deploys a recommendation over a synthetic store, then measures
//! workload-query reads per second through [`SnapshotReader`] pins at 1, 4
//! and 8 reader threads — once on a quiescent deployment and once while a
//! writer thread continuously applies insert/delete maintenance batches
//! (each publishing a new generation). The baseline is the pre-snapshot
//! contract, strict mode: every maintenance batch stales the plan, so each
//! read pays a `StaleSession` refusal plus a re-plan before it can answer.
//!
//! Parity is asserted before anything is timed: snapshot answers equal
//! direct base-store evaluation and the deployment's own `answer()` path.
//! Every timed reader iteration must return a non-empty answer set and
//! never a `StaleSession` (readers pin published generations only).
//!
//! Smoke mode (`RDFVIEWS_SMOKE=1` or `--smoke`) shrinks the store and the
//! measurement windows so CI finishes fast; the parity and no-refusal
//! assertions still run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use std::time::Instant;

use rdfviews::engine::evaluate;
use rdfviews::model::{Id, Triple};
use rdfviews::prelude::*;

/// Every `BENCH_snapshot_read.json` field the CI validation step reads by
/// name (xlint X007 cross-checks these literals against
/// `.github/workflows/ci.yml`); the pre-emit assertion keeps the manifest
/// honest at runtime.
const CI_VALIDATED_FIELDS: &[&str] = &[
    "parity_ok",
    "readers_per_sec_1_solo",
    "readers_per_sec_4_solo",
    "readers_per_sec_8_solo",
    "readers_per_sec_1_writer",
    "readers_per_sec_4_writer",
    "readers_per_sec_8_writer",
    "baseline_refuse_replan_qps",
    "writer_batches_applied",
];

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Base data: `base` subjects with `(s_i, p, o_{i%4})` and `(s_i, q, c)`
/// (never touched by the writer, so reads stay non-empty), plus a pool of
/// prepared insert batches over fresh subjects for the writer to cycle.
fn build(base: usize, batches: usize, batch_len: usize) -> (Dataset, Vec<Vec<Triple>>) {
    let mut db = Dataset::new();
    let p = db.dict_mut().intern_uri("p");
    let q = db.dict_mut().intern_uri("q");
    let c = db.dict_mut().intern_uri("c");
    let objs: Vec<Id> = (0..4)
        .map(|k| db.dict_mut().intern_uri(&format!("o{k}")))
        .collect();
    for i in 0..base {
        let s = db.dict_mut().intern_uri(&format!("s{i}"));
        db.store_mut().insert([s, p, objs[i % 4]]);
        db.store_mut().insert([s, q, c]);
    }
    let mut rng = 0x5eed_f00d_u64;
    let mut feed = Vec::with_capacity(batches);
    let mut fresh = 0usize;
    for _ in 0..batches {
        let mut batch = Vec::with_capacity(2 * batch_len);
        for _ in 0..batch_len {
            let s = db.dict_mut().intern_uri(&format!("x{fresh}"));
            fresh += 1;
            batch.push([s, p, objs[(lcg(&mut rng) % 4) as usize]]);
            batch.push([s, q, c]);
        }
        feed.push(batch);
    }
    (db, feed)
}

/// Measures pinned-snapshot reads/sec at `readers` threads over `secs`
/// seconds of wall clock. With `writer_feed`, the calling thread doubles
/// as a writer cycling insert/delete maintenance batches the whole time;
/// returns (reads per second, batches applied).
fn measure_readers(
    dep: &mut Deployment,
    readers: usize,
    writer_feed: Option<&[Vec<Triple>]>,
    secs: f64,
) -> (f64, u64) {
    let reader = dep.reader();
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let mut batches_applied = 0u64;
    let t0 = Instant::now();
    thread::scope(|scope| {
        for _ in 0..readers {
            scope.spawn(|| {
                let mut local = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snap = reader.snapshot();
                    let answers = snap.answer(0).expect("pinned read must never be refused");
                    assert!(!answers.is_empty(), "base subjects keep q0 non-empty");
                    local += 1;
                }
                total.fetch_add(local, Ordering::AcqRel);
            });
        }
        if let Some(feed) = writer_feed {
            let mut i = 0usize;
            while t0.elapsed().as_secs_f64() < secs {
                let batch = &feed[(i / 2) % feed.len()];
                if i % 2 == 0 {
                    dep.insert_batch(batch);
                } else {
                    dep.delete_batch(batch);
                }
                batches_applied += 1;
                i += 1;
            }
            // Leave the store at its base contents for the next config.
            if i % 2 == 1 {
                dep.delete_batch(&feed[(i / 2) % feed.len()]);
                batches_applied += 1;
            }
        } else {
            while t0.elapsed().as_secs_f64() < secs {
                thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        stop.store(true, Ordering::Release);
    });
    let elapsed = t0.elapsed().as_secs_f64();
    (
        total.load(Ordering::Acquire) as f64 / elapsed,
        batches_applied,
    )
}

/// The pre-snapshot discipline, measured single-threaded in strict mode:
/// every batch stales the current plan, so each answered query costs a
/// `StaleSession` refusal plus a re-plan plus the answer itself.
fn baseline_refuse_replan(dep: &mut Deployment, feed: &[Vec<Triple>], secs: f64) -> f64 {
    dep.set_strict(true);
    let mut plan = dep.plan_workload(0).expect("workload plan");
    let t0 = Instant::now();
    let mut cycles = 0u64;
    let mut i = 0usize;
    while t0.elapsed().as_secs_f64() < secs {
        let batch = &feed[(i / 2) % feed.len()];
        if i % 2 == 0 {
            dep.insert_batch(batch);
        } else {
            dep.delete_batch(batch);
        }
        i += 1;
        match dep.answer_query(&plan) {
            Err(SelectionError::StaleSession { .. }) => {
                plan = dep.plan_workload(0).expect("re-plan after refusal");
                let answers = dep.answer_query(&plan).expect("fresh plan answers");
                assert!(!answers.is_empty());
            }
            Ok(_) => panic!("strict mode must refuse a plan staled by a maintenance batch"),
            Err(e) => panic!("strict baseline hit an unexpected error: {e}"),
        }
        cycles += 1;
    }
    if i % 2 == 1 {
        dep.delete_batch(&feed[(i / 2) % feed.len()]);
    }
    dep.set_strict(false);
    cycles as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::var("RDFVIEWS_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (base, window_secs) = if smoke { (1_000, 0.12) } else { (20_000, 0.6) };
    let (mut db, feed) = build(base, 8, 16);
    let workload = vec![
        parse_query("q1(X) :- t(X, <p>, <o1>), t(X, <q>, <c>)", db.dict_mut())
            .unwrap()
            .query,
        parse_query("q2(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query,
    ];
    let mut advisor = Advisor::builder(&db)
        .budget(std::time::Duration::from_secs(2))
        .build()
        .unwrap();
    let rec = advisor.recommend(&workload).unwrap();
    let mut dep = advisor.deploy(rec).unwrap();
    println!(
        "# snapshot_read: {} triples, {} views, {} writer batches of {} triples{}",
        dep.store().len(),
        dep.view_count(),
        feed.len(),
        feed[0].len(),
        if smoke { " [smoke]" } else { "" },
    );

    // -- Parity before timing: snapshot == direct evaluation == answer(). -
    let snap = dep.snapshot();
    for (qi, q) in workload.iter().enumerate() {
        let direct = evaluate(db.store(), q);
        assert_eq!(snap.answer(qi).unwrap(), direct, "q{qi}: snapshot parity");
        assert_eq!(dep.answer(qi).unwrap(), direct, "q{qi}: answer() parity");
    }
    drop(snap);
    println!("# parity: pinned snapshot == direct evaluation on every workload query ✓");

    let mut metrics: Vec<(String, f64)> = vec![("parity_ok".to_string(), 1.0)];
    let mut writer_batches_total = 0u64;
    for readers in [1usize, 4, 8] {
        let (solo, _) = measure_readers(&mut dep, readers, None, window_secs);
        let (contended, applied) = measure_readers(&mut dep, readers, Some(&feed), window_secs);
        writer_batches_total += applied;
        assert!(solo > 0.0 && contended > 0.0, "readers must make progress");
        println!(
            "# {readers} reader(s): {solo:.0} reads/s solo, {contended:.0} reads/s with a live writer ({applied} batches)",
        );
        metrics.push((format!("readers_per_sec_{readers}_solo"), solo));
        metrics.push((format!("readers_per_sec_{readers}_writer"), contended));
    }
    assert!(
        writer_batches_total > 0,
        "the writer must publish generations"
    );

    let baseline = baseline_refuse_replan(&mut dep, &feed, window_secs);
    assert!(baseline > 0.0);
    println!("# baseline (strict refuse-and-replan, single thread): {baseline:.0} queries/s");
    metrics.push(("baseline_refuse_replan_qps".to_string(), baseline));
    metrics.push((
        "writer_batches_applied".to_string(),
        writer_batches_total as f64,
    ));

    for field in CI_VALIDATED_FIELDS {
        assert!(
            metrics.iter().any(|(k, _)| k == field),
            "summary is missing CI-validated field {field:?}"
        );
    }
    let rendered: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    rdfviews_bench::emit_bench_json("snapshot_read", &rendered);
}
