//! Durability: snapshot write/open, WAL append, and replay recovery.
//!
//! Measures the three durable-deployment paths on a chain workload:
//!
//! 1. **Snapshot** — `persist` (atomic bundle write) and `open` (full
//!    validation: trailer hash, per-section CRCs, framing) wall-clock and
//!    bundle size.
//! 2. **WAL append** — logged `insert_batch` throughput (every record is
//!    fsync'd before the in-memory apply, so this is dominated by the
//!    sync) vs the same batches applied without durability.
//! 3. **Replay** — `DurableDeployment::recover` (snapshot load + WAL
//!    replay through the set-at-a-time maintenance path), asserting the
//!    recovered content hash equals the live deployment's — the
//!    determinism contract, checked on every bench run.
//!
//! Smoke mode (`RDFVIEWS_SMOKE=1` or `--smoke`) shrinks the data so CI
//! finishes fast; the parity assertions still run. Emits
//! `BENCH_recovery.json`.

use std::time::Instant;

use rdfviews::model::Triple;
use rdfviews::prelude::*;
use rdfviews::workload::{generate_matching_data, generate_workload, Commonality, Shape};
use rdfviews_bench::{emit_bench_json, Table};

fn time_it(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::var("RDFVIEWS_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (data_triples, feed_triples, batch) = if smoke {
        (1_500usize, 240usize, 24usize)
    } else {
        (6_000, 2_048, 64)
    };
    let dir = std::env::temp_dir().join(format!("rdfviews-recovery-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // -- Dataset, workload, deployment. -----------------------------------
    let mut db = Dataset::new();
    let spec = rdfviews::workload::WorkloadSpec::new(3, 4, Shape::Chain, Commonality::High);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, data_triples);
    let db = Dataset::from_parts(dict, store);

    let mut advisor = Advisor::builder(&db).build().expect("plain advisor");
    let rec = advisor.recommend(&workload).expect("recommendation");
    let baseline = advisor.deploy(rec.clone()).expect("fresh session deploys");

    // The update feed (fresh triples over the same vocabulary).
    let feed: Vec<Triple> = {
        let mut feed_store = rdfviews::model::TripleStore::new();
        let mut feed_spec = spec.clone();
        feed_spec.seed = 0xfeed;
        let mut dict = db.dict().clone();
        generate_matching_data(&feed_spec, &mut dict, &mut feed_store, feed_triples);
        feed_store
            .triples()
            .iter()
            .copied()
            .filter(|t| !baseline.store().contains(*t))
            .collect()
    };
    println!(
        "# recovery: {} base triples, {} views, {}-triple feed in batches of {batch}{}",
        db.len(),
        baseline.view_count(),
        feed.len(),
        if smoke { " [smoke]" } else { "" },
    );

    // -- Section 1: snapshot write / open. --------------------------------
    let mut durable = advisor
        .deploy_durable(rec, &dir)
        .expect("fresh session deploys durably")
        // Compaction timing is measured separately below.
        .with_compact_threshold(u64::MAX);
    let snapshot_bytes = std::fs::metadata(dir.join(rdfviews::exec::SNAPSHOT_FILE))
        .map(|m| m.len())
        .unwrap_or(0);
    let t_persist = time_it(|| {
        durable.checkpoint().expect("checkpoint");
    });
    let t_open = time_it(|| {
        Deployment::open(&dir).expect("open");
    });

    // -- Section 2: WAL append throughput vs in-memory apply. -------------
    let mut in_memory = baseline;
    let t_memory = time_it(|| {
        for chunk in feed.chunks(batch) {
            in_memory.insert_batch(chunk);
        }
    });
    let mut records = 0usize;
    let t_logged = time_it(|| {
        for chunk in feed.chunks(batch) {
            durable.insert_batch(chunk).expect("logged insert");
            records += 1;
        }
    });
    let wal_bytes = durable.wal_size();
    let live_hash = durable
        .deployment()
        .content_hash(durable.dict())
        .expect("fresh");
    drop(durable); // the process "crashes" here

    // -- Section 3: replay recovery. --------------------------------------
    let mut recovered_hash = 0u128;
    let mut replayed = 0usize;
    let t_recover = time_it(|| {
        let (handle, report) = DurableDeployment::recover(&dir).expect("recover");
        recovered_hash = report.state_hash;
        replayed = report.records_replayed;
        drop(handle);
    });
    assert_eq!(replayed, records, "every logged record must replay");
    assert_eq!(
        recovered_hash, live_hash,
        "replay must reproduce the live deployment bit-for-bit"
    );

    let table = Table::new(&["path", "wall (s)", "throughput"], &[16, 10, 24]);
    table.row(&[
        "snapshot write",
        &format!("{t_persist:.4}"),
        &format!(
            "{:.1} MB/s",
            snapshot_bytes as f64 / 1e6 / t_persist.max(1e-9)
        ),
    ]);
    table.row(&[
        "snapshot open",
        &format!("{t_open:.4}"),
        &format!("{:.1} MB/s", snapshot_bytes as f64 / 1e6 / t_open.max(1e-9)),
    ]);
    table.row(&[
        "wal append",
        &format!("{t_logged:.4}"),
        &format!("{:.0} rec/s (fsync'd)", records as f64 / t_logged.max(1e-9)),
    ]);
    table.row(&[
        "in-memory apply",
        &format!("{t_memory:.4}"),
        &format!("{:.0} batch/s", records as f64 / t_memory.max(1e-9)),
    ]);
    table.row(&[
        "replay recover",
        &format!("{t_recover:.4}"),
        &format!("{:.0} rec/s", replayed as f64 / t_recover.max(1e-9)),
    ]);

    emit_bench_json(
        "recovery",
        &[
            ("snapshot_write_s", t_persist),
            ("snapshot_open_s", t_open),
            ("snapshot_bytes", snapshot_bytes as f64),
            ("wal_append_s", t_logged),
            ("wal_bytes", wal_bytes as f64),
            ("wal_records", records as f64),
            ("in_memory_apply_s", t_memory),
            ("replay_s", t_recover),
            ("replayed_records", replayed as f64),
        ],
    );
    println!("\n# recovered state hash equals the live deployment's ✓");
    std::fs::remove_dir_all(&dir).ok();
}
