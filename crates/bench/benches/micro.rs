//! Criterion micro-benchmarks for the core operations: store pattern
//! matching, saturation, reformulation, canonicalization, transition
//! application, cardinality estimation and query evaluation. After the
//! run, every recorded mean lands in `BENCH_micro.json` (metric name =
//! bench name with `/` replaced by `_`, value = mean ns/iter) so CI can
//! trend the micro costs alongside the experiment benches.

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;

use rdfviews::core::transitions::{apply, enumerate, TransitionConfig, TransitionKind};
use rdfviews::core::{CostModel, CostWeights, State};
use rdfviews::engine::evaluate;
use rdfviews::model::StorePattern;
use rdfviews::query::canonical::{canonical_form, HeadMode};
use rdfviews::reform::reformulate;
use rdfviews::schema::saturated_copy;
use rdfviews::stats::collect_stats;
use rdfviews::workload::{
    generate_barton, generate_satisfiable, BartonSpec, SatisfiableSpec, Shape,
};
use rdfviews_bench::free_workload;

fn bench_store(c: &mut Criterion) {
    let data = generate_barton(&BartonSpec::default().with_size(2_000, 20_000));
    let p = data.properties[0];
    let ty = data.vocab.rdf_type;
    c.bench_function("store/match_count_p", |b| {
        b.iter(|| {
            black_box(
                data.db
                    .store()
                    .match_count(&StorePattern::with_p(black_box(p))),
            )
        })
    });
    c.bench_function("store/matching_po", |b| {
        b.iter(|| {
            black_box(
                data.db
                    .store()
                    .matching(&StorePattern::with_po(ty, data.classes[0])),
            )
        })
    });
}

fn bench_saturation(c: &mut Criterion) {
    let data = generate_barton(&BartonSpec::default().with_size(1_000, 10_000));
    c.bench_function("schema/saturate_10k", |b| {
        b.iter_batched(
            || data.db.store().clone(),
            |store| black_box(saturated_copy(&store, &data.schema, &data.vocab)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_reformulate(c: &mut Criterion) {
    let data = generate_barton(&BartonSpec::tiny());
    let qs = generate_satisfiable(&data.db, &SatisfiableSpec::new(1, 4, Shape::Star));
    c.bench_function("reform/star4_barton_schema", |b| {
        b.iter(|| black_box(reformulate(&qs[0], &data.schema, &data.vocab)))
    });
}

fn bench_canonical(c: &mut Criterion) {
    let bench = free_workload(
        rdfviews::workload::Shape::Star,
        rdfviews::workload::Commonality::Low,
        1,
        10,
        3,
        0.3,
        100,
    );
    let q = &bench.workload[0];
    c.bench_function("canonical/star10", |b| {
        b.iter(|| black_box(canonical_form(q, HeadMode::Sorted)))
    });
}

fn bench_transitions(c: &mut Criterion) {
    let bench = free_workload(
        rdfviews::workload::Shape::Chain,
        rdfviews::workload::Commonality::High,
        2,
        6,
        5,
        0.3,
        500,
    );
    let s0 = State::initial(&bench.workload);
    let cfg = TransitionConfig::default();
    c.bench_function("transitions/enumerate_all", |b| {
        b.iter(|| {
            for kind in TransitionKind::ALL {
                black_box(enumerate(&s0, kind, &cfg));
            }
        })
    });
    let sc = enumerate(&s0, TransitionKind::Sc, &cfg).remove(0);
    c.bench_function("transitions/apply_sc", |b| {
        b.iter(|| black_box(apply(&s0, &sc)))
    });
    c.bench_function("state/signature", |b| b.iter(|| black_box(s0.signature())));
}

fn bench_cost(c: &mut Criterion) {
    let bench = free_workload(
        rdfviews::workload::Shape::Mixed,
        rdfviews::workload::Commonality::High,
        5,
        8,
        9,
        0.2,
        2_000,
    );
    let cat = collect_stats(bench.db.store(), bench.db.dict(), &bench.workload);
    let model = CostModel::new(&cat, CostWeights::default());
    let s0 = State::initial(&bench.workload);
    c.bench_function("cost/breakdown_5q", |b| {
        b.iter(|| black_box(model.breakdown(&s0)))
    });
}

fn bench_evaluate(c: &mut Criterion) {
    let data = generate_barton(&BartonSpec::default().with_size(2_000, 20_000));
    let qs = generate_satisfiable(&data.db, &SatisfiableSpec::new(1, 3, Shape::Chain));
    c.bench_function("engine/chain3_20k", |b| {
        b.iter(|| black_box(evaluate(data.db.store(), &qs[0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_store, bench_saturation, bench_reformulate, bench_canonical,
              bench_transitions, bench_cost, bench_evaluate
}
fn main() {
    benches();
    let measurements = criterion::take_measurements();
    let named: Vec<(String, f64)> = measurements
        .into_iter()
        .map(|(name, ns)| (format!("{}_ns", name.replace('/', "_")), ns))
        .collect();
    let metrics: Vec<(&str, f64)> = named.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    rdfviews_bench::emit_bench_json("micro", &metrics);
}
