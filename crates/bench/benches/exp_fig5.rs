//! **Figure 5** — impact of the AVF and STV heuristics on the search
//! space.
//!
//! Paper setup: a tiny workload of 2 queries × 4 atoms (star, low
//! commonality), DFS strategy, four heuristic combinations: NONE, AVF,
//! STV, AVF-STV; all runs complete and reach the same best state.
//! The plot reports created / duplicate / discarded / explored state
//! counts.
//!
//! Paper findings to reproduce: duplicates are a large fraction without
//! heuristics; AVF reduces created states while preserving the optimum;
//! STV discards many states and trims every counter; AVF-STV is marginally
//! better than STV.

use rdfviews::core::StrategyKind;
use rdfviews::workload::{Commonality, Shape};
use rdfviews_bench::{env_secs, env_usize, free_workload, run_strategy, Table};

fn main() {
    let budget = env_secs("RDFVIEWS_BUDGET_SECS", 120);
    let max_states = env_usize("RDFVIEWS_MAX_STATES", 20_000_000);
    // Default to 3-atom queries so that all four configurations complete
    // within the bench budget (the paper's 4-atom variant explores ~9M
    // states; set RDFVIEWS_FIG5_ATOMS=4 to run it in full).
    let atoms = env_usize("RDFVIEWS_FIG5_ATOMS", 3);
    println!("== Figure 5: heuristics' impact on the search (DFS, 2 queries × {atoms} atoms) ==\n");

    let bench = free_workload(Shape::Star, Commonality::Low, 2, atoms, 7, 0.3, 2_000);
    let table = Table::new(
        &[
            "heuristics",
            "created",
            "duplicates",
            "discarded",
            "explored",
            "best cost",
        ],
        &[10, 10, 10, 10, 10, 12],
    );
    let mut best_costs: Vec<f64> = Vec::new();
    for (name, avf, stv) in [
        ("NONE", false, false),
        ("AVF", true, false),
        ("STV", false, true),
        ("AVF-STV", true, true),
    ] {
        let out = run_strategy(&bench, StrategyKind::Dfs, avf, stv, budget, max_states);
        table.row(&[
            name,
            &out.stats.created.to_string(),
            &out.stats.duplicates.to_string(),
            &out.stats.discarded.to_string(),
            &out.stats.explored.to_string(),
            &format!("{:.1}", out.best_cost),
        ]);
        if !out.stats.timed_out && !out.stats.out_of_budget {
            best_costs.push(out.best_cost);
        }
    }
    println!();
    if best_costs.len() >= 2 {
        let same = best_costs
            .iter()
            .all(|c| (c - best_costs[0]).abs() <= 1e-6 * best_costs[0].abs().max(1.0));
        println!(
            "completed runs reach the same best state: {}",
            if same {
                "yes ✓ (AVF preserves optimality; STV preserved quality here)"
            } else {
                "no"
            }
        );
    }
    println!(
        "expected shape: created(NONE) > created(AVF), created(STV) ≫ created(AVF-STV) is\n\
         marginal; duplicates are plentiful; STV discards a significant share."
    );
}
