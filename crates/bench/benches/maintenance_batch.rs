//! Set-at-a-time maintenance: delta-set joins vs the per-triple delta rule.
//!
//! The paper's VMC term prices the delta tuples each view gains per
//! update. This bench deploys a recommendation, then streams the same
//! insertion + deletion feed through `Deployment::insert_batch` /
//! `delete_batch` at batch sizes 1 / 32 / 1024. Batch size 1 *is* the
//! classic per-triple delta rule (the wrappers are delegates), so the
//! comparison is apples-to-apples on one code path. Two contracts are
//! asserted at every size:
//!
//! 1. **identical final view tables** — every workload answer and the
//!    total row/cell counts match the per-triple run;
//! 2. **no extra work** — batched `delta_tuples` ≤ per-triple
//!    `delta_tuples` (the delta-set join dedups tuples derivable from
//!    several batch triples), and `batches` counts exactly one
//!    maintenance pass per chunk.
//!
//! Smoke mode (`RDFVIEWS_SMOKE=1` or `--smoke`) shrinks the data so CI
//! finishes in a fraction of a second; the assertions still run.

use std::time::Instant;

use rdfviews::exec::Deployment;
use rdfviews::model::Triple;
use rdfviews::prelude::*;
use rdfviews_bench::Table;

/// One full feed run at a given batch size: insert phase then a deletion
/// phase retracting every third triple.
struct RunResult {
    insert: MaintenanceStats,
    delete: MaintenanceStats,
    wall: f64,
    answers: Vec<Answers>,
    total_rows: usize,
    total_cells: usize,
}

fn run_at(
    pristine: &Deployment,
    feed: &[Triple],
    retractions: &[Triple],
    size: usize,
    query_count: usize,
) -> RunResult {
    let mut dep = pristine.clone();
    let t0 = Instant::now();
    let mut insert = MaintenanceStats::default();
    for chunk in feed.chunks(size) {
        insert.merge(dep.insert_batch(chunk));
    }
    let mut delete = MaintenanceStats::default();
    for chunk in retractions.chunks(size) {
        delete.merge(dep.delete_batch(chunk));
    }
    let wall = t0.elapsed().as_secs_f64();
    let answers = (0..query_count)
        .map(|qi| dep.answer(qi).expect("maintained deployment answers"))
        .collect();
    RunResult {
        insert,
        delete,
        wall,
        total_rows: dep.total_rows().expect("fresh"),
        total_cells: dep.total_cells().expect("fresh"),
        answers,
    }
}

fn main() {
    let smoke = std::env::var("RDFVIEWS_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (data_triples, feed_triples) = if smoke { (1_500, 300) } else { (6_000, 2_048) };

    // -- Dataset, workload, recommendation, pristine deployment. ----------
    let mut db = Dataset::new();
    let spec = rdfviews::workload::WorkloadSpec::new(3, 4, Shape::Chain, Commonality::High);
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    rdfviews::workload::generate_matching_data(&spec, &mut dict, &mut store, data_triples);
    let db = Dataset::from_parts(dict, store);

    let mut advisor = Advisor::builder(&db).build().expect("plain advisor");
    let rec = advisor.recommend(&workload).expect("recommendation");
    let pristine = advisor.deploy(rec).expect("fresh session deploys");
    println!(
        "# maintenance_batch: {} base triples, {} views, {} workload queries{}",
        db.len(),
        pristine.view_count(),
        workload.len(),
        if smoke { " [smoke]" } else { "" },
    );

    // -- The update feed (fresh triples over the same vocabulary). --------
    let feed: Vec<Triple> = {
        let mut feed_store = rdfviews::model::TripleStore::new();
        let mut feed_spec = spec.clone();
        feed_spec.seed = 0xfeed;
        let mut dict = db.dict().clone();
        rdfviews::workload::generate_matching_data(
            &feed_spec,
            &mut dict,
            &mut feed_store,
            feed_triples,
        );
        feed_store
            .triples()
            .iter()
            .copied()
            .filter(|t| !pristine.store().contains(*t))
            .collect()
    };
    let retractions: Vec<Triple> = feed.iter().copied().step_by(3).collect();
    println!(
        "# feed: {} insertions, then {} retractions\n",
        feed.len(),
        retractions.len()
    );

    let table = Table::new(
        &[
            "batch",
            "wall (s)",
            "ins Δ-tuples",
            "del Δ-tuples",
            "passes",
            "speedup",
        ],
        &[6, 9, 13, 13, 7, 7],
    );
    let mut summary: Vec<(String, f64)> = Vec::new();
    let mut baseline: Option<RunResult> = None;
    for &size in &[1usize, 32, 1024] {
        let run = run_at(&pristine, &feed, &retractions, size, workload.len());
        let expected_passes = feed.len().div_ceil(size) + retractions.len().div_ceil(size);
        assert_eq!(
            run.insert.batches + run.delete.batches,
            expected_passes,
            "one maintenance pass per chunk at batch size {size}"
        );
        let speedup = match &baseline {
            None => 1.0,
            Some(base) => {
                // Contract 1: identical final view tables at every size.
                assert_eq!(run.answers, base.answers, "answers diverged at {size}");
                assert_eq!(run.total_rows, base.total_rows);
                assert_eq!(run.total_cells, base.total_cells);
                // Contract 2: the delta-set join never does more work
                // than the per-triple rule.
                assert!(
                    run.insert.delta_tuples <= base.insert.delta_tuples,
                    "insert Δ at {size}: {} vs per-triple {}",
                    run.insert.delta_tuples,
                    base.insert.delta_tuples
                );
                assert!(
                    run.delete.delta_tuples <= base.delete.delta_tuples,
                    "delete Δ at {size}: {} vs per-triple {}",
                    run.delete.delta_tuples,
                    base.delete.delta_tuples
                );
                assert_eq!(run.insert.added, base.insert.added);
                assert_eq!(run.delete.removed, base.delete.removed);
                base.wall / run.wall.max(1e-9)
            }
        };
        table.row(&[
            &size.to_string(),
            &format!("{:.3}", run.wall),
            &run.insert.delta_tuples.to_string(),
            &run.delete.delta_tuples.to_string(),
            &(run.insert.batches + run.delete.batches).to_string(),
            &format!("{speedup:.2}x"),
        ]);
        summary.push((format!("wall_batch{size}_s"), run.wall));
        summary.push((
            format!("delta_tuples_batch{size}"),
            (run.insert.delta_tuples + run.delete.delta_tuples) as f64,
        ));
        if baseline.is_none() {
            baseline = Some(run);
        }
    }
    summary.push(("feed_triples".to_string(), feed.len() as f64));
    let metrics: Vec<(&str, f64)> = summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    rdfviews_bench::emit_bench_json("maintenance_batch", &metrics);
    println!("\n# batched and per-triple maintenance converge to identical views ✓");
}
