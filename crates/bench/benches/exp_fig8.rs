//! **Figure 8** — execution times for queries with RDFS reasoning.
//!
//! Paper setup: the 5 queries of Q1 evaluated against six configurations —
//! (a) views from pre-reformulation, (b) views from post-reformulation,
//! (c) the saturated triple table, (d) a restricted triple table with only
//! the triples needed by Q1, (e) RDF-3X over the saturated data, (f) the
//! initial state (materialized query results).
//!
//! Substitutions (documented in DESIGN.md §5): PostgreSQL's clustered
//! triple table → our scan-only evaluator; RDF-3X → our index-backed
//! evaluator on the fully (sextuple-)indexed saturated store.
//!
//! Paper findings to reproduce: views beat the triple table by an order of
//! magnitude or more; pre- and post-reformulation views perform in the
//! same range as the reference engine; the initial state (a single scan)
//! is fastest.

use std::time::{Duration, Instant};

use rdfviews::core::{select_views, ReasoningMode, SearchConfig, SelectionOptions};
use rdfviews::engine::{evaluate_with, EvalOptions};
use rdfviews::exec::{materialize_recommendation, materialize_state, try_answer_original_query};
use rdfviews::model::{StorePattern, TripleStore};
use rdfviews::schema::saturated_copy;
use rdfviews_bench::{env_secs, env_usize, reform_bench_selective, Table};

/// Median-of-N wall-clock measurement.
fn time_it(mut f: impl FnMut()) -> Duration {
    let runs = 5;
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort();
    samples[runs / 2]
}

fn main() {
    let budget = env_secs("RDFVIEWS_BUDGET_SECS", 4);
    let triples = env_usize("RDFVIEWS_FIG8_TRIPLES", 40_000);
    let rb = reform_bench_selective(triples / 10, triples);
    println!(
        "== Figure 8: execution times with RDFS (dataset {} triples) ==\n",
        rb.data.db.len()
    );

    let saturated = saturated_copy(rb.data.db.store(), &rb.data.schema, &rb.data.vocab);
    println!(
        "saturated store: {} triples (+{:.1}%)",
        saturated.len(),
        100.0 * (saturated.len() - rb.data.db.len()) as f64 / rb.data.db.len() as f64
    );

    // Restricted triple table: only the triples matched by some Q1 atom
    // (constants only), on the saturated store.
    let mut restricted = TripleStore::new();
    for q in &rb.q1 {
        for atom in &q.atoms {
            let [s, p, o] = atom.terms();
            let pat = StorePattern::new(s.as_const(), p.as_const(), o.as_const());
            saturated.for_each_match(&pat, |t| {
                restricted.insert(t);
            });
        }
    }
    println!("restricted store: {} triples", restricted.len());

    // Recommendations + materialized views for both reformulation modes.
    let opts = |mode| SelectionOptions {
        reasoning: mode,
        calibrate_cm: true,
        search: SearchConfig {
            time_budget: Some(budget),
            ..SearchConfig::default()
        },
        ..Default::default()
    };
    let t0 = Instant::now();
    let rec_post = select_views(
        rb.data.db.store(),
        rb.data.db.dict(),
        Some((&rb.data.schema, &rb.data.vocab)),
        &rb.q1,
        &opts(ReasoningMode::PostReformulation),
    );
    let mv_post = materialize_recommendation(rb.data.db.store(), &rec_post);
    println!(
        "post-reformulation: {} views / {} cells materialized in {:.2}s ({:.1}% of base)",
        mv_post.len(),
        mv_post.total_cells(),
        t0.elapsed().as_secs_f64(),
        100.0 * mv_post.total_cells() as f64 / (rb.data.db.len() * 3) as f64
    );
    let t0 = Instant::now();
    let rec_pre = select_views(
        rb.data.db.store(),
        rb.data.db.dict(),
        Some((&rb.data.schema, &rb.data.vocab)),
        &rb.q1,
        &opts(ReasoningMode::PreReformulation),
    );
    let mv_pre = materialize_recommendation(rb.data.db.store(), &rec_pre);
    println!(
        "pre-reformulation : {} views / {} cells materialized in {:.2}s ({:.1}% of base)",
        mv_pre.len(),
        mv_pre.total_cells(),
        t0.elapsed().as_secs_f64(),
        100.0 * mv_pre.total_cells() as f64 / (rb.data.db.len() * 3) as f64
    );

    // Initial state: materialize the (reformulated) query results
    // themselves — a plain scan at query time.
    let rec_init = select_views(
        rb.data.db.store(),
        rb.data.db.dict(),
        Some((&rb.data.schema, &rb.data.vocab)),
        &rb.q1,
        &SelectionOptions {
            reasoning: ReasoningMode::PostReformulation,
            calibrate_cm: true,
            search: SearchConfig {
                time_budget: Some(Duration::from_secs(0)), // keep S0
                ..SearchConfig::default()
            },
            ..Default::default()
        },
    );
    let mv_init = materialize_recommendation(rb.data.db.store(), &rec_init);
    let _ = materialize_state; // alternative entry point, used in tests

    println!();
    let table = Table::new(
        &[
            "query",
            "pre-views",
            "post-views",
            "sat-tt",
            "restr-tt",
            "reference",
            "initial",
        ],
        &[6, 11, 11, 11, 11, 11, 11],
    );
    let scan_only = EvalOptions::scan_baseline();
    let indexed = EvalOptions::default();
    for (qi, q) in rb.q1.iter().enumerate() {
        let nq = q.normalized();
        // Correctness first: all configurations agree.
        let truth = evaluate_with(&saturated, &nq, &indexed);
        assert_eq!(
            try_answer_original_query(&rec_post, &mv_post, qi).unwrap(),
            truth
        );
        assert_eq!(
            try_answer_original_query(&rec_pre, &mv_pre, qi).unwrap(),
            truth
        );
        assert_eq!(
            try_answer_original_query(&rec_init, &mv_init, qi).unwrap(),
            truth
        );
        assert_eq!(evaluate_with(&restricted, &nq, &indexed), truth);

        let t_pre = time_it(|| {
            let _ = try_answer_original_query(&rec_pre, &mv_pre, qi);
        });
        let t_post = time_it(|| {
            let _ = try_answer_original_query(&rec_post, &mv_post, qi);
        });
        let t_sat = time_it(|| {
            evaluate_with(&saturated, &nq, &scan_only);
        });
        let t_restr = time_it(|| {
            evaluate_with(&restricted, &nq, &scan_only);
        });
        let t_ref = time_it(|| {
            evaluate_with(&saturated, &nq, &indexed);
        });
        let t_init = time_it(|| {
            let _ = try_answer_original_query(&rec_init, &mv_init, qi);
        });
        table.row(&[
            &format!("Q1.{}", qi + 1),
            &format!("{t_pre:.1?}"),
            &format!("{t_post:.1?}"),
            &format!("{t_sat:.1?}"),
            &format!("{t_restr:.1?}"),
            &format!("{t_ref:.1?}"),
            &format!("{t_init:.1?}"),
        ]);
    }
    println!(
        "\nexpected shape: views ≫ faster than the scanned triple table (even restricted);\n\
         views in the same range as the index-backed reference; initial state fastest."
    );
}
