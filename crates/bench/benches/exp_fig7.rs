//! **Figure 7** — search for view sets using reformulation: best cost
//! found over time, pre-reformulation vs post-reformulation, workloads Q1
//! (5 queries) and Q2 (10 queries, Q1 ⊆ Q2).
//!
//! Paper findings to reproduce: the pre-reformulated workload's initial
//! state costs more; post-reformulation's best cost decreases much faster
//! (smaller workload ⇒ smaller space) and ends lower (paper: 2.7× for Q1,
//! 22× for Q2); the gap widens with workload size.

use rdfviews::core::{select_views, ReasoningMode, SearchConfig, SelectionOptions};
use rdfviews_bench::{env_secs, env_usize, reform_bench, Table};

fn main() {
    let budget = env_secs("RDFVIEWS_BUDGET_SECS", 4);
    let triples = env_usize("RDFVIEWS_FIG8_TRIPLES", 40_000);
    let rb = reform_bench(triples / 10, triples);
    println!("== Figure 7: pre- vs post-reformulation search (budget {budget:?}) ==\n");

    for (name, queries) in [("Q1", &rb.q1), ("Q2", &rb.q2)] {
        println!("--- workload {name} ({} queries) ---", queries.len());
        let table = Table::new(
            &[
                "mode",
                "|workload|",
                "initial cost",
                "best cost",
                "t(best) s",
                "improvements",
            ],
            &[8, 10, 14, 14, 10, 12],
        );
        let mut finals: Vec<f64> = Vec::new();
        for (mode_name, mode) in [
            ("pre", ReasoningMode::PreReformulation),
            ("post", ReasoningMode::PostReformulation),
        ] {
            let rec = select_views(
                rb.data.db.store(),
                rb.data.db.dict(),
                Some((&rb.data.schema, &rb.data.vocab)),
                queries,
                &SelectionOptions {
                    reasoning: mode,
                    calibrate_cm: true,
                    search: SearchConfig {
                        time_budget: Some(budget),
                        ..SearchConfig::default()
                    },
                    ..Default::default()
                },
            );
            let trace = &rec.outcome.stats.best_cost_trace;
            let t_best = trace.last().map_or(0.0, |p| p.0);
            table.row(&[
                mode_name,
                &rec.workload.len().to_string(),
                &format!("{:.3e}", rec.outcome.initial_cost),
                &format!("{:.3e}", rec.outcome.best_cost),
                &format!("{t_best:.2}"),
                &(trace.len() - 1).to_string(),
            ]);
            finals.push(rec.outcome.best_cost);
            // Print the cost-over-time series (the figure's curve).
            let pts: Vec<String> = trace
                .iter()
                .map(|(t, c)| format!("({t:.2}s, {c:.3e})"))
                .collect();
            println!("  {mode_name} trace: {}", pts.join(" "));
        }
        if finals.len() == 2 && finals[1] > 0.0 {
            println!(
                "  best-cost ratio pre/post: {:.2}  (paper: 2.7 for Q1, 22 for Q2)\n",
                finals[0] / finals[1]
            );
        }
    }
    println!("expected shape: post ≤ pre everywhere; the gap grows with the workload.");
}
