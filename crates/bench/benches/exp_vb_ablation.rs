//! **Ablation** (beyond the paper's figures): sensitivity of the search to
//! the View Break overlap limit.
//!
//! Full VB enumeration is `3^n` per view (every pair of connected,
//! incomparable node covers). DESIGN.md caps the cover overlap at
//! `vb_overlap_limit` nodes (default 1, matching the paper's Figure 1
//! example which overlaps on a single node). This bench quantifies what
//! the cap costs: best cost found and states created at limits 0 / 1 / 2
//! under the same time budget.

use rdfviews::core::{search, CostModel, CostWeights, SearchConfig, State, StrategyKind};
use rdfviews::stats::collect_stats;
use rdfviews::workload::{Commonality, Shape};
use rdfviews_bench::{env_secs, free_workload, Table};

fn main() {
    let budget = env_secs("RDFVIEWS_BUDGET_SECS", 3);
    println!("== VB ablation: overlap limit vs search quality (DFS-AVF-STV, {budget:?}) ==\n");

    for (shape, comm) in [
        (Shape::Chain, Commonality::High),
        (Shape::Star, Commonality::Low),
    ] {
        println!(
            "--- {} / {:?} (3 queries × 6 atoms) ---",
            shape.name(),
            comm
        );
        let bench = free_workload(shape, comm, 3, 6, 11, 0.1, 6_000);
        let cat = collect_stats(bench.db.store(), bench.db.dict(), &bench.workload);
        let mut model = CostModel::new(&cat, CostWeights::default());
        model.calibrate_cm(&State::initial(&bench.workload));
        let table = Table::new(
            &["overlap", "rcr", "best cost", "created", "explored"],
            &[8, 8, 14, 10, 10],
        );
        for limit in [0usize, 1, 2] {
            let out = search(
                State::initial(&bench.workload),
                &model,
                &SearchConfig {
                    strategy: StrategyKind::Dfs,
                    vb_overlap_limit: limit,
                    time_budget: Some(budget),
                    ..SearchConfig::default()
                },
            );
            table.row(&[
                &limit.to_string(),
                &format!("{:.3}", out.rcr()),
                &format!("{:.3e}", out.best_cost),
                &out.stats.created.to_string(),
                &out.stats.explored.to_string(),
            ]);
        }
        println!();
    }
    println!(
        "expected shape: limit 1 ≈ limit 2 in quality (overlapping breaks are rarely\n\
         the only path to a good state) while limit 0 can miss factorizations that\n\
         need a shared middle atom."
    );
}
