//! Join throughput of the compiled index-native core at million-triple
//! scale.
//!
//! Builds a synthetic store of 1M+ triples (deterministic LCG, fixed
//! fan-out), then runs a fixed set of join shapes — chains, stars,
//! anchored variants with constants, an intra-atom repeated variable and a
//! view-mixed delta join — under three engines:
//!
//! * **compiled** — the default index-native core (flat frames, direct
//!   index-range iteration, adaptive per-depth ordering, pooled scratch);
//! * **legacy** — the pre-compiled collect-per-node core this PR replaced
//!   (`EvalOptions::legacy_indexed`), the speedup reference;
//! * **scan** — the full-scan Figure-8 baseline
//!   (`EvalOptions::scan_baseline`), used for answer parity, on the full
//!   store where tractable and on a prefix store everywhere.
//!
//! Every engine must produce identical answers before anything is timed.
//! The view-mixed section additionally asserts the delta table's resident
//! hash indexes are built once across the whole timed loop.
//!
//! Smoke mode (`RDFVIEWS_SMOKE=1` or `--smoke`) shrinks the store so CI
//! finishes fast; the parity and index-reuse assertions still run. With
//! `RDFVIEWS_ENFORCE_FLOOR=1` (set by CI) the bench fails if compiled
//! throughput drops below a conservative committed floor.

use std::time::Instant;

use rdfviews::engine::{
    evaluate_mixed, evaluate_with, EvalOptions, MixedAtom, ViewAtom, ViewTable,
};
use rdfviews::model::{Id, Triple, TripleStore};
use rdfviews::query::{Atom, ConjunctiveQuery, QTerm, Var};
use rdfviews_bench::Table;

/// Conservative throughput floors (answer tuples per second, compiled
/// core, debug-free release build). Measured at ~20x below the reference
/// machine so only a genuine regression — not scheduler noise — trips
/// them.
const FLOOR_FULL_TPS: f64 = 100_000.0;
const FLOOR_SMOKE_TPS: f64 = 50_000.0;

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn synth_triples(n: usize, subjects: u64, predicates: u64) -> Vec<Triple> {
    let mut rng = 0x5eed_u64;
    let mut batch = Vec::with_capacity(n);
    for _ in 0..n {
        let s = Id((lcg(&mut rng) % subjects) as u32);
        let p = Id(1_000_000 + (lcg(&mut rng) % predicates) as u32);
        let o = Id((lcg(&mut rng) % subjects) as u32);
        batch.push([s, p, o]);
    }
    batch
}

struct Case {
    name: &'static str,
    query: ConjunctiveQuery,
    /// Whether the full-scan baseline is tractable on the full store (it
    /// re-scans everything at every recursion node, so only queries that
    /// fan out from a constant qualify at 1M scale).
    scan_on_full: bool,
}

fn cases(anchor: Id) -> Vec<Case> {
    let var = |v: u32| QTerm::Var(Var(v));
    let p = |i: u32| QTerm::Const(Id(1_000_000 + i));
    vec![
        Case {
            name: "single_p",
            query: ConjunctiveQuery::new(vec![var(0), var(1)], vec![Atom([var(0), p(0), var(1)])]),
            scan_on_full: true,
        },
        Case {
            name: "chain2",
            query: ConjunctiveQuery::new(
                vec![var(0), var(2)],
                vec![Atom([var(0), p(0), var(1)]), Atom([var(1), p(1), var(2)])],
            ),
            scan_on_full: false,
        },
        Case {
            name: "chain3",
            query: ConjunctiveQuery::new(
                vec![var(0), var(3)],
                vec![
                    Atom([var(0), p(0), var(1)]),
                    Atom([var(1), p(1), var(2)]),
                    Atom([var(2), p(2), var(3)]),
                ],
            ),
            scan_on_full: false,
        },
        Case {
            name: "star2",
            query: ConjunctiveQuery::new(
                vec![var(0), var(1), var(2)],
                vec![Atom([var(0), p(0), var(1)]), Atom([var(0), p(1), var(2)])],
            ),
            scan_on_full: false,
        },
        Case {
            name: "anchored_chain2",
            query: ConjunctiveQuery::new(
                vec![var(1), var(2)],
                vec![
                    Atom([QTerm::Const(anchor), p(0), var(1)]),
                    Atom([var(1), p(1), var(2)]),
                ],
            ),
            scan_on_full: true,
        },
        Case {
            name: "self_loop",
            query: ConjunctiveQuery::new(vec![var(0)], vec![Atom([var(0), p(0), var(0)])]),
            scan_on_full: true,
        },
    ]
}

/// Times `runs` evaluations, returning (wall seconds, answers of one run).
fn time_engine(
    store: &TripleStore,
    q: &ConjunctiveQuery,
    opts: &EvalOptions,
    runs: usize,
) -> (f64, usize) {
    let mut tuples = 0;
    let t0 = Instant::now();
    for _ in 0..runs {
        tuples = evaluate_with(store, q, opts).len();
    }
    (t0.elapsed().as_secs_f64(), tuples)
}

fn main() {
    let smoke = std::env::var("RDFVIEWS_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (n, subjects, runs) = if smoke {
        (60_000, 6_000, 2)
    } else {
        (1_200_000, 100_000, 3)
    };
    let predicates = 16;

    let batch = synth_triples(n, subjects, predicates);
    let mut store = TripleStore::new();
    store.insert_batch(&batch);
    println!(
        "# join_throughput: {} stored triples ({} subjects, {} predicates){}",
        store.len(),
        subjects,
        predicates,
        if smoke { " [smoke]" } else { "" },
    );
    assert!(
        smoke || store.len() >= 1_000_000,
        "full mode must exercise at least one million stored triples"
    );

    // A prefix store keeps the full-scan baseline tractable for the
    // unanchored joins (it pays a full scan per recursion node).
    let prefix_n = if smoke { store.len() } else { 50_000 };
    let mut prefix = TripleStore::new();
    prefix.insert_batch(&batch[..prefix_n.min(batch.len())]);

    let compiled = EvalOptions::default();
    let legacy = EvalOptions::legacy_indexed();
    let scan = EvalOptions::scan_baseline();
    // Anchor on a subject whose p0 edge reaches a node with an outgoing
    // p1 edge, so the anchored chain fans out to full depth.
    let p1_subjects: std::collections::HashSet<Id> = batch
        .iter()
        .filter(|t| t[1] == Id(1_000_001))
        .map(|t| t[0])
        .collect();
    let anchor = batch
        .iter()
        .find(|t| t[1] == Id(1_000_000) && p1_subjects.contains(&t[2]))
        .map_or(batch[0][0], |t| t[0]);
    let cases = cases(anchor);

    // -- Parity first: all engines agree before anything is timed. --------
    for case in &cases {
        let want = evaluate_with(&prefix, &case.query, &scan);
        assert_eq!(
            evaluate_with(&prefix, &case.query, &compiled),
            want,
            "{}: compiled vs full-scan parity (prefix store)",
            case.name
        );
        assert_eq!(
            evaluate_with(&prefix, &case.query, &legacy),
            want,
            "{}: legacy vs full-scan parity (prefix store)",
            case.name
        );
        let full_compiled = evaluate_with(&store, &case.query, &compiled);
        assert_eq!(
            full_compiled,
            evaluate_with(&store, &case.query, &legacy),
            "{}: compiled vs legacy parity (full store)",
            case.name
        );
        if case.scan_on_full {
            assert_eq!(
                full_compiled,
                evaluate_with(&store, &case.query, &scan),
                "{}: compiled vs full-scan parity (full store)",
                case.name
            );
        }
    }
    println!("# parity: compiled == legacy == full-scan on every shape ✓\n");

    // -- Timed store-atom joins. ------------------------------------------
    let table = Table::new(
        &["query", "answers", "compiled (s)", "legacy (s)", "speedup"],
        &[16, 10, 12, 12, 8],
    );
    let mut summary: Vec<(String, f64)> = Vec::new();
    let mut wall_compiled_total = 0.0;
    let mut wall_legacy_total = 0.0;
    let mut tuples_total = 0usize;
    for case in &cases {
        let (wc, tuples) = time_engine(&store, &case.query, &compiled, runs);
        let (wl, _) = time_engine(&store, &case.query, &legacy, runs);
        wall_compiled_total += wc;
        wall_legacy_total += wl;
        tuples_total += tuples * runs;
        table.row(&[
            case.name,
            &tuples.to_string(),
            &format!("{:.4}", wc / runs as f64),
            &format!("{:.4}", wl / runs as f64),
            &format!("{:.2}x", wl / wc.max(1e-9)),
        ]);
        summary.push((format!("wall_{}_compiled_s", case.name), wc / runs as f64));
        summary.push((format!("wall_{}_legacy_s", case.name), wl / runs as f64));
    }
    let speedup = wall_legacy_total / wall_compiled_total.max(1e-9);
    let throughput = tuples_total as f64 / wall_compiled_total.max(1e-9);
    println!(
        "\n# total: compiled {:.3}s vs legacy {:.3}s — {:.2}x speedup, {:.0} answer tuples/s",
        wall_compiled_total, wall_legacy_total, speedup, throughput
    );

    // -- View-mixed delta join: resident index reuse under repetition. ----
    // The maintenance shape: Δ(X, <p0>, Y) ⋈ t(Y, <p1>, Z). The constant
    // predicate column keeps the delta probed through its hash index (not
    // a full unbound scan), so the reuse assertion below has teeth.
    let delta = ViewTable::from_rows(3, batch.iter().take(4_096).map(|t| t.to_vec()));
    let var = |v: u32| QTerm::Var(Var(v));
    let head = vec![var(0), var(2)];
    let mixed_runs = runs.max(3);
    let atoms = vec![
        MixedAtom::View(ViewAtom {
            table: &delta,
            args: vec![var(0), QTerm::Const(Id(1_000_000)), var(1)],
        }),
        MixedAtom::Store(Atom([var(1), QTerm::Const(Id(1_000_001)), var(2)])),
    ];
    let first = evaluate_mixed(&store, &atoms, &head);
    let builds = delta.index_builds();
    assert!(builds >= 1, "the delta's bound predicate column is indexed");
    let t0 = Instant::now();
    for _ in 0..mixed_runs {
        assert_eq!(evaluate_mixed(&store, &atoms, &head), first);
    }
    let wall_mixed = t0.elapsed().as_secs_f64();
    assert_eq!(
        delta.index_builds(),
        builds,
        "repeated mixed joins must reuse the delta table's cached indexes"
    );
    println!(
        "# mixed delta join: {} answers, {:.4}s/run, {} index build(s) across {} runs ✓",
        first.len(),
        wall_mixed / mixed_runs as f64,
        builds,
        mixed_runs + 1
    );

    // -- Summary + regression floor. --------------------------------------
    summary.push(("triples".to_string(), store.len() as f64));
    summary.push(("speedup_vs_legacy".to_string(), speedup));
    summary.push(("throughput_tuples_per_s".to_string(), throughput));
    summary.push(("wall_compiled_total_s".to_string(), wall_compiled_total));
    summary.push(("wall_legacy_total_s".to_string(), wall_legacy_total));
    summary.push(("wall_mixed_s".to_string(), wall_mixed / mixed_runs as f64));
    let metrics: Vec<(&str, f64)> = summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    rdfviews_bench::emit_bench_json("join_throughput", &metrics);

    let floor = if smoke {
        FLOOR_SMOKE_TPS
    } else {
        FLOOR_FULL_TPS
    };
    if std::env::var("RDFVIEWS_ENFORCE_FLOOR").is_ok() {
        assert!(
            throughput >= floor,
            "compiled join throughput regressed: {throughput:.0} tuples/s < floor {floor:.0}"
        );
        println!("# floor guard: {throughput:.0} tuples/s ≥ {floor:.0} ✓");
    } else {
        println!("# floor (informational): {throughput:.0} tuples/s vs {floor:.0}");
    }
}
