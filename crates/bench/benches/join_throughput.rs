//! Join throughput of the compiled index-native core — and of the
//! worst-case-optimal leapfrog triejoin on cyclic shapes — at
//! million-triple scale.
//!
//! Builds a synthetic store of 1M+ triples (deterministic LCG, fixed
//! fan-out), then runs two tiers of join shapes:
//!
//! * **acyclic tier** — chains, stars, anchored variants with constants,
//!   an intra-atom repeated variable and a view-mixed delta join, timed
//!   under the compiled core and the legacy collect-per-node core;
//! * **cyclic tier** — triangle, diamond and 4-cycle queries over
//!   block-structured edge data, timed under compiled (forced), legacy and
//!   the leapfrog engine (`EvalOptions::wcoj`). The triangle data is built
//!   so that for 15 of 16 hub nodes the two z-ranges a binary-join plan
//!   must intersect are disjoint intervals: the compiled core pays the
//!   full candidate-pair cost while leapfrog's galloping seeks discover
//!   the disjointness in a couple of probes — the worst-case-optimality
//!   gap made measurable.
//!
//! Every engine must produce identical answers before anything is timed
//! (the full-scan baseline joins the parity check on stores small enough
//! for it). The adaptive selector's routing is asserted too: cyclic
//! shapes report `Engine::Wcoj` under default options, acyclic ones
//! `Engine::Compiled`. The view-mixed section additionally asserts the
//! delta table's resident hash indexes are built once across the whole
//! timed loop.
//!
//! Smoke mode (`RDFVIEWS_SMOKE=1` or `--smoke`) shrinks the store so CI
//! finishes fast; the parity, routing and index-reuse assertions still
//! run. With `RDFVIEWS_ENFORCE_FLOOR=1` (set by CI) the bench fails if
//! compiled throughput drops below a conservative committed floor. Full
//! mode additionally asserts the leapfrog engine beats compiled by ≥2x on
//! the triangle and that the compiled core is no slower than legacy on
//! the anchored chain (the pooled-scratch regression this suite caught).

use std::time::Instant;

use rdfviews::engine::{
    evaluate_mixed, evaluate_with, evaluate_with_stats, Engine, EvalOptions, MixedAtom, ViewAtom,
    ViewTable,
};
use rdfviews::model::{Id, Triple, TripleStore};
use rdfviews::query::{Atom, ConjunctiveQuery, QTerm, Var};
use rdfviews_bench::Table;

/// Conservative throughput floors (answer tuples per second, compiled
/// core, debug-free release build). Measured at ~20x below the reference
/// machine so only a genuine regression — not scheduler noise — trips
/// them.
const FLOOR_FULL_TPS: f64 = 100_000.0;
const FLOOR_SMOKE_TPS: f64 = 50_000.0;

/// Every `BENCH_join_throughput.json` field the CI validation step reads
/// by name. The per-case keys are assembled with `format!` in the timing
/// loops, so this manifest keeps the spellings visible as literals (the
/// xlint X007 rule cross-checks them against `.github/workflows/ci.yml`)
/// and the pre-emit assertion keeps the manifest honest at runtime.
const CI_VALIDATED_FIELDS: &[&str] = &[
    "wall_triangle_compiled_s",
    "wall_triangle_legacy_s",
    "wall_triangle_wcoj_s",
    "wall_diamond_compiled_s",
    "wall_diamond_legacy_s",
    "wall_diamond_wcoj_s",
    "wall_four_cycle_compiled_s",
    "wall_four_cycle_legacy_s",
    "wall_four_cycle_wcoj_s",
    "wall_anchored_chain2_compiled_s",
    "wall_anchored_chain2_legacy_s",
    "wcoj_speedup_on_cyclic",
];

/// Id bases for the cyclic-tier synthetic graph, disjoint from the
/// acyclic tier's subjects (< 200k) and predicates (1_000_000+).
const P_TRI: u32 = 2_000_000; // triangle predicates: +0 (R), +1 (S), +2 (T)
const P_DIA: u32 = 2_000_010; // diamond predicates: +0..+3
const P_CYC: u32 = 2_000_020; // 4-cycle predicates: +0..+3
const TRI_X: u32 = 3_000_000;
const TRI_Y: u32 = 3_100_000;
const TRI_Z: u32 = 3_200_000;
const TRI_Z_HI: u32 = 3_500_000; // z-range unreachable from any S edge
const DIA_N: u32 = 3_700_000; // diamond nodes: +10_000 per position
const CYC_N: u32 = 3_800_000; // 4-cycle nodes: +10_000 per position

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn synth_triples(n: usize, subjects: u64, predicates: u64) -> Vec<Triple> {
    let mut rng = 0x5eed_u64;
    let mut batch = Vec::with_capacity(n);
    for _ in 0..n {
        let s = Id((lcg(&mut rng) % subjects) as u32);
        let p = Id(1_000_000 + (lcg(&mut rng) % predicates) as u32);
        let o = Id((lcg(&mut rng) % subjects) as u32);
        batch.push([s, p, o]);
    }
    batch
}

/// Size knobs for the cyclic-tier data, scaled per mode.
struct CyclicScale {
    /// Triangle hubs (x nodes, also the y-domain size); multiple of 16.
    nx: u32,
    /// y's per hub (R fan-out); at least 2.
    fy: u32,
    /// z-block length per y (S fan-out) and per hub (T fan-out); above 8.
    bz: u32,
    /// Diamond / 4-cycle: nodes per position and random edges per
    /// predicate.
    dn: u64,
    de: usize,
}

/// Appends `fanout` consecutive-destination edges per source node.
fn block_edges(
    batch: &mut Vec<Triple>,
    pred: u32,
    src_base: u32,
    n_src: u32,
    fanout: u32,
    mut dst0: impl FnMut(u32) -> u32,
) {
    for i in 0..n_src {
        let d0 = dst0(i);
        for k in 0..fanout {
            batch.push([Id(src_base + i), Id(pred), Id(d0 + k)]);
        }
    }
}

/// Appends `count` random edges under `pred` between two node domains.
fn rand_edges(
    batch: &mut Vec<Triple>,
    rng: &mut u64,
    pred: u32,
    src_base: u32,
    dst_base: u32,
    n: u64,
    count: usize,
) {
    for _ in 0..count {
        let s = Id(src_base + (lcg(rng) % n) as u32);
        let o = Id(dst_base + (lcg(rng) % n) as u32);
        batch.push([s, Id(pred), o]);
    }
}

/// The cyclic-tier edge data.
///
/// Triangle (R: x→y, S: y→z, T: x→z): every hub x has `fy` y's, every y a
/// contiguous `bz`-long z-block, and every x its own `bz`-long T-block.
/// For one hub in 16 the T-block overlaps the S-blocks of its first two
/// y's (straddling their boundary → exactly `bz` triangles per such hub);
/// for the rest it sits in a high z-range no S edge reaches. A binary
/// join cannot see the difference without enumerating candidate pairs;
/// leapfrog's interval seeks can.
fn cyclic_triples(sc: &CyclicScale) -> Vec<Triple> {
    let mut b = Vec::new();
    let (nx, fy, bz) = (sc.nx, sc.fy, sc.bz);
    assert!(nx % 16 == 0 && fy >= 2 && bz > 8, "triangle scale contract");
    block_edges(&mut b, P_TRI, TRI_X, nx, fy, |i| TRI_Y + (i * fy) % nx);
    block_edges(&mut b, P_TRI + 1, TRI_Y, nx, bz, |j| TRI_Z + j * bz);
    block_edges(&mut b, P_TRI + 2, TRI_X, nx, bz, |i| {
        if i % 16 == 0 {
            TRI_Z + ((i * fy) % nx) * bz + bz - 8
        } else {
            TRI_Z_HI + i * bz
        }
    });
    let mut rng = 0xc1c11c_u64;
    let dia = |k: u32| DIA_N + 10_000 * k;
    for (pred, src, dst) in [
        (P_DIA, dia(0), dia(1)),
        (P_DIA + 1, dia(0), dia(2)),
        (P_DIA + 2, dia(1), dia(3)),
        (P_DIA + 3, dia(2), dia(3)),
    ] {
        rand_edges(&mut b, &mut rng, pred, src, dst, sc.dn, sc.de);
    }
    let cyc = |k: u32| CYC_N + 10_000 * k;
    for (pred, src, dst) in [
        (P_CYC, cyc(0), cyc(1)),
        (P_CYC + 1, cyc(1), cyc(2)),
        (P_CYC + 2, cyc(2), cyc(3)),
        (P_CYC + 3, cyc(3), cyc(0)),
    ] {
        rand_edges(&mut b, &mut rng, pred, src, dst, sc.dn, sc.de);
    }
    b
}

/// Triangle answers the block construction guarantees: one hub in 16
/// carries exactly `bz` triangles.
fn expected_triangles(sc: &CyclicScale) -> usize {
    (sc.nx / 16) as usize * sc.bz as usize
}

struct Case {
    name: &'static str,
    query: ConjunctiveQuery,
    /// Whether the full-scan baseline is tractable on the full store (it
    /// re-scans everything at every recursion node, so only queries that
    /// fan out from a constant qualify at 1M scale).
    scan_on_full: bool,
}

fn cases(anchor: Id) -> Vec<Case> {
    let var = |v: u32| QTerm::Var(Var(v));
    let p = |i: u32| QTerm::Const(Id(1_000_000 + i));
    vec![
        Case {
            name: "single_p",
            query: ConjunctiveQuery::new(vec![var(0), var(1)], vec![Atom([var(0), p(0), var(1)])]),
            scan_on_full: true,
        },
        Case {
            name: "chain2",
            query: ConjunctiveQuery::new(
                vec![var(0), var(2)],
                vec![Atom([var(0), p(0), var(1)]), Atom([var(1), p(1), var(2)])],
            ),
            scan_on_full: false,
        },
        Case {
            name: "chain3",
            query: ConjunctiveQuery::new(
                vec![var(0), var(3)],
                vec![
                    Atom([var(0), p(0), var(1)]),
                    Atom([var(1), p(1), var(2)]),
                    Atom([var(2), p(2), var(3)]),
                ],
            ),
            scan_on_full: false,
        },
        Case {
            name: "star2",
            query: ConjunctiveQuery::new(
                vec![var(0), var(1), var(2)],
                vec![Atom([var(0), p(0), var(1)]), Atom([var(0), p(1), var(2)])],
            ),
            scan_on_full: false,
        },
        Case {
            name: "anchored_chain2",
            query: ConjunctiveQuery::new(
                vec![var(1), var(2)],
                vec![
                    Atom([QTerm::Const(anchor), p(0), var(1)]),
                    Atom([var(1), p(1), var(2)]),
                ],
            ),
            scan_on_full: true,
        },
        Case {
            name: "self_loop",
            query: ConjunctiveQuery::new(vec![var(0)], vec![Atom([var(0), p(0), var(0)])]),
            scan_on_full: true,
        },
    ]
}

/// The cyclic-tier queries: triangle, diamond and 4-cycle, full heads so
/// parity checks see every binding.
fn cyclic_cases() -> Vec<(&'static str, ConjunctiveQuery)> {
    let var = |v: u32| QTerm::Var(Var(v));
    let p = |base: u32, i: u32| QTerm::Const(Id(base + i));
    vec![
        (
            "triangle",
            ConjunctiveQuery::new(
                vec![var(0), var(1), var(2)],
                vec![
                    Atom([var(0), p(P_TRI, 0), var(1)]),
                    Atom([var(1), p(P_TRI, 1), var(2)]),
                    Atom([var(0), p(P_TRI, 2), var(2)]),
                ],
            ),
        ),
        (
            "diamond",
            ConjunctiveQuery::new(
                vec![var(0), var(1), var(2), var(3)],
                vec![
                    Atom([var(0), p(P_DIA, 0), var(1)]),
                    Atom([var(0), p(P_DIA, 1), var(2)]),
                    Atom([var(1), p(P_DIA, 2), var(3)]),
                    Atom([var(2), p(P_DIA, 3), var(3)]),
                ],
            ),
        ),
        (
            "four_cycle",
            ConjunctiveQuery::new(
                vec![var(0), var(1), var(2), var(3)],
                vec![
                    Atom([var(0), p(P_CYC, 0), var(1)]),
                    Atom([var(1), p(P_CYC, 1), var(2)]),
                    Atom([var(2), p(P_CYC, 2), var(3)]),
                    Atom([var(3), p(P_CYC, 3), var(0)]),
                ],
            ),
        ),
    ]
}

/// Times `runs` evaluations, returning (wall seconds, answers of one run).
fn time_engine(
    store: &TripleStore,
    q: &ConjunctiveQuery,
    opts: &EvalOptions,
    runs: usize,
) -> (f64, usize) {
    let mut tuples = 0;
    let t0 = Instant::now();
    for _ in 0..runs {
        tuples = evaluate_with(store, q, opts).len();
    }
    (t0.elapsed().as_secs_f64(), tuples)
}

fn main() {
    let smoke = std::env::var("RDFVIEWS_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (n, subjects, runs) = if smoke {
        (60_000, 6_000, 2)
    } else {
        (1_200_000, 100_000, 3)
    };
    let predicates = 16;
    let scale = if smoke {
        CyclicScale {
            nx: 256,
            fy: 8,
            bz: 32,
            dn: 512,
            de: 2_048,
        }
    } else {
        CyclicScale {
            nx: 2_048,
            fy: 16,
            bz: 64,
            dn: 4_096,
            de: 16_384,
        }
    };

    let batch = synth_triples(n, subjects, predicates);
    let cyc_batch = cyclic_triples(&scale);
    let mut store = TripleStore::new();
    store.insert_batch(&batch);
    store.insert_batch(&cyc_batch);
    println!(
        "# join_throughput: {} stored triples ({} subjects, {} predicates, {} cyclic-tier edges){}",
        store.len(),
        subjects,
        predicates,
        cyc_batch.len(),
        if smoke { " [smoke]" } else { "" },
    );
    assert!(
        smoke || store.len() >= 1_000_000,
        "full mode must exercise at least one million stored triples"
    );

    // A prefix store keeps the full-scan baseline tractable for the
    // unanchored joins (it pays a full scan per recursion node).
    let prefix_n = if smoke { batch.len() } else { 50_000 };
    let mut prefix = TripleStore::new();
    prefix.insert_batch(&batch[..prefix_n.min(batch.len())]);

    let compiled = EvalOptions::compiled();
    let legacy = EvalOptions::legacy_indexed();
    let scan = EvalOptions::scan_baseline();
    let adaptive = EvalOptions::default();
    // Anchor on a subject whose p0 edge reaches a node with an outgoing
    // p1 edge, so the anchored chain fans out to full depth.
    let p1_subjects: std::collections::HashSet<Id> = batch
        .iter()
        .filter(|t| t[1] == Id(1_000_001))
        .map(|t| t[0])
        .collect();
    let anchor = batch
        .iter()
        .find(|t| t[1] == Id(1_000_000) && p1_subjects.contains(&t[2]))
        .map_or(batch[0][0], |t| t[0]);
    let cases = cases(anchor);

    // -- Parity first: all engines agree before anything is timed. --------
    for case in &cases {
        let want = evaluate_with(&prefix, &case.query, &scan);
        assert_eq!(
            evaluate_with(&prefix, &case.query, &compiled),
            want,
            "{}: compiled vs full-scan parity (prefix store)",
            case.name
        );
        assert_eq!(
            evaluate_with(&prefix, &case.query, &legacy),
            want,
            "{}: legacy vs full-scan parity (prefix store)",
            case.name
        );
        let full_compiled = evaluate_with(&store, &case.query, &compiled);
        assert_eq!(
            full_compiled,
            evaluate_with(&store, &case.query, &legacy),
            "{}: compiled vs legacy parity (full store)",
            case.name
        );
        if case.scan_on_full {
            assert_eq!(
                full_compiled,
                evaluate_with(&store, &case.query, &scan),
                "{}: compiled vs full-scan parity (full store)",
                case.name
            );
        }
        // The adaptive selector must route every acyclic shape to the
        // compiled core.
        let (ans, stats) = evaluate_with_stats(&store, &case.query, &adaptive);
        assert_eq!(stats.engine, Engine::Compiled, "{}: routing", case.name);
        assert_eq!(ans, full_compiled);
    }
    println!("# parity: compiled == legacy == full-scan on every acyclic shape ✓");

    // Cyclic parity: all four engines on a store small enough for the
    // full-scan baseline, then the three indexed engines on the full
    // store. The adaptive selector must route every cyclic shape to
    // leapfrog.
    let wcoj = EvalOptions::wcoj();
    let tiny = cyclic_triples(&CyclicScale {
        nx: 32,
        fy: 4,
        bz: 16,
        dn: 48,
        de: 160,
    });
    let mut cyc_parity = TripleStore::new();
    cyc_parity.insert_batch(&tiny);
    cyc_parity.insert_batch(&batch[..2_000.min(batch.len())]);
    let cyclic = cyclic_cases();
    for (name, q) in &cyclic {
        let want = evaluate_with(&cyc_parity, q, &scan);
        for (engine, opts) in [
            ("compiled", &compiled),
            ("legacy", &legacy),
            ("wcoj", &wcoj),
        ] {
            assert_eq!(
                evaluate_with(&cyc_parity, q, opts),
                want,
                "{name}: {engine} vs full-scan parity (tiny store)"
            );
        }
        let full_compiled = evaluate_with(&store, q, &compiled);
        assert_eq!(
            full_compiled,
            evaluate_with(&store, q, &legacy),
            "{name}: compiled vs legacy parity (full store)"
        );
        let (ans, stats) = evaluate_with_stats(&store, q, &adaptive);
        assert_eq!(stats.engine, Engine::Wcoj, "{name}: routing");
        assert!(stats.lf_seeks > 0, "{name}: leapfrog must report seeks");
        assert_eq!(
            ans, full_compiled,
            "{name}: wcoj vs compiled parity (full store)"
        );
    }
    println!("# parity: four engines agree on every cyclic shape, cyclic → wcoj routing ✓\n");

    // -- Timed store-atom joins (acyclic tier). ---------------------------
    let table = Table::new(
        &["query", "answers", "compiled (s)", "legacy (s)", "speedup"],
        &[16, 10, 12, 12, 8],
    );
    let mut summary: Vec<(String, f64)> = Vec::new();
    let mut wall_compiled_total = 0.0;
    let mut wall_legacy_total = 0.0;
    let mut tuples_total = 0usize;
    let micro_runs = if smoke { 256 } else { 1_024 };
    let mut anchored = (0.0, 0.0);
    for case in &cases {
        // Micro-second shapes need far more repetitions than the big
        // scans for a stable average — anchored_chain2 is the regression
        // sentinel for pooled-scratch cleanup cost, so its number matters.
        let case_runs = if case.name == "anchored_chain2" {
            micro_runs
        } else {
            runs
        };
        let (wc, tuples) = time_engine(&store, &case.query, &compiled, case_runs);
        let (wl, _) = time_engine(&store, &case.query, &legacy, case_runs);
        let (pc, pl) = (wc / case_runs as f64, wl / case_runs as f64);
        wall_compiled_total += pc * runs as f64;
        wall_legacy_total += pl * runs as f64;
        tuples_total += tuples * runs;
        if case.name == "anchored_chain2" {
            anchored = (pc, pl);
        }
        table.row(&[
            case.name,
            &tuples.to_string(),
            &format!("{pc:.4}"),
            &format!("{pl:.4}"),
            &format!("{:.2}x", pl / pc.max(1e-9)),
        ]);
        summary.push((format!("wall_{}_compiled_s", case.name), pc));
        summary.push((format!("wall_{}_legacy_s", case.name), pl));
    }
    let speedup = wall_legacy_total / wall_compiled_total.max(1e-9);
    let throughput = tuples_total as f64 / wall_compiled_total.max(1e-9);
    println!(
        "\n# total: compiled {:.3}s vs legacy {:.3}s — {:.2}x speedup, {:.0} answer tuples/s",
        wall_compiled_total, wall_legacy_total, speedup, throughput
    );
    // The compiled core must never trail the legacy core on the anchored
    // micro-join: that happened once, through O(capacity) cleanup of a
    // pooled scratch set inflated by an earlier large query.
    println!(
        "# anchored_chain2: compiled {:.2}µs vs legacy {:.2}µs per run",
        anchored.0 * 1e6,
        anchored.1 * 1e6
    );
    assert!(
        anchored.0 <= anchored.1,
        "compiled anchored_chain2 ({:.2}µs) must not trail legacy ({:.2}µs)",
        anchored.0 * 1e6,
        anchored.1 * 1e6
    );

    // -- Timed cyclic tier: compiled vs legacy vs leapfrog. ---------------
    let cyc_table = Table::new(
        &[
            "query",
            "answers",
            "compiled (s)",
            "legacy (s)",
            "wcoj (s)",
            "wcoj gain",
        ],
        &[12, 10, 12, 12, 12, 10],
    );
    let cyc_runs = runs.min(2);
    let mut cyc_compiled_total = 0.0;
    let mut cyc_wcoj_total = 0.0;
    let mut tri_walls = (0.0, 0.0);
    for (name, q) in &cyclic {
        let (wc, tuples) = time_engine(&store, q, &compiled, cyc_runs);
        let (wl, _) = time_engine(&store, q, &legacy, cyc_runs);
        let (ww, wcoj_tuples) = time_engine(&store, q, &wcoj, cyc_runs);
        assert_eq!(tuples, wcoj_tuples, "{name}: timed answer drift");
        if *name == "triangle" {
            assert_eq!(
                tuples,
                expected_triangles(&scale),
                "triangle: block construction answer count"
            );
            tri_walls = (wc, ww);
        }
        let (pc, pl, pw) = (
            wc / cyc_runs as f64,
            wl / cyc_runs as f64,
            ww / cyc_runs as f64,
        );
        cyc_compiled_total += wc;
        cyc_wcoj_total += ww;
        cyc_table.row(&[
            name,
            &tuples.to_string(),
            &format!("{pc:.4}"),
            &format!("{pl:.4}"),
            &format!("{pw:.4}"),
            &format!("{:.2}x", pc / pw.max(1e-9)),
        ]);
        summary.push((format!("wall_{name}_compiled_s"), pc));
        summary.push((format!("wall_{name}_legacy_s"), pl));
        summary.push((format!("wall_{name}_wcoj_s"), pw));
    }
    let wcoj_speedup = cyc_compiled_total / cyc_wcoj_total.max(1e-9);
    println!("\n# cyclic tier: wcoj {wcoj_speedup:.2}x vs compiled overall");
    if !smoke {
        // The acceptance bar: at million-triple scale the leapfrog engine
        // must beat the binary-join core by at least 2x on the triangle.
        assert!(
            tri_walls.1 * 2.0 <= tri_walls.0,
            "wcoj must be ≥2x compiled on the triangle (compiled {:.4}s, wcoj {:.4}s)",
            tri_walls.0 / cyc_runs as f64,
            tri_walls.1 / cyc_runs as f64
        );
        println!("# triangle gate: wcoj ≥2x compiled ✓");
    }

    // -- View-mixed delta join: resident index reuse under repetition. ----
    // The maintenance shape: Δ(X, <p0>, Y) ⋈ t(Y, <p1>, Z). The constant
    // predicate column keeps the delta probed through its hash index (not
    // a full unbound scan), so the reuse assertion below has teeth.
    let delta = ViewTable::from_rows(3, batch.iter().take(4_096).map(|t| t.to_vec()));
    let var = |v: u32| QTerm::Var(Var(v));
    let head = vec![var(0), var(2)];
    let mixed_runs = runs.max(3);
    let atoms = vec![
        MixedAtom::View(ViewAtom {
            table: &delta,
            args: vec![var(0), QTerm::Const(Id(1_000_000)), var(1)],
        }),
        MixedAtom::Store(Atom([var(1), QTerm::Const(Id(1_000_001)), var(2)])),
    ];
    let first = evaluate_mixed(&store, &atoms, &head);
    let builds = delta.index_builds();
    assert!(builds >= 1, "the delta's bound predicate column is indexed");
    let t0 = Instant::now();
    for _ in 0..mixed_runs {
        assert_eq!(evaluate_mixed(&store, &atoms, &head), first);
    }
    let wall_mixed = t0.elapsed().as_secs_f64();
    assert_eq!(
        delta.index_builds(),
        builds,
        "repeated mixed joins must reuse the delta table's cached indexes"
    );
    println!(
        "# mixed delta join: {} answers, {:.4}s/run, {} index build(s) across {} runs ✓",
        first.len(),
        wall_mixed / mixed_runs as f64,
        builds,
        mixed_runs + 1
    );

    // -- Summary + regression floor. --------------------------------------
    summary.push(("triples".to_string(), store.len() as f64));
    summary.push(("speedup_vs_legacy".to_string(), speedup));
    summary.push(("throughput_tuples_per_s".to_string(), throughput));
    summary.push(("wall_compiled_total_s".to_string(), wall_compiled_total));
    summary.push(("wall_legacy_total_s".to_string(), wall_legacy_total));
    summary.push(("wall_mixed_s".to_string(), wall_mixed / mixed_runs as f64));
    summary.push(("wcoj_speedup_on_cyclic".to_string(), wcoj_speedup));
    for field in CI_VALIDATED_FIELDS {
        assert!(
            summary.iter().any(|(k, _)| k == field),
            "summary is missing CI-validated field {field:?}"
        );
    }
    let metrics: Vec<(&str, f64)> = summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    rdfviews_bench::emit_bench_json("join_throughput", &metrics);

    let floor = if smoke {
        FLOOR_SMOKE_TPS
    } else {
        FLOOR_FULL_TPS
    };
    if std::env::var("RDFVIEWS_ENFORCE_FLOOR").is_ok() {
        assert!(
            throughput >= floor,
            "compiled join throughput regressed: {throughput:.0} tuples/s < floor {floor:.0}"
        );
        println!("# floor guard: {throughput:.0} tuples/s ≥ {floor:.0} ✓");
    } else {
        println!("# floor (informational): {throughput:.0} tuples/s vs {floor:.0}");
    }
}
