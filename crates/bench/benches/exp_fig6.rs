//! **Figure 6** — relative cost reduction on large workloads.
//!
//! Paper setup: workloads of 5–200 queries × 10 atoms; shapes chain,
//! random-sparse, random-dense, star, mixed; high and low commonality;
//! DFS-AVF-STV and GSTR-AVF-STV with a 3-hour `stop_time` (we default to
//! seconds — the strategies are anytime).
//!
//! Paper findings to reproduce: rcr is high overall (often ≈ 0.99 for the
//! easy shapes); chains and sparse graphs are "easier" (fewer edges ⇒
//! smaller space ⇒ higher rcr); stars and dense graphs are harder; high
//! commonality beats low commonality; GSTR's rcr trails DFS's.
//!
//! Scale via `RDFVIEWS_FIG6_SIZES` (default `5,10,20,50`) and
//! `RDFVIEWS_BUDGET_SECS` (default 2 s per search).

use rdfviews::core::StrategyKind;
use rdfviews::workload::{Commonality, Shape};
use rdfviews_bench::{
    env_secs, env_usize, env_usize_list, fmt_rcr, free_workload, run_strategy, Table,
};

fn main() {
    let budget = env_secs("RDFVIEWS_BUDGET_SECS", 2);
    let max_states = env_usize("RDFVIEWS_MAX_STATES", 300_000);
    let sizes = env_usize_list("RDFVIEWS_FIG6_SIZES", &[5, 10, 20, 50]);
    println!("== Figure 6: rcr on large workloads (10 atoms/query, budget {budget:?}) ==\n");

    let shapes = [
        Shape::Chain,
        Shape::RandomSparse,
        Shape::RandomDense,
        Shape::Star,
        Shape::Mixed,
    ];
    for (strat_name, strat) in [
        ("DFS-AVF-STV", StrategyKind::Dfs),
        ("GSTR-AVF-STV", StrategyKind::Gstr),
    ] {
        println!("--- {strat_name} ---");
        let mut headers: Vec<String> = vec!["workload".into()];
        headers.extend(sizes.iter().map(|s| format!("{s}q")));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut widths = vec![26usize];
        widths.extend(std::iter::repeat_n(8usize, sizes.len()));
        let table = Table::new(&header_refs, &widths);
        for comm in [Commonality::High, Commonality::Low] {
            for shape in shapes {
                let mut cells: Vec<String> = vec![format!(
                    "{} {}",
                    shape.name(),
                    match comm {
                        Commonality::High => "high",
                        Commonality::Low => "low",
                    }
                )];
                for &n in &sizes {
                    // Average over 3 seeded variants, as in the paper; data
                    // scaled with the property pool (capped).
                    let pool = match comm {
                        Commonality::High => 20,
                        Commonality::Low => n * 10,
                    };
                    let mut rcr_sum = 0.0;
                    let runs = 3;
                    for seed in 0..runs {
                        let bench = free_workload(
                            shape,
                            comm,
                            n,
                            10,
                            100 + seed,
                            0.0,
                            (400 * pool).clamp(6_000, 40_000),
                        );
                        let out = run_strategy(&bench, strat, true, true, budget, max_states);
                        rcr_sum += out.rcr();
                    }
                    cells.push(format!("{:.3}", rcr_sum / runs as f64));
                }
                let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
                table.row(&refs);
            }
        }
        println!();
    }
    let _ = fmt_rcr; // shared helper used by other figures
    println!("expected shape: chains/sparse ≥ dense/star; high commonality ≥ low; DFS ≥ GSTR.");
}
