//! Parallel search core: explorer threads on a **single sharing group**.
//!
//! `select_views_partitioned` already parallelizes *across* groups, but a
//! Barton-style workload routinely collapses into one big group that used
//! to pin a single core. Two sections:
//!
//! 1. **Parity** — a fusion-heavy workload (≥ 8 queries, one sharing
//!    group) sized so exhaustive DFS *completes*: every thread count must
//!    report the identical best cost and a balanced counter ledger. This
//!    is the determinism contract of the parallel core.
//! 2. **Throughput** (skipped in smoke mode) — a generator workload under
//!    a state budget: wall-clock per thread count. Truncated runs stop at
//!    order-dependent frontiers, so best costs are reported, not
//!    asserted.
//!
//! Smoke mode (`RDFVIEWS_SMOKE=1` or `--smoke`) shrinks section 1 to a
//! fraction of a second for CI; the parity assertions still run. On a
//! single-core machine the explorer threads timeshare, so speedups only
//! show on real hardware.

use std::time::Instant;

use rdfviews::core::{
    partition_workload, search, CostModel, CostWeights, SearchConfig, SearchOutcome, State,
    StrategyKind,
};
use rdfviews::model::{Dataset, Term};
use rdfviews::prelude::parse_query;
use rdfviews::query::ConjunctiveQuery;
use rdfviews::stats::collect_stats;
use rdfviews::workload::{Commonality, Shape};
use rdfviews_bench::{env_usize, free_workload, Table};

/// A property-chain workload whose queries all share the `t(X, <p>, Y)`
/// atom shape — one sharing group by construction — with enough View
/// Fusion / View Break structure to be non-trivial yet complete.
fn parity_workload(
    scans: usize,
    chains2: usize,
    chains3: usize,
) -> (Dataset, Vec<ConjunctiveQuery>) {
    let mut db = Dataset::new();
    for i in 0..3000u32 {
        let s = format!("s{i}");
        db.insert_terms(
            Term::uri(s.as_str()),
            Term::uri("p"),
            Term::uri(format!("m{}", i % 50)),
        );
        db.insert_terms(
            Term::uri(format!("m{}", i % 50)),
            Term::uri("q"),
            Term::uri(format!("o{}", i % 7)),
        );
        db.insert_terms(
            Term::uri(format!("o{}", i % 7)),
            Term::uri("r"),
            Term::uri(format!("w{}", i % 4)),
        );
    }
    let mut workload = Vec::new();
    for i in 0..scans {
        workload.push(
            parse_query(&format!("qa{i}(X, Y) :- t(X, <p>, Y)"), db.dict_mut())
                .unwrap()
                .query,
        );
    }
    for i in 0..chains2 {
        workload.push(
            parse_query(
                &format!("qb{i}(X, Z) :- t(X, <p>, Y), t(Y, <q>, Z)"),
                db.dict_mut(),
            )
            .unwrap()
            .query,
        );
    }
    for i in 0..chains3 {
        workload.push(
            parse_query(
                &format!("qc{i}(X, W) :- t(X, <p>, Y), t(Y, <q>, Z), t(Z, <r>, W)"),
                db.dict_mut(),
            )
            .unwrap()
            .query,
        );
    }
    (db, workload)
}

fn run_at(
    workload: &[ConjunctiveQuery],
    model: &CostModel<'_>,
    threads: usize,
    max_states: usize,
) -> (SearchOutcome, f64) {
    let cfg = SearchConfig {
        strategy: StrategyKind::Dfs,
        parallelism: threads,
        max_states: Some(max_states),
        ..SearchConfig::default()
    };
    let t0 = Instant::now();
    let out = search(State::initial(workload), model, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    (out, wall)
}

fn ledger_balances(out: &SearchOutcome) -> bool {
    out.stats.created + out.stats.reexpansions
        == out.stats.duplicates
            + out.stats.discarded
            + out.stats.explored
            + out.stats.frontier_remaining
}

fn main() {
    let smoke = std::env::var("RDFVIEWS_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    // -- Section 1: parity on a completing single-group workload. --------
    let (scans, chains2, chains3) = if smoke { (6, 2, 0) } else { (6, 8, 4) };
    let (db, workload) = parity_workload(scans, chains2, chains3);
    let groups = partition_workload(&workload);
    println!(
        "# parity: {} queries in {} sharing group(s){}",
        workload.len(),
        groups.len(),
        if smoke { " [smoke]" } else { "" },
    );
    assert_eq!(
        groups.len(),
        1,
        "parity workload must form one sharing group"
    );
    assert!(workload.len() >= 8);
    let cat = collect_stats(db.store(), db.dict(), &workload);
    let mut model = CostModel::new(&cat, CostWeights::default());
    model.calibrate_cm(&State::initial(&workload));

    let table = Table::new(
        &[
            "threads",
            "wall (s)",
            "created",
            "explored",
            "best cost",
            "speedup",
        ],
        &[7, 9, 10, 10, 14, 7],
    );
    let mut baseline: Option<(f64, f64)> = None; // (wall, best cost)
    let mut summary: Vec<(String, f64)> = Vec::new();
    for threads in [1usize, 2, 4] {
        let (out, wall) = run_at(&workload, &model, threads, 3_000_000);
        assert!(!out.stats.out_of_budget, "parity workload must complete");
        assert!(ledger_balances(&out), "counter ledger at {threads} threads");
        summary.push((format!("parity_wall_{threads}t_s"), wall));
        summary.push((
            format!("parity_states_per_s_{threads}t"),
            out.stats.created as f64 / wall.max(1e-9),
        ));
        if threads == 1 {
            summary.push(("parity_best_cost".to_string(), out.best_cost));
            summary.push(("parity_created".to_string(), out.stats.created as f64));
        }
        let speedup = match &baseline {
            None => {
                baseline = Some((wall, out.best_cost));
                1.0
            }
            Some((base_wall, base_cost)) => {
                assert!(
                    (out.best_cost - base_cost).abs() <= 1e-9 * base_cost.abs().max(1.0),
                    "best cost diverged at {threads} threads: {} vs {base_cost}",
                    out.best_cost
                );
                base_wall / wall
            }
        };
        table.row(&[
            &threads.to_string(),
            &format!("{wall:.3}"),
            &out.stats.created.to_string(),
            &out.stats.explored.to_string(),
            &format!("{:.4e}", out.best_cost),
            &format!("{speedup:.2}x"),
        ]);
    }
    let metrics: Vec<(&str, f64)> = summary.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    rdfviews_bench::emit_bench_json("parallel_search", &metrics);

    // -- Section 2: throughput under a state budget. ----------------------
    if !smoke {
        let queries = env_usize("RDFVIEWS_PAR_QUERIES", 14);
        let atoms = env_usize("RDFVIEWS_PAR_ATOMS", 3);
        let triples = env_usize("RDFVIEWS_PAR_TRIPLES", 4000);
        let max_states = env_usize("RDFVIEWS_MAX_STATES", 1_200_000);
        let bench = free_workload(
            Shape::Chain,
            Commonality::High,
            queries,
            atoms,
            0x5eed,
            0.2,
            triples,
        );
        let groups = partition_workload(&bench.workload);
        let largest = groups.iter().max_by_key(|g| g.len()).expect("workload");
        let workload: Vec<_> = largest.iter().map(|&i| bench.workload[i].clone()).collect();
        println!(
            "\n# throughput: largest sharing group has {} of {} generator queries, \
             budget {max_states} states (truncated frontiers are order-dependent; \
             best costs reported, not asserted)",
            workload.len(),
            bench.workload.len(),
        );
        let cat = collect_stats(bench.db.store(), bench.db.dict(), &workload);
        let mut model = CostModel::new(&cat, CostWeights::default());
        model.calibrate_cm(&State::initial(&workload));
        let table = Table::new(
            &["threads", "wall (s)", "states/s", "best cost", "speedup"],
            &[7, 9, 10, 14, 7],
        );
        let mut base_wall: Option<f64> = None;
        for threads in [1usize, 2, 4] {
            let (out, wall) = run_at(&workload, &model, threads, max_states);
            assert!(ledger_balances(&out), "counter ledger at {threads} threads");
            let speedup = match &base_wall {
                None => {
                    base_wall = Some(wall);
                    1.0
                }
                Some(b) => b / wall,
            };
            table.row(&[
                &threads.to_string(),
                &format!("{wall:.3}"),
                &format!("{:.0}", out.stats.created as f64 / wall.max(1e-9)),
                &format!("{:.4e}", out.best_cost),
                &format!("{speedup:.2}x"),
            ]);
        }
    }
    if cores < 2 {
        println!(
            "# NOTE: this machine exposes {cores} core(s) — explorer threads \
             timeshare it, so no wall-clock speedup is observable here."
        );
    }
}
