//! Ad-hoc query answering: plan + execute over the deployed views vs
//! direct evaluation on the base store.
//!
//! The bench tunes a deployment for a workload, then answers a mixed batch
//! of ad-hoc queries — workload-shaped specializations the views fully
//! cover, and queries over an untuned predicate that force hybrid plans —
//! under three strategies:
//!
//! * **views-only** — `AnswerPolicy::ViewsOnly` (coverable queries only);
//! * **hybrid** — `AnswerPolicy::Hybrid` (every query);
//! * **direct** — plain evaluation on the base store, no views.
//!
//! Correctness is asserted before timing: views-only and hybrid answers
//! must be set-equal to direct evaluation, query by query. Smoke mode
//! (`RDFVIEWS_SMOKE=1` or `--smoke`) shrinks the data so CI finishes fast;
//! the assertions still run.

use std::time::Instant;

use rdfviews::exec::QueryPlan;
use rdfviews::prelude::*;
use rdfviews_bench::Table;

fn time_it(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::var("RDFVIEWS_SMOKE").is_ok() || std::env::args().any(|a| a == "--smoke");
    let (entities, repeats) = if smoke {
        (300usize, 1usize)
    } else {
        (4_000, 25)
    };

    // -- Dataset: paintings → artists → cities, plus exhibition sites. ----
    let mut db = Dataset::new();
    let painted_by = db.dict_mut().intern_uri("paintedBy");
    let exhibited_in = db.dict_mut().intern_uri("exhibitedIn");
    let born_in = db.dict_mut().intern_uri("bornIn");
    let artists = entities / 8;
    for i in 0..entities {
        let painting = db.dict_mut().intern_uri(&format!("painting{i}"));
        let artist = db.dict_mut().intern_uri(&format!("artist{}", i % artists));
        let site = db.dict_mut().intern_uri(&format!("site{}", i % 12));
        db.store_mut().insert([painting, painted_by, artist]);
        db.store_mut().insert([painting, exhibited_in, site]);
    }
    for a in 0..artists {
        let artist = db.dict_mut().intern_uri(&format!("artist{a}"));
        let city = db.dict_mut().intern_uri(&format!("city{}", a % 5));
        db.store_mut().insert([artist, born_in, city]);
    }

    // -- Tuned workload (bornIn deliberately untuned). ---------------------
    let workload: Vec<ConjunctiveQuery> = [
        "q1(P, A) :- t(P, <paintedBy>, A)",
        "q2(P, M) :- t(P, <exhibitedIn>, M)",
        "q3(A, M) :- t(P, <paintedBy>, A), t(P, <exhibitedIn>, M)",
    ]
    .iter()
    .map(|s| parse_query(s, db.dict_mut()).unwrap().query)
    .collect();

    // -- Ad-hoc batch: coverable specializations + hybrid joins. ----------
    let coverable: Vec<ConjunctiveQuery> = (0..8)
        .map(|k| {
            parse_query(
                &format!(
                    "a{k}(P, M) :- t(P, <paintedBy>, <artist{}>), t(P, <exhibitedIn>, M)",
                    k % artists
                ),
                db.dict_mut(),
            )
            .unwrap()
            .query
        })
        .collect();
    let hybrid_only: Vec<ConjunctiveQuery> = (0..4)
        .map(|k| {
            parse_query(
                &format!(
                    "h{k}(P) :- t(P, <paintedBy>, A), t(A, <bornIn>, <city{}>)",
                    k % 5
                ),
                db.dict_mut(),
            )
            .unwrap()
            .query
        })
        .collect();

    let mut advisor = Advisor::builder(&db).build().expect("plain advisor");
    let rec = advisor.recommend(&workload).expect("recommendation");
    let mut dep = advisor.deploy(rec).expect("fresh session deploys");
    println!(
        "# adhoc_query: {} triples, {} views deployed, {} coverable + {} hybrid ad-hoc queries{}",
        db.len(),
        dep.view_count(),
        coverable.len(),
        hybrid_only.len(),
        if smoke { " [smoke]" } else { "" },
    );

    // -- Correctness gates before any timing. -----------------------------
    let mut views_only_plans: Vec<(QueryPlan, usize)> = Vec::new();
    for (qi, q) in coverable.iter().enumerate() {
        let plan = dep
            .plan_with(q, AnswerPolicy::ViewsOnly)
            .expect("coverable query must be views-only plannable");
        assert!(plan.is_views_only());
        let direct = evaluate(db.store(), q);
        assert_eq!(
            dep.answer_query(&plan).expect("fresh"),
            direct,
            "views-only answers must match direct evaluation (query {qi})"
        );
        views_only_plans.push((plan, qi));
    }
    let mut hybrid_plans: Vec<QueryPlan> = Vec::new();
    for q in coverable.iter().chain(hybrid_only.iter()) {
        let plan = dep.plan_with(q, AnswerPolicy::Hybrid).expect("plannable");
        let direct = evaluate(db.store(), q);
        assert_eq!(
            dep.answer_query(&plan).expect("fresh"),
            direct,
            "hybrid answers must match direct evaluation"
        );
        hybrid_plans.push(plan);
    }
    for q in &hybrid_only {
        assert!(
            matches!(
                dep.plan_with(q, AnswerPolicy::ViewsOnly),
                Err(SelectionError::NoViewsOnlyPlan { .. })
            ),
            "untuned predicate must be a typed views-only error"
        );
    }

    // -- Timed runs. ------------------------------------------------------
    let all: Vec<&ConjunctiveQuery> = coverable.iter().chain(hybrid_only.iter()).collect();
    let t_plan = time_it(|| {
        for _ in 0..repeats {
            for q in &all {
                let _ = dep.plan(q).expect("plannable");
            }
        }
    });
    let t_views = time_it(|| {
        for _ in 0..repeats {
            for (plan, _) in &views_only_plans {
                dep.answer_query(plan).expect("fresh");
            }
        }
    });
    let t_hybrid = time_it(|| {
        for _ in 0..repeats {
            for plan in &hybrid_plans {
                dep.answer_query(plan).expect("fresh");
            }
        }
    });
    let t_direct = time_it(|| {
        for _ in 0..repeats {
            for q in &all {
                evaluate(db.store(), q);
            }
        }
    });

    let table = Table::new(
        &["strategy", "queries", "total (s)", "per query (ms)"],
        &[12, 8, 10, 15],
    );
    let per = |t: f64, n: usize| format!("{:.3}", 1e3 * t / (repeats * n).max(1) as f64);
    table.row(&[
        "plan",
        &all.len().to_string(),
        &format!("{t_plan:.4}"),
        &per(t_plan, all.len()),
    ]);
    table.row(&[
        "views-only",
        &views_only_plans.len().to_string(),
        &format!("{t_views:.4}"),
        &per(t_views, views_only_plans.len()),
    ]);
    table.row(&[
        "hybrid",
        &hybrid_plans.len().to_string(),
        &format!("{t_hybrid:.4}"),
        &per(t_hybrid, hybrid_plans.len()),
    ]);
    table.row(&[
        "direct",
        &all.len().to_string(),
        &format!("{t_direct:.4}"),
        &per(t_direct, all.len()),
    ]);
    let per_query = |t: f64, n: usize| 1e3 * t / (repeats * n).max(1) as f64;
    rdfviews_bench::emit_bench_json(
        "adhoc_query",
        &[
            ("plan_per_query_ms", per_query(t_plan, all.len())),
            (
                "views_only_per_query_ms",
                per_query(t_views, views_only_plans.len()),
            ),
            (
                "hybrid_per_query_ms",
                per_query(t_hybrid, hybrid_plans.len()),
            ),
            ("direct_per_query_ms", per_query(t_direct, all.len())),
            ("triples", db.len() as f64),
        ],
    );
    println!("\n# views-only and hybrid answers verified set-equal to direct evaluation ✓");
}
