//! **Table 3** — workloads used for the reformulation experiments.
//!
//! Paper values (on the real Barton schema: 39 classes, 61 properties,
//! 106 statements):
//!
//! ```text
//! Q    |Q|  #a(Q)  #c(Q)  |Qr|  #a(Qr)  #c(Qr)
//! Q1     5     33     35    20     143     157
//! Q2    10     76     77   231    1436    1651
//! ```
//!
//! We generate satisfiable workloads of the same sizes on the Barton-like
//! dataset and report the same six columns; absolute reformulation counts
//! depend on which schema fragments the sampled queries touch, but the
//! pattern |Qr| ≫ |Q| (and super-linear growth from Q1 to Q2) must hold.

use rdfviews::reform::reformulate;
use rdfviews_bench::{env_usize, reform_bench, Table};

fn main() {
    let triples = env_usize("RDFVIEWS_FIG8_TRIPLES", 40_000);
    let rb = reform_bench(triples / 10, triples);
    println!(
        "== Table 3: reformulation workloads (Barton-like schema: {} classes, {} properties, {} statements) ==\n",
        rb.data.schema.class_count(),
        rb.data.properties.len(),
        rb.data.schema.len()
    );

    let table = Table::new(
        &["Q", "|Q|", "#a(Q)", "#c(Q)", "|Qr|", "#a(Qr)", "#c(Qr)"],
        &[4, 6, 7, 7, 7, 8, 8],
    );
    for (name, queries) in [("Q1", &rb.q1), ("Q2", &rb.q2)] {
        let atoms: usize = queries.iter().map(|q| q.atoms.len()).sum();
        let consts: usize = queries.iter().map(|q| q.const_count()).sum();
        let mut r_count = 0usize;
        let mut r_atoms = 0usize;
        let mut r_consts = 0usize;
        for q in queries.iter() {
            let ucq = reformulate(q, &rb.data.schema, &rb.data.vocab);
            r_count += ucq.len();
            r_atoms += ucq.atom_count();
            r_consts += ucq.const_count();
        }
        table.row(&[
            name,
            &queries.len().to_string(),
            &atoms.to_string(),
            &consts.to_string(),
            &r_count.to_string(),
            &r_atoms.to_string(),
            &r_consts.to_string(),
        ]);
    }
    println!(
        "\npaper:  Q1: 5/33/35 → 20/143/157   Q2: 10/76/77 → 231/1436/1651\n\
         expected shape: |Qr| ≫ |Q|, #a and #c grow proportionally."
    );
}
