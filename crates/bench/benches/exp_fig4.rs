//! **Figure 4** — strategy comparison on small workloads.
//!
//! Paper setup: two workloads of 5 queries (5 and 10 atoms per query),
//! star and chain shapes, high and low commonality; strategies Greedy,
//! Heuristic and Pruning of Theodoratos et al. vs DFS-AVF-STV and
//! GSTR-AVF-STV; 30-minute `stop_time`.
//!
//! Paper findings to reproduce: on 5-atom queries all strategies achieve
//! reductions, with DFS/GSTR best; on 10-atom queries the relational
//! strategies exhaust memory before producing any solution ("OOM") while
//! DFS/GSTR keep producing reductions.
//!
//! Scale: per-search budget `RDFVIEWS_BUDGET_SECS` (default 2 s), state
//! budget `RDFVIEWS_MAX_STATES` (default 300k) standing in for the JVM
//! heap.

use rdfviews::core::StrategyKind;
use rdfviews::workload::{Commonality, Shape};
use rdfviews_bench::{env_secs, env_usize, fmt_rcr, free_workload, run_strategy, Table};

fn main() {
    let budget = env_secs("RDFVIEWS_BUDGET_SECS", 6);
    let max_states = env_usize("RDFVIEWS_MAX_STATES", 1_500_000);
    println!("== Figure 4: relative cost reduction, small workloads ==");
    println!("(budget {budget:?}/search, state budget {max_states})\n");

    let strategies: [(&str, StrategyKind, bool, bool); 5] = [
        ("Greedy", StrategyKind::Greedy, false, false),
        ("Heuristic", StrategyKind::Heuristic, false, false),
        ("Pruning", StrategyKind::Pruning, false, false),
        ("DFS-AVF-STV", StrategyKind::Dfs, true, true),
        ("GSTR-AVF-STV", StrategyKind::Gstr, true, true),
    ];

    for atoms in [5usize, 10] {
        println!("--- 5 queries, {atoms} atoms/query ---");
        let table = Table::new(
            &["workload", "Greedy", "Heuristic", "Pruning", "DFS", "GSTR"],
            &[22, 9, 9, 9, 9, 9],
        );
        for shape in [Shape::Star, Shape::Chain] {
            for comm in [Commonality::High, Commonality::Low] {
                // Data scaled with the property pool so that atoms keep a
                // join fan-out above 1 in both commonality regimes.
                let pool = match comm {
                    Commonality::High => (atoms * 2).max(4),
                    Commonality::Low => 5 * atoms,
                };
                let bench = free_workload(shape, comm, 5, atoms, 42, 0.1, (400 * pool).min(30_000));
                let mut cells: Vec<String> = vec![format!(
                    "{} {}",
                    shape.name(),
                    match comm {
                        Commonality::High => "high-comm",
                        Commonality::Low => "low-comm",
                    }
                )];
                for (_, strat, avf, stv) in &strategies {
                    let out = run_strategy(&bench, *strat, *avf, *stv, budget, max_states);
                    cells.push(fmt_rcr(&out));
                }
                let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
                table.row(&refs);
            }
        }
        println!();
    }
    println!(
        "expected shape: all strategies reduce cost at 5 atoms; the relational\n\
         competitors hit the state budget (OOM) at 10 atoms while DFS/GSTR keep going."
    );
}
