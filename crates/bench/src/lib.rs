//! Shared harness for the experiment benches.
//!
//! Every `benches/exp_*.rs` target regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index). Budgets are laptop-scale by
//! default and overridable through `RDFVIEWS_*` environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `RDFVIEWS_BUDGET_SECS` | per-search wall-clock budget | 2 (fig4/6), 4 (fig7) |
//! | `RDFVIEWS_MAX_STATES` | state budget (simulated memory limit) | 300000 |
//! | `RDFVIEWS_FIG6_SIZES` | comma-separated workload sizes | `5,10,20,50` |
//! | `RDFVIEWS_FIG8_TRIPLES` | Barton-like dataset size for Figure 8 | 40000 |

use std::time::Duration;

use rdfviews::core::{
    search, CostModel, CostWeights, SearchConfig, SearchOutcome, State, StrategyKind,
};
use rdfviews::model::Dataset;
use rdfviews::query::ConjunctiveQuery;
use rdfviews::stats::collect_stats;
use rdfviews::workload::{
    generate_barton, generate_matching_data, generate_satisfiable, generate_workload,
    BartonDataset, BartonSpec, Commonality, SatisfiableSpec, Shape, WorkloadSpec,
};

/// Reads a `Duration` from the environment in whole seconds.
pub fn env_secs(var: &str, default: u64) -> Duration {
    Duration::from_secs(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// Reads a `usize` from the environment.
pub fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a comma-separated usize list from the environment.
pub fn env_usize_list(var: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|v| v.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

/// Writes a machine-readable `BENCH_<name>.json` summary — a flat map of
/// metric name to number — for CI trend tracking. The output directory is
/// the current one unless `RDFVIEWS_BENCH_DIR` overrides it. Failures are
/// reported on stderr, never panicked on (a bench must not fail because a
/// summary could not be written).
pub fn emit_bench_json(name: &str, metrics: &[(&str, f64)]) {
    let dir = std::env::var("RDFVIEWS_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let mut body = format!("{{\n  \"bench\": \"{name}\"");
    for (key, value) in metrics {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        body.push_str(&format!(",\n  \"{key}\": {rendered}"));
    }
    body.push_str("\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# warning: cannot write {}: {e}", path.display()),
    }
}

/// A minimal fixed-width table printer for the bench reports.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table and prints the header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Self {
        let t = Table {
            widths: widths.to_vec(),
        };
        t.row(headers);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        println!("{}", "-".repeat(total));
        t
    }

    /// Prints one row.
    pub fn row(&self, cells: &[&str]) {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(self.widths.iter()) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        println!("{}", line.trim_end());
    }
}

/// A generated workload together with the data matching its vocabulary.
pub struct Bench {
    /// The database.
    pub db: Dataset,
    /// The workload queries.
    pub workload: Vec<ConjunctiveQuery>,
}

/// Builds a free-form workload plus matching data (the paper's first
/// generator). `object_const_prob = 0` mimics the unselective atoms of
/// Barton-scale queries.
pub fn free_workload(
    shape: Shape,
    commonality: Commonality,
    queries: usize,
    atoms: usize,
    seed: u64,
    object_const_prob: f64,
    triples: usize,
) -> Bench {
    let mut db = Dataset::new();
    let mut spec = WorkloadSpec::new(queries, atoms, shape, commonality).with_seed(seed);
    spec.object_const_prob = object_const_prob;
    let workload = generate_workload(&spec, db.dict_mut());
    let (mut dict, mut store) = db.into_parts();
    generate_matching_data(&spec, &mut dict, &mut store, triples);
    Bench {
        db: Dataset::from_parts(dict, store),
        workload,
    }
}

/// Runs one search over a bench with the given strategy configuration and
/// calibrated weights (the paper's Section 6 settings).
pub fn run_strategy(
    bench: &Bench,
    strategy: StrategyKind,
    avf: bool,
    stop_var: bool,
    budget: Duration,
    max_states: usize,
) -> SearchOutcome {
    let cat = collect_stats(bench.db.store(), bench.db.dict(), &bench.workload);
    let mut model = CostModel::new(&cat, CostWeights::default());
    let s0 = State::initial(&bench.workload);
    model.calibrate_cm(&s0);
    search(
        s0,
        &model,
        &SearchConfig {
            strategy,
            avf,
            stop_var,
            stop_tt: false,
            time_budget: Some(budget),
            max_states: Some(max_states),
            vb_overlap_limit: 1,
            parallelism: 1,
        },
    )
}

/// The Barton-like setup for the reformulation experiments (Table 3,
/// Figures 7 and 8): a dataset plus the workloads Q1 (5 queries) and
/// Q2 ⊇ Q1 (10 queries), both satisfiable.
pub struct ReformBench {
    /// The dataset with its schema.
    pub data: BartonDataset,
    /// Q1: 5 satisfiable queries.
    pub q1: Vec<ConjunctiveQuery>,
    /// Q2: 10 satisfiable queries, the first 5 being Q1.
    pub q2: Vec<ConjunctiveQuery>,
}

/// Builds the reformulation bench at a given scale. The resource pool is
/// kept small relative to the triple count so that popular properties have
/// a join fan-out well above 1 — the regime (as in the real Barton
/// catalog) where multi-atom view estimates grow and the search has room
/// to improve on the initial state.
pub fn reform_bench(resources: usize, triples: usize) -> ReformBench {
    let resources = resources.min((triples / 40).max(8));
    let data = generate_barton(&BartonSpec::default().with_size(resources, triples));
    // Q1 ⊂ Q2, mirroring Table 3 ("Q1 is a subset of Q2"); ~6 atoms per
    // query approximates the paper's #a(Q1) = 33 over 5 queries. A low
    // object-constant probability keeps the queries unselective enough
    // that the initial state is improvable (Figure 7's decreasing curves).
    let mut spec = SatisfiableSpec::new(10, 6, Shape::Mixed).with_seed(0x71);
    spec.object_const_prob = 0.15;
    let q2 = generate_satisfiable(&data.db, &spec);
    let q1 = q2[..5].to_vec();
    ReformBench { data, q1, q2 }
}

/// A selective variant of [`reform_bench`] for the execution-time
/// experiment (Figure 8): a larger resource pool keeps per-property
/// fan-out ≈ 1, so the pre-reformulation branch views stay small enough to
/// materialize quickly. (The fan-out-heavy [`reform_bench`] is the right
/// regime for the *search* experiments, but its unselective branch views
/// can hold millions of rows — the very storage blow-up the cost model
/// penalizes — which makes wall-clock materialization of all ~10² of them
/// impractical for a bench.)
pub fn reform_bench_selective(resources: usize, triples: usize) -> ReformBench {
    let data = generate_barton(&BartonSpec::default().with_size(resources, triples));
    let q2 = generate_satisfiable(
        &data.db,
        &SatisfiableSpec::new(10, 6, Shape::Mixed).with_seed(0x71),
    );
    let q1 = q2[..5].to_vec();
    ReformBench { data, q1, q2 }
}

/// Formats an rcr for the tables: "OOM" when the state budget (the
/// simulated memory limit) died before any solution, a plain number
/// otherwise (0.000 = ran, found nothing better — e.g. the paper's Greedy
/// on star queries).
pub fn fmt_rcr(outcome: &SearchOutcome) -> String {
    if outcome.stats.out_of_budget && outcome.rcr() == 0.0 {
        "OOM".to_string()
    } else {
        format!("{:.3}", outcome.rcr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_workload_builds() {
        let b = free_workload(Shape::Chain, Commonality::High, 3, 5, 1, 0.2, 500);
        assert_eq!(b.workload.len(), 3);
        assert!(b.db.len() > 100);
    }

    #[test]
    fn run_strategy_smoke() {
        let b = free_workload(Shape::Chain, Commonality::High, 2, 3, 2, 0.2, 300);
        let out = run_strategy(
            &b,
            StrategyKind::Dfs,
            true,
            true,
            Duration::from_millis(300),
            50_000,
        );
        assert!(out.best_cost <= out.initial_cost);
    }

    #[test]
    fn reform_bench_builds() {
        let rb = reform_bench(200, 1500);
        assert_eq!(rb.q1.len(), 5);
        assert_eq!(rb.q2.len(), 10);
        assert_eq!(&rb.q2[..5], &rb.q1[..]);
    }

    #[test]
    fn bench_json_is_written() {
        let dir = std::env::temp_dir().join(format!("rdfviews-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("RDFVIEWS_BENCH_DIR", &dir);
        emit_bench_json("unit", &[("wall_s", 0.25), ("rows", 42.0)]);
        std::env::remove_var("RDFVIEWS_BENCH_DIR");
        let body = std::fs::read_to_string(dir.join("BENCH_unit.json")).unwrap();
        assert!(body.contains("\"bench\": \"unit\""));
        assert!(body.contains("\"wall_s\": 0.25"));
        assert!(body.contains("\"rows\": 42"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn env_helpers() {
        assert_eq!(env_usize("RDFVIEWS_DOES_NOT_EXIST", 7), 7);
        assert_eq!(
            env_secs("RDFVIEWS_DOES_NOT_EXIST", 3),
            Duration::from_secs(3)
        );
        assert_eq!(
            env_usize_list("RDFVIEWS_DOES_NOT_EXIST", &[1, 2]),
            vec![1, 2]
        );
    }
}
