//! Property tests for the surface lexer: `mask()` must be total over
//! arbitrary bytes — no panics, no infinite loops, and the masked view
//! must keep the byte length and newline geometry of its input (line
//! numbers in findings depend on that).

use proptest::prelude::*;
use xlint::lexer::mask;

/// Bend raw bytes toward the lexer's interesting alphabet: even bytes
/// become quote/comment/fence structure, odd bytes stay arbitrary. Raw
/// noise alone almost never forms `r#"`-style openings.
fn rust_flavor(raw: &[u8]) -> Vec<u8> {
    const ALPHABET: &[u8] = b"\"'/r#b*\\\n {}()!.;xX0_";
    raw.iter()
        .map(|&b| {
            if b & 1 == 0 {
                ALPHABET[(b as usize / 2) % ALPHABET.len()]
            } else {
                b
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn mask_is_total_and_geometry_preserving(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = rust_flavor(&raw);
        let masked = mask(&src);
        prop_assert_eq!(masked.code.len(), src.len());
        for (i, &b) in src.iter().enumerate() {
            // Newlines are preserved exactly (never introduced, never
            // swallowed), so line_of() stays meaningful in literals.
            prop_assert_eq!(masked.code[i] == b'\n', b == b'\n');
        }
        // line_starts is strictly increasing and starts at 0.
        prop_assert_eq!(masked.line_starts.first().copied(), Some(0));
        prop_assert!(masked.line_starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mask_never_grows_on_its_own_output(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        // Re-masking the masked view must also be total and keep the
        // same geometry (blanked interiors contain no new structure).
        let once = mask(&rust_flavor(&raw));
        let twice = mask(&once.code);
        prop_assert_eq!(twice.code.len(), once.code.len());
    }
}
