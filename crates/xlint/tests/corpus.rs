//! Corpus-driven tests: each fixture under `tests/corpus/` is linted and
//! its exact `(line, rule)` finding list asserted. The fixtures are raw
//! snippets, never compiled — `collect_rs_files` skips `corpus/` dirs,
//! and cargo only builds top-level files in `tests/`.

use std::path::{Path, PathBuf};

use xlint::{classify, lexer, scan_repo, Analysis, FileKind};

fn corpus_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name)
}

/// Lint a corpus fixture under a forced rel path + kind, returning the
/// sorted `(line, rule-code)` pairs the engine produced.
fn lint_as(name: &str, rel: &str, kind: FileKind) -> Vec<(u32, &'static str)> {
    let src = std::fs::read(corpus_path(name)).unwrap();
    Analysis::new(rel, &src, kind)
        .run()
        .into_iter()
        .map(|f| (f.line, f.rule.code()))
        .collect()
}

fn lint_lib(name: &str) -> Vec<(u32, &'static str)> {
    lint_as(name, "src/fixture.rs", FileKind::Library)
}

#[test]
fn x001_all_panic_forms_flagged() {
    assert_eq!(
        lint_lib("x001_violations.rs"),
        vec![
            (5, "X001"),  // unwrap
            (6, "X001"),  // expect
            (8, "X001"),  // panic!
            (11, "X001"), // todo!
            (12, "X001"), // unreachable!
        ]
    );
}

#[test]
fn x001_silent_in_binaries_and_tests() {
    assert_eq!(
        lint_as(
            "x001_violations.rs",
            "examples/fixture.rs",
            FileKind::Binary
        ),
        vec![]
    );
    assert_eq!(
        lint_as(
            "x001_violations.rs",
            "crates/x/tests/t.rs",
            FileKind::TestCode
        ),
        vec![]
    );
}

#[test]
fn tricky_negatives_stay_silent() {
    // Lints spelled inside strings, raw strings, comments, nested block
    // comments, and `#[cfg(test)]` modules must not fire.
    assert_eq!(lint_lib("tricky_negatives.rs"), vec![]);
}

#[test]
fn pragma_suppression_and_malformation() {
    assert_eq!(
        lint_lib("pragmas.rs"),
        vec![
            (10, "X001"), // pragma names the wrong rule
            (14, "X000"), // malformed: reason missing
            (15, "X001"), // ...and a malformed pragma suppresses nothing
            (21, "X001"), // pragma two lines up is out of range
        ]
    );
}

#[test]
fn x002_atomic_orderings() {
    assert_eq!(
        lint_lib("x002_atomics.rs"),
        vec![
            (8, "X002"),  // store without Ordering::
            (9, "X002"),  // fetch_add without Ordering::
            (10, "X002"), // SeqCst
        ]
    );
    // Atomics discipline also covers binaries...
    assert_eq!(
        lint_as("x002_atomics.rs", "examples/fixture.rs", FileKind::Binary),
        vec![(8, "X002"), (9, "X002"), (10, "X002")]
    );
    // ...but not test code.
    assert_eq!(
        lint_as("x002_atomics.rs", "crates/x/tests/t.rs", FileKind::TestCode),
        vec![]
    );
}

#[test]
fn x003_lock_discipline() {
    assert_eq!(
        lint_lib("x003_locks.rs"),
        vec![
            (7, "X001"),  // the unwrap itself is also a panic path
            (7, "X003"),  // .lock().unwrap()
            (10, "X003"), // two stripe locks in one expression
            (16, "X001"), // the RwLock unwrap is also a panic path
            (16, "X003"), // .read().unwrap() on the generation slot
            (17, "X001"), // the RwLock expect is also a panic path
            (17, "X003"), // .write().expect() on the generation slot
            (20, "X001"), // io read unwrap: a panic path, but NOT X003
        ]
    );
}

#[test]
fn x004_fires_only_on_deterministic_paths() {
    assert_eq!(
        lint_as(
            "x004_wire.rs",
            "crates/durability/src/fixture.rs",
            FileKind::Library
        ),
        vec![
            (3, "X004"), // use ... HashMap
            (4, "X004"), // use ... Instant
            (6, "X004"), // HashMap in the signature
            (7, "X004"), // Instant::now()
            (8, "X004"), // HashMap::new()
        ]
    );
    // The same source is fine anywhere else in the tree.
    assert_eq!(lint_lib("x004_wire.rs"), vec![]);
}

#[test]
fn x005_duplicate_wire_tags() {
    let findings = lint_as(
        "x005_tags.rs",
        "crates/durability/src/bundle.rs",
        FileKind::Library,
    );
    // SEC_DUP reuses SEC_HEADER's value; the shifted expression is not a
    // tag, and REC_/SEC_ namespaces do not collide with each other.
    assert_eq!(findings, vec![(5, "X005")]);
}

#[test]
fn x006_safety_comments() {
    assert_eq!(lint_lib("x006_unsafe.rs"), vec![(4, "X006")]);
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

#[test]
fn repo_tree_is_clean() {
    let (files, findings) = scan_repo(&workspace_root()).unwrap();
    assert!(files > 50, "repo scan saw only {files} files");
    assert!(
        findings.is_empty(),
        "the tree must lint clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn classify_matches_repo_layout() {
    assert_eq!(classify("src/exec_persist.rs"), FileKind::Library);
    assert_eq!(classify("crates/xlint/src/rules.rs"), FileKind::Library);
    assert_eq!(classify("src/bin/rdfviews.rs"), FileKind::Binary);
    assert_eq!(classify("examples/durable_deploy.rs"), FileKind::Binary);
    assert_eq!(
        classify("crates/bench/benches/join_throughput.rs"),
        FileKind::TestCode
    );
    assert_eq!(
        classify("crates/core/tests/pipeline.rs"),
        FileKind::TestCode
    );
}

// ---- X007: the CI bench-contract cross-check -----------------------------

/// Build a throwaway mini-tree with a CI workflow and a bench source, run
/// the X007 checker against it, and return the finding lines.
fn x007_findings(bench_src: &str) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!(
        "xlint-x007-{}-{}",
        std::process::id(),
        bench_src.len()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join(".github/workflows")).unwrap();
    std::fs::create_dir_all(dir.join("crates/bench/benches")).unwrap();
    std::fs::write(
        dir.join(".github/workflows/ci.yml"),
        r#"
      - name: validate
        run: |
          python3 - <<'EOF'
          import json
          m = json.load(open("BENCH_mini.json"))
          for shape in ("alpha", "beta"):
              key = f"wall_{shape}_s"
              assert m[key] > 0
          assert m["tuples_total"] > 0
          EOF
"#,
    )
    .unwrap();
    std::fs::write(dir.join("crates/bench/benches/mini.rs"), bench_src).unwrap();
    let findings = xlint::check_ci_contract(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    findings.into_iter().map(|f| f.to_string()).collect()
}

#[test]
fn x007_flags_missing_fields_and_accepts_complete_manifests() {
    // Bench names every expanded key: clean.
    let complete = r#"
        const FIELDS: &[&str] = &["wall_alpha_s", "wall_beta_s", "tuples_total"];
    "#;
    assert_eq!(x007_findings(complete), Vec::<String>::new());

    // `wall_beta_s` validated by CI but absent from the bench: one X007.
    let incomplete = r#"
        const FIELDS: &[&str] = &["wall_alpha_s", "tuples_total"];
    "#;
    let found = x007_findings(incomplete);
    assert_eq!(found.len(), 1, "got: {found:?}");
    assert!(
        found[0].contains("X007") && found[0].contains("wall_beta_s"),
        "got: {found:?}"
    );
}

// ---- lexer spot checks on corpus bytes ------------------------------------

#[test]
fn masking_preserves_geometry_on_every_fixture() {
    let dir = corpus_path("");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let src = std::fs::read(&path).unwrap();
        let masked = lexer::mask(&src);
        assert_eq!(masked.code.len(), src.len(), "{path:?}");
        for (i, &b) in src.iter().enumerate() {
            assert_eq!(
                masked.code[i] == b'\n',
                b == b'\n',
                "{path:?}: newline geometry changed at byte {i}"
            );
        }
    }
}
