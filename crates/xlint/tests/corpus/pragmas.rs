// Corpus fixture: pragma coverage and malformation.

pub fn suppressed(o: Option<u32>) -> u32 {
    // xlint: allow(X001, reason = "fixture: caller checked is_some")
    o.unwrap()
}

pub fn wrong_rule(o: Option<u32>) -> u32 {
    // xlint: allow(X002, reason = "suppresses the wrong rule")
    o.unwrap()
}

pub fn missing_reason(o: Option<u32>) -> u32 {
    // xlint: allow(X001)
    o.unwrap()
}

pub fn too_far(o: Option<u32>) -> u32 {
    // xlint: allow(X001, reason = "covers only its own and the next line")

    o.unwrap()
}
