// Corpus fixture: X006 SAFETY comments.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller promises `p` is valid and aligned.
    unsafe { *p }
}
