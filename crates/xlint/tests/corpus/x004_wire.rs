// Corpus fixture: X004 determinism — linted under a durability rel path.

use std::collections::HashMap;
use std::time::Instant;

pub fn decode(bytes: &[u8]) -> HashMap<u8, u8> {
    let started = Instant::now();
    let mut m = HashMap::new();
    for b in bytes {
        m.insert(*b, started.elapsed().as_secs() as u8);
    }
    m
}
