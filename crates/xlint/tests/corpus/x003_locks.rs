// Corpus fixture: X003 lock discipline.

use std::io::Read;
use std::sync::{Mutex, PoisonError, RwLock};

pub fn locks(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let v = *a.lock().unwrap();
    let w = *a.lock().unwrap_or_else(PoisonError::into_inner);
    let both = *a.lock().unwrap_or_else(PoisonError::into_inner)
        + *b.lock().unwrap_or_else(PoisonError::into_inner);
    v + w + both
}

/// Generation-swap slot: RwLock acquisitions must stay poison-tolerant.
pub fn generations(slot: &RwLock<u32>, src: &mut std::fs::File) -> u32 {
    let pinned = *slot.read().unwrap();
    let published = *slot.write().expect("slot poisoned");
    let clean = *slot.read().unwrap_or_else(PoisonError::into_inner);
    let mut buf = [0u8; 4];
    let _io = src.read(&mut buf).unwrap();
    pinned + published + clean + u32::from(buf[0])
}
