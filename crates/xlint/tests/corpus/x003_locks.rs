// Corpus fixture: X003 lock discipline.

use std::sync::{Mutex, PoisonError};

pub fn locks(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let v = *a.lock().unwrap();
    let w = *a.lock().unwrap_or_else(PoisonError::into_inner);
    let both = *a.lock().unwrap_or_else(PoisonError::into_inner)
        + *b.lock().unwrap_or_else(PoisonError::into_inner);
    v + w + both
}
