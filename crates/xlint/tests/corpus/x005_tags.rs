// Corpus fixture: X005 wire-tag uniqueness — linted as bundle.rs.

pub const SEC_HEADER: u8 = 1;
pub const SEC_INDEX: u8 = 2;
pub const SEC_DUP: u8 = 1;
pub const TAG_SHIFTED: u64 = 1 << 20;
pub const WIRE_MAGIC: u32 = 7;
pub const REC_COMMIT: u8 = 2;
