// Corpus fixture: X001 true positives. The integration test asserts the
// exact (line, rule) list, so line numbers here are load-bearing.

pub fn violations(v: Vec<u32>, o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = v.first().expect("nonempty");
    if a > *b {
        panic!("bad ordering");
    }
    match a {
        0 => todo!(),
        1 => unreachable!(),
        _ => a + b,
    }
}
