//! Corpus fixture: tricky negatives. Doc comments may say unwrap() or
//! panic!("x") freely; nothing in this file may produce a finding.

pub fn clean() -> &'static str {
    // a comment mentioning x.unwrap() and panic!("no")
    let s = "calls .unwrap() and panic! inside a string";
    let r = r#"raw string with .expect("x") and todo!()"#;
    let c = 'x'; // char literal, not a lifetime start
    let _lt: &'static str = s; // lifetime, not a char literal
    let r#type = r; // raw identifier, not a raw string
    /* block comment /* nested: unreachable!() */ still a comment */
    if c == 'x' {
        r#type
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_panic_freely() {
        let v = [clean()];
        assert_eq!(*v.first().unwrap(), clean());
        if v.is_empty() {
            panic!("unreachable in practice");
        }
    }
}
