// Corpus fixture: X002 atomic-ordering discipline.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn orderings(a: &AtomicU64) -> u64 {
    a.store(1, Ordering::Relaxed);
    a.fetch_add(1, Ordering::AcqRel);
    a.store(2, 0);
    let x = a.fetch_add(3);
    a.store(4, Ordering::SeqCst);
    x + a.load(Ordering::Acquire)
}
