//! Self-tests of the `xlint` binary: the ISSUE-mandated guarantee that
//! reintroducing a violation makes the gate exit nonzero, and that the
//! current tree passes it.

use std::path::{Path, PathBuf};
use std::process::Command;

fn corpus(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

#[test]
fn violation_fixture_fails_the_gate() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .args(["--kind", "library"])
        .arg(corpus("x001_violations.rs"))
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "the gate must fail on a violation fixture"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("X001"), "stdout was: {stdout}");
    assert!(
        stdout.lines().all(|l| l.contains(": X00")),
        "findings must print as file:line: X00N message; stdout was: {stdout}"
    );
}

#[test]
fn clean_fixture_passes_the_gate() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .args(["--kind", "library"])
        .arg(corpus("tricky_negatives.rs"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "clean fixture must pass; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn repo_mode_passes_on_the_current_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .arg("--deny-all")
        .args(["--root".as_ref(), workspace_root().as_os_str()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "`xlint --deny-all` must pass on the shipped tree; stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_xlint"))
        .arg("--frobnicate")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
