//! The `xlint` CLI. See the crate docs for the rule catalog.
//!
//! Usage:
//!
//! ```text
//! cargo run -p xlint -- [--deny-all] [--root <dir>]
//! cargo run -p xlint -- [--kind library|binary|test] <file.rs>...
//! ```
//!
//! With no file arguments the whole workspace is scanned (repo mode,
//! including the cross-file X007 CI-contract check). With explicit
//! files only the per-file rules run; `--kind` overrides the path-based
//! classification, which fixture self-tests use to lint test corpus
//! snippets as if they were library code.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::FileKind;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut kind: Option<FileKind> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => {} // findings already always deny; kept for CI legibility
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--kind" => match args.next().as_deref() {
                Some("library") => kind = Some(FileKind::Library),
                Some("binary") => kind = Some(FileKind::Binary),
                Some("test") => kind = Some(FileKind::TestCode),
                _ => return usage("--kind needs library|binary|test"),
            },
            "--help" | "-h" => {
                println!("xlint: repo-specific static analysis (rules X001-X007)");
                println!("  cargo run -p xlint -- [--deny-all] [--root <dir>]");
                println!("  cargo run -p xlint -- [--kind library|binary|test] <file.rs>...");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    if !files.is_empty() {
        return run_files(&files, kind);
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => return usage("no workspace root found (run from the repo or pass --root)"),
    };
    match xlint::scan_repo(&root) {
        Ok((scanned, findings)) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!(
                "xlint: {} files scanned, {} finding{}",
                scanned,
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xlint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_files(files: &[PathBuf], kind: Option<FileKind>) -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut findings = Vec::new();
    for file in files {
        let result = match kind {
            Some(k) => xlint::lint_file_as(&cwd, file, k),
            None => xlint::lint_file(&cwd, file),
        };
        match result {
            Ok(fs) => findings.extend(fs),
            Err(e) => {
                eprintln!("xlint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        }
    }
    findings.sort();
    for f in &findings {
        println!("{f}");
    }
    eprintln!(
        "xlint: {} file{} scanned, {} finding{}",
        files.len(),
        if files.len() == 1 { "" } else { "s" },
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("xlint: {msg} (try --help)");
    ExitCode::from(2)
}
