//! The xlint rule engine: repo-specific lints X001–X007 over masked
//! source views, plus the `// xlint: allow(...)` pragma machinery.
//!
//! | Rule | Checks |
//! |------|--------|
//! | X000 | pragma hygiene: every `xlint:` comment parses and has a reason |
//! | X001 | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in non-test library code |
//! | X002 | atomic ops name an explicit `Ordering`; `SeqCst` is forbidden |
//! | X003 | `.lock()`/`.read()`/`.write()` results are not unwrapped; one stripe lock per expression |
//! | X004 | no nondeterminism sources in byte-stable encoding paths |
//! | X005 | wire/section tag constants are unique per namespace |
//! | X006 | every `unsafe` carries a `// SAFETY:` comment |
//! | X007 | CI-validated bench JSON fields appear as literals in the bench source |

use crate::lexer::{
    find_from, find_word_starts, is_ident_byte, mask, skip_balanced, skip_ws, Masked,
};
use std::fmt;
use std::path::Path;

/// The lint rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    X000,
    X001,
    X002,
    X003,
    X004,
    X005,
    X006,
    X007,
}

impl Rule {
    /// The four-character code printed in findings and named in pragmas.
    pub fn code(self) -> &'static str {
        match self {
            Rule::X000 => "X000",
            Rule::X001 => "X001",
            Rule::X002 => "X002",
            Rule::X003 => "X003",
            Rule::X004 => "X004",
            Rule::X005 => "X005",
            Rule::X006 => "X006",
            Rule::X007 => "X007",
        }
    }

    fn from_code(code: &str) -> Option<Rule> {
        match code {
            "X000" => Some(Rule::X000),
            "X001" => Some(Rule::X001),
            "X002" => Some(Rule::X002),
            "X003" => Some(Rule::X003),
            "X004" => Some(Rule::X004),
            "X005" => Some(Rule::X005),
            "X006" => Some(Rule::X006),
            "X007" => Some(Rule::X007),
            _ => None,
        }
    }
}

/// One lint finding, printable as `file:line: X00N message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: Rule,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path,
            self.line,
            self.rule.code(),
            self.msg
        )
    }
}

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a `lib` target: the full discipline applies.
    Library,
    /// Binaries and examples: panics are acceptable UX, atomics are not.
    Binary,
    /// Integration tests and benches: only pragma hygiene and `unsafe`
    /// documentation apply.
    TestCode,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileKind {
    let comps: Vec<&str> = rel.split('/').collect();
    if comps.iter().any(|c| *c == "tests" || *c == "benches") {
        return FileKind::TestCode;
    }
    if comps.first() == Some(&"examples")
        || comps.contains(&"examples")
        || comps.contains(&"bin")
        || rel.ends_with("build.rs")
    {
        return FileKind::Binary;
    }
    if comps.contains(&"src") {
        return FileKind::Library;
    }
    FileKind::Binary
}

/// A parsed `// xlint: allow(X00N[, X00M…], reason = "…")` pragma. It
/// suppresses the named rules on its own line and on the next line.
#[derive(Debug, Clone)]
struct Pragma {
    line: u32,
    rules: Vec<Rule>,
}

/// The per-file analysis state shared by all rules.
pub struct Analysis {
    rel: String,
    kind: FileKind,
    masked: Masked,
    /// 1-based; `true` when the line sits inside a `#[cfg(test)]` item
    /// or an inline `mod tests`.
    test_lines: Vec<bool>,
    pragmas: Vec<Pragma>,
    findings: Vec<Finding>,
}

impl Analysis {
    /// Lex and analyze one file's bytes under an explicit classification.
    pub fn new(rel: &str, src: &[u8], kind: FileKind) -> Analysis {
        let masked = mask(src);
        let test_lines = test_line_mask(&masked);
        let mut a = Analysis {
            rel: rel.to_string(),
            kind,
            masked,
            test_lines,
            pragmas: Vec::new(),
            findings: Vec::new(),
        };
        a.collect_pragmas();
        a
    }

    /// Lex and analyze one file, classifying it from its relative path.
    pub fn from_path(rel: &str, src: &[u8]) -> Analysis {
        Analysis::new(rel, src, classify(rel))
    }

    fn line_of(&self, offset: usize) -> u32 {
        self.masked.line_of(offset)
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    fn suppressed(&self, rule: Rule, line: u32) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.rules.contains(&rule) && (p.line == line || p.line + 1 == line))
    }

    fn push(&mut self, rule: Rule, line: u32, msg: String) {
        if rule != Rule::X000 && self.suppressed(rule, line) {
            return;
        }
        self.findings.push(Finding {
            path: self.rel.clone(),
            line,
            rule,
            msg,
        });
    }

    /// Run every per-file rule and return the findings.
    pub fn run(mut self) -> Vec<Finding> {
        self.rule_x001();
        self.rule_x002();
        self.rule_x003();
        self.rule_x004();
        self.rule_x005();
        self.rule_x006();
        self.findings.sort();
        self.findings
    }

    // ---- pragmas (X000) -------------------------------------------------

    fn collect_pragmas(&mut self) {
        // A comment is pragma-intent only when its content (after the
        // comment sigils) STARTS with `xlint:` — prose that merely
        // mentions xlint mid-sentence is not held to pragma grammar.
        let comments: Vec<(u32, String)> = self
            .masked
            .comments
            .iter()
            .filter(|c| {
                c.text
                    .trim_start_matches(['/', '!', '*', ' ', '\t'])
                    .starts_with("xlint:")
            })
            .map(|c| (c.line, c.text.clone()))
            .collect();
        for (line, text) in comments {
            match parse_pragma(&text) {
                Ok(rules) => self.pragmas.push(Pragma { line, rules }),
                Err(why) => self.findings.push(Finding {
                    path: self.rel.clone(),
                    line,
                    rule: Rule::X000,
                    msg: format!("malformed xlint pragma: {why}"),
                }),
            }
        }
    }

    // ---- X001: panics in library code -----------------------------------

    fn rule_x001(&mut self) {
        if self.kind != FileKind::Library {
            return;
        }
        let mut hits: Vec<(u32, &'static str)> = Vec::new();
        for needle in ["unwrap", "expect"] {
            for pos in method_calls(&self.masked.code, needle) {
                hits.push((self.line_of(pos), needle));
            }
        }
        for needle in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            for pos in find_word_starts(&self.masked.code, needle.as_bytes()) {
                hits.push((self.line_of(pos), needle));
            }
        }
        for (line, what) in hits {
            if self.in_test(line) {
                continue;
            }
            self.push(
                Rule::X001,
                line,
                format!(
                    "`{what}` in non-test library code; return a typed error or justify with \
                     `// xlint: allow(X001, reason = \"...\")`"
                ),
            );
        }
    }

    // ---- X002: atomic orderings -----------------------------------------

    fn rule_x002(&mut self) {
        if self.kind == FileKind::TestCode {
            return;
        }
        const ATOMIC_METHODS: [&str; 13] = [
            "load",
            "store",
            "compare_exchange",
            "compare_exchange_weak",
            "fetch_add",
            "fetch_sub",
            "fetch_and",
            "fetch_or",
            "fetch_xor",
            "fetch_nand",
            "fetch_max",
            "fetch_min",
            "fetch_update",
        ];
        let mut hits: Vec<(u32, String)> = Vec::new();
        for needle in ATOMIC_METHODS {
            for pos in method_calls(&self.masked.code, needle) {
                let open = match paren_after(&self.masked.code, pos + 1 + needle.len()) {
                    Some(p) => p,
                    None => continue,
                };
                let close = skip_balanced(&self.masked.code, open, b'(', b')');
                let args = &self.masked.code[open + 1..close.saturating_sub(1).max(open + 1)];
                if args.iter().all(|b| b.is_ascii_whitespace()) {
                    // Zero-arg call: a getter, not an atomic op.
                    continue;
                }
                if find_from(args, b"Ordering::", 0).is_none() {
                    hits.push((
                        self.line_of(pos),
                        format!("atomic `{needle}` without an explicit `Ordering::...` argument"),
                    ));
                }
            }
        }
        for pos in find_word_starts(&self.masked.code, b"SeqCst") {
            if word_boundary_after(&self.masked.code, pos + "SeqCst".len()) {
                hits.push((
                    self.line_of(pos),
                    "`SeqCst` is forbidden; the search-core counters are documented \
                     Relaxed/Acquire-Release — justify any stronger ordering with a pragma"
                        .to_string(),
                ));
            }
        }
        for (line, msg) in hits {
            if self.in_test(line) {
                continue;
            }
            self.push(Rule::X002, line, msg);
        }
    }

    // ---- X003: lock discipline ------------------------------------------

    fn rule_x003(&mut self) {
        if self.kind != FileKind::Library {
            return;
        }
        let code = &self.masked.code;
        // (a) `.lock()` immediately unwrapped/expected.
        let lock_calls = method_calls(code, "lock");
        let mut hits: Vec<(u32, String)> = Vec::new();
        for pos in &lock_calls {
            let open = match paren_after(code, pos + ".lock".len()) {
                Some(p) => p,
                None => continue,
            };
            let after = skip_ws(code, skip_balanced(code, open, b'(', b')'));
            let chained_panic = ["unwrap", "expect"]
                .iter()
                .any(|m| code.get(after) == Some(&b'.') && matches_method_at(code, after, m));
            if chained_panic {
                hits.push((
                    self.line_of(*pos),
                    "`.lock()` result unwrapped in library code; handle poisoning \
                     (e.g. `unwrap_or_else(PoisonError::into_inner)`) or pragma-justify"
                        .to_string(),
                ));
            }
        }
        // (a') RwLock acquisitions — `.read()` / `.write()` with an empty
        // argument list (io reads and writes take a buffer, so they never
        // match) — immediately unwrapped/expected. The generation-swap
        // slots publish whole `Arc`s under an `RwLock`; their readers must
        // stay poison-tolerant (`read_unpoisoned` / `write_unpoisoned`)
        // instead of cascading one writer panic into every pinned read.
        for needle in ["read", "write"] {
            for pos in method_calls(code, needle) {
                let open = match paren_after(code, pos + 1 + needle.len()) {
                    Some(p) => p,
                    None => continue,
                };
                let close = skip_ws(code, open + 1);
                if code.get(close) != Some(&b')') {
                    continue;
                }
                let after = skip_ws(code, close + 1);
                let chained_panic = ["unwrap", "expect"]
                    .iter()
                    .any(|m| code.get(after) == Some(&b'.') && matches_method_at(code, after, m));
                if chained_panic {
                    hits.push((
                        self.line_of(pos),
                        format!(
                            "`.{needle}()` result unwrapped in library code; handle poisoning \
                             (e.g. `unwrap_or_else(PoisonError::into_inner)`) or pragma-justify"
                        ),
                    ));
                }
            }
        }
        // (b) two lock acquisitions inside one statement.
        let mut seg: Vec<usize> = Vec::new();
        let mut li = 0usize;
        for (i, &b) in code.iter().enumerate() {
            if li < lock_calls.len() && lock_calls[li] == i {
                seg.push(i);
                li += 1;
            }
            if b == b';' || b == b'{' || b == b'}' {
                if seg.len() >= 2 {
                    hits.push((
                        self.line_of(seg[1]),
                        "two lock acquisitions in one expression; take stripe locks one \
                         at a time to keep the lock order deadlock-free"
                            .to_string(),
                    ));
                }
                seg.clear();
            }
        }
        if seg.len() >= 2 {
            hits.push((
                self.line_of(seg[1]),
                "two lock acquisitions in one expression; take stripe locks one at a \
                 time to keep the lock order deadlock-free"
                    .to_string(),
            ));
        }
        for (line, msg) in hits {
            if self.in_test(line) {
                continue;
            }
            self.push(Rule::X003, line, msg);
        }
    }

    // ---- X004: determinism in encoding paths ----------------------------

    /// Paths whose encoding contract is byte-stable.
    fn deterministic_path(&self) -> bool {
        self.rel == "src/exec_persist.rs" || self.rel.starts_with("crates/durability/src/")
    }

    fn rule_x004(&mut self) {
        if !self.deterministic_path() {
            return;
        }
        let mut hits: Vec<(u32, String)> = Vec::new();
        for needle in ["HashMap", "HashSet", "SystemTime", "Instant"] {
            for pos in find_word_starts(&self.masked.code, needle.as_bytes()) {
                if !word_boundary_after(&self.masked.code, pos + needle.len()) {
                    continue;
                }
                hits.push((
                    self.line_of(pos),
                    format!(
                        "`{needle}` is a nondeterminism source; this file's encoding must \
                         be byte-stable (sort, or use the Fx variants outside encode order)"
                    ),
                ));
            }
        }
        for (line, msg) in hits {
            if self.in_test(line) {
                continue;
            }
            self.push(Rule::X004, line, msg);
        }
    }

    // ---- X005: unique wire tags ------------------------------------------

    fn rule_x005(&mut self) {
        const TAG_PREFIXES: [&str; 4] = ["SEC_", "TAG_", "REC_", "WIRE_"];
        let code = &self.masked.code;
        let mut tags: Vec<(String, String, u64, u32)> = Vec::new(); // prefix, name, value, line
        for pos in find_word_starts(code, b"const") {
            let mut i = skip_ws(code, pos + "const".len());
            let name_start = i;
            while i < code.len() && is_ident_byte(code[i]) {
                i += 1;
            }
            let name = String::from_utf8_lossy(&code[name_start..i]).into_owned();
            let Some(prefix) = TAG_PREFIXES.iter().find(|p| name.starts_with(**p)) else {
                continue;
            };
            i = skip_ws(code, i);
            if code.get(i) != Some(&b':') {
                continue;
            }
            i = skip_ws(code, i + 1);
            let ty_start = i;
            while i < code.len() && is_ident_byte(code[i]) {
                i += 1;
            }
            let ty = &code[ty_start..i];
            if !matches!(ty, b"u8" | b"u16" | b"u32" | b"u64" | b"usize") {
                continue;
            }
            i = skip_ws(code, i);
            if code.get(i) != Some(&b'=') {
                continue;
            }
            let val_start = skip_ws(code, i + 1);
            let mut j = val_start;
            while j < code.len() && code[j] != b';' {
                j += 1;
            }
            let Some(value) = parse_int(&code[val_start..j]) else {
                continue; // expressions like `1 << 20` are not tags
            };
            tags.push((prefix.to_string(), name, value, self.line_of(pos)));
        }
        let mut hits: Vec<(u32, String)> = Vec::new();
        for (i, (prefix, name, value, line)) in tags.iter().enumerate() {
            for (p2, n2, v2, _) in tags.iter().take(i) {
                if p2 == prefix && v2 == value {
                    hits.push((
                        *line,
                        format!(
                            "wire tag value {value} duplicated: `{n2}` and `{name}` \
                             share it; tags must be unique per namespace"
                        ),
                    ));
                }
            }
        }
        for (line, msg) in hits {
            self.push(Rule::X005, line, msg);
        }
    }

    // ---- X006: documented unsafe ----------------------------------------

    fn rule_x006(&mut self) {
        let code = &self.masked.code;
        let mut hits: Vec<u32> = Vec::new();
        for pos in find_word_starts(code, b"unsafe") {
            if !word_boundary_after(code, pos + "unsafe".len()) {
                continue;
            }
            let line = self.line_of(pos);
            let documented = self.masked.comments.iter().any(|c| {
                (c.text.contains("SAFETY:") || c.text.contains("# Safety"))
                    && c.line <= line
                    && line.saturating_sub(c.line) <= 3
            });
            if !documented {
                hits.push(line);
            }
        }
        for line in hits {
            self.push(
                Rule::X006,
                line,
                "`unsafe` without a `// SAFETY:` comment within the preceding 3 lines".to_string(),
            );
        }
    }
}

/// Parse the body of an `xlint:` comment into suppressed rules.
fn parse_pragma(text: &str) -> Result<Vec<Rule>, String> {
    let Some(after) = text.split("xlint:").nth(1) else {
        return Err("missing `allow(...)`".to_string());
    };
    let after = after.trim_start();
    let Some(body) = after.strip_prefix("allow(") else {
        return Err("expected `allow(` after `xlint:`".to_string());
    };
    let Some(end) = body.rfind(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let body = &body[..end];
    let Some((ids, reason)) = body.split_once("reason") else {
        return Err("missing mandatory `reason = \"...\"`".to_string());
    };
    let reason = reason.trim_start();
    let Some(reason) = reason.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let reason = reason.trim();
    if !(reason.len() >= 3 && reason.starts_with('"') && reason.ends_with('"')) {
        return Err("reason must be a nonempty quoted string".to_string());
    }
    let mut rules = Vec::new();
    for id in ids.split(',') {
        let id = id.trim();
        if id.is_empty() {
            continue;
        }
        match Rule::from_code(id) {
            Some(Rule::X000) => return Err("X000 (pragma hygiene) cannot be allowed".to_string()),
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule id `{id}`")),
        }
    }
    if rules.is_empty() {
        return Err("no rule ids named".to_string());
    }
    Ok(rules)
}

/// Positions of `.name` method references that are actual calls
/// (`.name` at an identifier boundary, followed by `(`).
fn method_calls(code: &[u8], name: &str) -> Vec<usize> {
    let needle: Vec<u8> = [b".", name.as_bytes()].concat();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = find_from(code, &needle, i) {
        i = pos + 1;
        if matches_method_at(code, pos, name) {
            out.push(pos);
        }
    }
    out
}

/// Does `.name(` (with optional whitespace before the paren) start at
/// `code[at]`?
fn matches_method_at(code: &[u8], at: usize, name: &str) -> bool {
    if code.get(at) != Some(&b'.') {
        return false;
    }
    let end = at + 1 + name.len();
    if code.get(at + 1..end) != Some(name.as_bytes()) {
        return false;
    }
    if !word_boundary_after(code, end) {
        return false;
    }
    paren_after(code, end).is_some()
}

/// The offset of a `(` following optional whitespace, if present.
fn paren_after(code: &[u8], from: usize) -> Option<usize> {
    let i = skip_ws(code, from);
    (code.get(i) == Some(&b'(')).then_some(i)
}

fn word_boundary_after(code: &[u8], at: usize) -> bool {
    code.get(at).map(|b| !is_ident_byte(*b)).unwrap_or(true)
}

/// Parse a plain integer literal (decimal / hex / octal / binary, with
/// `_` separators and an optional `uNN` suffix).
fn parse_int(raw: &[u8]) -> Option<u64> {
    let text = String::from_utf8_lossy(raw);
    let mut s = text.trim().replace('_', "");
    for suffix in ["u8", "u16", "u32", "u64", "usize"] {
        if let Some(stripped) = s.strip_suffix(suffix) {
            s = stripped.to_string();
            break;
        }
    }
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = s.strip_prefix("0o") {
        return u64::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = s.strip_prefix("0b") {
        return u64::from_str_radix(bin, 2).ok();
    }
    s.parse().ok()
}

/// Per-line mask of `#[cfg(test)]` items, `#[test]` functions, and
/// inline `mod tests { .. }` regions.
fn test_line_mask(m: &Masked) -> Vec<bool> {
    let code = &m.code;
    let mut mask = vec![false; m.line_count() + 2];
    let mut regions: Vec<(usize, usize)> = Vec::new();

    // Attribute-marked items.
    let mut i = 0usize;
    while let Some(pos) = find_from(code, b"#[", i) {
        let attr_end = skip_balanced(code, pos + 1, b'[', b']');
        i = pos + 2;
        let attr = &code[pos..attr_end];
        if !attr_marks_test(attr) {
            continue;
        }
        // Skip any stacked attributes after this one.
        let mut j = skip_ws(code, attr_end);
        while code.get(j) == Some(&b'#') && code.get(j + 1) == Some(&b'[') {
            j = skip_ws(code, skip_balanced(code, j + 1, b'[', b']'));
        }
        // The item extends to its matching close brace (or a semicolon).
        let mut k = j;
        while k < code.len() && code[k] != b'{' && code[k] != b';' {
            k += 1;
        }
        let end = if code.get(k) == Some(&b'{') {
            skip_balanced(code, k, b'{', b'}')
        } else {
            (k + 1).min(code.len())
        };
        regions.push((pos, end));
        i = end;
    }

    // Inline `mod tests` / `mod test` without an attribute.
    for pos in find_word_starts(code, b"mod") {
        if !word_boundary_after(code, pos + 3) {
            continue;
        }
        let name_start = skip_ws(code, pos + 3);
        let mut ne = name_start;
        while ne < code.len() && is_ident_byte(code[ne]) {
            ne += 1;
        }
        if !matches!(&code[name_start..ne], b"tests" | b"test") {
            continue;
        }
        let brace = skip_ws(code, ne);
        if code.get(brace) == Some(&b'{') {
            regions.push((pos, skip_balanced(code, brace, b'{', b'}')));
        }
    }

    for (s, e) in regions {
        let first = m.line_of(s) as usize;
        let last = m.line_of(e.saturating_sub(1).max(s)) as usize;
        for slot in mask.iter_mut().take(last + 1).skip(first) {
            *slot = true;
        }
    }
    mask
}

/// Does an attribute's masked text mark a test item? `test` must appear
/// at a word boundary and not inside `not(test)`.
fn attr_marks_test(attr: &[u8]) -> bool {
    for pos in find_word_starts(attr, b"test") {
        if !word_boundary_after(attr, pos + 4) {
            continue;
        }
        let negated = pos >= 4 && &attr[pos - 4..pos] == b"not(";
        if !negated {
            return true;
        }
    }
    false
}

/// X007: cross-check the bench JSON field names CI validates against the
/// corresponding bench sources.
///
/// The CI workflow's python validation heredoc reads
/// `BENCH_<name>.json` summaries and asserts on keys, some spelled
/// literally (`m["key"]` / `m.get("key"`), some via f-strings expanded
/// over `for <ident> in ("a", "b")` loops. Every such key must appear
/// inside a string literal of `crates/bench/benches/<name>.rs`, so the
/// contract CI enforces at run time is visible (and greppable) in the
/// bench source itself.
pub fn check_ci_contract(root: &Path) -> Vec<Finding> {
    let ci_path = root.join(".github/workflows/ci.yml");
    let Ok(text) = std::fs::read_to_string(&ci_path) else {
        return Vec::new(); // no CI workflow, nothing to cross-check
    };
    let mut findings = Vec::new();

    // Loop bindings: `for <ident> in ("a", "b", ...)`.
    let mut bindings: Vec<(String, Vec<String>)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("for ") else {
            continue;
        };
        let Some((ident, tail)) = rest.split_once(" in ") else {
            continue;
        };
        let ident = ident.trim();
        if !ident.bytes().all(is_ident_byte) || ident.is_empty() {
            continue;
        }
        let values = quoted_strings(tail);
        if !values.is_empty() {
            bindings.push((ident.to_string(), values));
        }
    }

    // Bench contexts in order of appearance: json.load(open("BENCH_<n>.json")).
    let mut contexts: Vec<(usize, String)> = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = find_from(text.as_bytes(), b"BENCH_", i) {
        i = pos + 1;
        let tail = &text[pos + "BENCH_".len()..];
        if let Some(end) = tail.find(".json") {
            let name = &tail[..end];
            if !name.is_empty() && name.bytes().all(is_ident_byte) {
                contexts.push((pos, name.to_string()));
            }
        }
    }

    // Keys: literal `m["key"]` / `m.get("key"` plus expanded f-strings.
    let mut keys: Vec<(usize, String)> = Vec::new();
    for marker in ["m[\"", "m.get(\""] {
        let mut i = 0usize;
        while let Some(pos) = find_from(text.as_bytes(), marker.as_bytes(), i) {
            i = pos + 1;
            let start = pos + marker.len();
            if let Some(end) = text[start..].find('"') {
                keys.push((pos, text[start..start + end].to_string()));
            }
        }
    }
    let mut i = 0usize;
    while let Some(pos) = find_from(text.as_bytes(), b"f\"", i) {
        i = pos + 1;
        let start = pos + 2;
        let Some(end) = text[start..].find('"') else {
            continue;
        };
        let template = &text[start..start + end];
        for expansion in expand_template(template, &bindings) {
            keys.push((pos, expansion));
        }
    }

    // Associate each key with the nearest preceding bench context.
    for (pos, key) in keys {
        if key.is_empty() || !key.bytes().all(is_ident_byte) {
            continue;
        }
        let Some((_, bench)) = contexts
            .iter()
            .filter(|(cpos, _)| *cpos <= pos)
            .max_by_key(|(cpos, _)| *cpos)
        else {
            continue;
        };
        let rel = format!("crates/bench/benches/{bench}.rs");
        let bench_path = root.join(&rel);
        let Ok(src) = std::fs::read(&bench_path) else {
            findings.push(Finding {
                path: rel.clone(),
                line: 1,
                rule: Rule::X007,
                msg: format!(
                    "CI validates `{key}` in BENCH_{bench}.json but the bench source is missing"
                ),
            });
            continue;
        };
        let lexed = mask(&src);
        let present = lexed.strings.iter().any(|s| s.text.contains(&key));
        if !present {
            findings.push(Finding {
                path: rel,
                line: 1,
                rule: Rule::X007,
                msg: format!(
                    "CI validates JSON field `{key}` but it never appears as a string \
                     literal in this bench; add it to the bench's CI-field manifest"
                ),
            });
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// All `"…"` contents on one line of python/yaml text.
fn quoted_strings(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        out.push(tail[..end].to_string());
        rest = &tail[end + 1..];
    }
    out
}

/// Expand `{ident}` placeholders in an f-string template over the loop
/// bindings; returns the cartesian product, or nothing when a
/// placeholder has no binding (not statically checkable).
fn expand_template(template: &str, bindings: &[(String, Vec<String>)]) -> Vec<String> {
    let mut results = vec![String::new()];
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        let prefix = &rest[..open];
        let Some(close) = rest[open..].find('}') else {
            return Vec::new();
        };
        let ident = &rest[open + 1..open + close];
        if !ident.bytes().all(is_ident_byte) || ident.is_empty() {
            return Vec::new(); // format specs / expressions: give up
        }
        let Some((_, values)) = bindings.iter().find(|(n, _)| n == ident) else {
            return Vec::new();
        };
        let mut next = Vec::new();
        for r in &results {
            for v in values {
                next.push(format!("{r}{prefix}{v}"));
            }
        }
        results = next;
        rest = &rest[open + close + 1..];
    }
    for r in &mut results {
        r.push_str(rest);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        Analysis::from_path(rel, src.as_bytes()).run()
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.code()).collect()
    }

    #[test]
    fn x001_flags_library_not_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn g() { y.unwrap(); panic!(); }\n}\n";
        let f = lint("crates/foo/src/lib.rs", src);
        assert_eq!(codes(&f), ["X001"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn x001_ignores_binaries_and_strings() {
        assert!(lint("examples/demo.rs", "fn main() { x.unwrap(); }").is_empty());
        assert!(lint("src/bin/cli.rs", "fn main() { panic!(); }").is_empty());
        let f = lint(
            "src/lib.rs",
            "fn f() { log(\"don't panic!()\"); } // unwrap()",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn x001_unwrap_or_is_fine() {
        assert!(lint(
            "src/lib.rs",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); }"
        )
        .is_empty());
    }

    #[test]
    fn pragma_suppresses_with_reason() {
        let src = "fn f() {\n  // xlint: allow(X001, reason = \"invariant: always present\")\n  x.unwrap();\n}\n";
        assert!(lint("src/lib.rs", src).is_empty());
        let same_line = "fn f() { x.unwrap(); } // xlint: allow(X001, reason = \"seeded above\")\n";
        assert!(lint("src/lib.rs", same_line).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_x000() {
        let src = "// xlint: allow(X001)\nfn f() { x.unwrap(); }\n";
        let f = lint("src/lib.rs", src);
        assert_eq!(codes(&f), ["X000", "X001"]);
    }

    #[test]
    fn x002_atomics() {
        let bad = "fn f(a: &AtomicUsize) { a.store(1); }";
        assert_eq!(codes(&lint("src/lib.rs", bad)), ["X002"]);
        let good = "fn f(a: &AtomicUsize) { a.store(1, Ordering::Relaxed); }";
        assert!(lint("src/lib.rs", good).is_empty());
        let seqcst = "fn f(a: &AtomicUsize) { a.store(1, Ordering::SeqCst); }";
        assert_eq!(codes(&lint("src/lib.rs", seqcst)), ["X002"]);
        let getter = "fn f(d: &Deployment) -> &Store { d.store() }";
        assert!(lint("src/lib.rs", getter).is_empty());
    }

    #[test]
    fn x003_lock_unwrap_and_double_lock() {
        // A lock-unwrap is both a panic path (X001) and a poison bug (X003).
        let bad = "fn f(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }";
        assert_eq!(codes(&lint("src/lib.rs", bad)), ["X001", "X003"]);
        let double = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> (u32, u32) { let p = (a.lock(), b.lock()); p }";
        let f = lint("src/lib.rs", double);
        assert_eq!(codes(&f), ["X003"]);
        let good = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(|p| p.into_inner()); }";
        assert!(lint("src/lib.rs", good).is_empty());
        let sequential =
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) { let x = a.lock(); drop(x); let y = b.lock(); }";
        assert!(lint("src/lib.rs", sequential).is_empty());
    }

    #[test]
    fn x004_only_in_encoding_paths() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }";
        let f = lint("crates/durability/src/wire.rs", src);
        assert_eq!(codes(&f), ["X004", "X004"]);
        assert!(lint("crates/core/src/lib.rs", src).is_empty());
        let fx = "fn f() { let m = FxHashMap::default(); }";
        assert!(lint("src/exec_persist.rs", fx).is_empty());
    }

    #[test]
    fn x005_duplicate_tags() {
        let src = "const SEC_A: u32 = 1;\nconst SEC_B: u32 = 2;\nconst SEC_C: u32 = 1;\n";
        let f = lint("src/exec_persist.rs", src);
        assert_eq!(codes(&f), ["X005"]);
        assert_eq!(f[0].line, 3);
        let expr = "const SEC_A: u32 = 1;\nconst SEC_B: u64 = 1 << 20;\n";
        assert!(lint("src/lib.rs", expr).is_empty());
    }

    #[test]
    fn x006_unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { go() } }";
        assert_eq!(codes(&lint("src/lib.rs", bad)), ["X006"]);
        let good = "fn f() {\n  // SAFETY: bounds checked above\n  unsafe { go() }\n}";
        assert!(lint("src/lib.rs", good).is_empty());
        let in_string = "fn f() { log(\"unsafe query\"); }";
        assert!(lint("src/lib.rs", in_string).is_empty());
    }

    #[test]
    fn template_expansion() {
        let bindings = vec![
            ("a".to_string(), vec!["x".to_string(), "y".to_string()]),
            ("b".to_string(), vec!["1".to_string()]),
        ];
        let mut got = expand_template("w_{a}_{b}_s", &bindings);
        got.sort();
        assert_eq!(got, ["w_x_1_s", "w_y_1_s"]);
        assert!(expand_template("w_{unbound}", &bindings).is_empty());
    }
}
