//! A hand-rolled, panic-free Rust surface lexer.
//!
//! [`mask`] turns a source file into a same-length *masked* byte view in
//! which every comment and every literal body is blanked with spaces
//! (newlines are preserved so byte offsets and line numbers survive),
//! while the comment and string-literal texts are collected on the side.
//! Rules then scan the masked bytes with plain substring searches and can
//! never be fooled by a lint keyword that only appears inside a string,
//! a `//` comment, or a raw-string fixture.
//!
//! The lexer understands: line comments (incl. doc comments), nested
//! block comments, string / byte-string literals with escapes, raw and
//! raw-byte strings with arbitrary `#` fences, char literals, and the
//! char-vs-lifetime ambiguity (`'a'` vs `'a`). It is total: every input
//! byte sequence (valid UTF-8 or not) is consumed left to right, each
//! step advances at least one byte, and unterminated literals simply run
//! to end of input. A fuzz test in `tests/` holds it to that contract.

/// One comment's text (delimiters included) and the 1-based line of its
/// first byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// One string literal's *content* (delimiters and fences stripped) and
/// the 1-based line of its opening quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    pub line: u32,
    pub text: String,
}

/// The masked view of one source file.
#[derive(Debug, Clone)]
pub struct Masked {
    /// Same byte length as the input; comments and literal bodies are
    /// spaces, newlines everywhere are preserved.
    pub code: Vec<u8>,
    /// Every comment, in file order.
    pub comments: Vec<Comment>,
    /// Every string / raw-string / byte-string literal, in file order.
    pub strings: Vec<StrLit>,
    /// Byte offset of the first byte of each line (line 1 at index 0).
    pub line_starts: Vec<usize>,
}

impl Masked {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        // Last line start <= offset; partition_point never panics.
        let idx = self.line_starts.partition_point(|&s| s <= offset);
        idx.max(1) as u32
    }

    /// Total number of lines.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// True for bytes that can continue a Rust identifier (ASCII view).
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for slot in out.iter_mut().take(to).skip(from) {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Lex `src` into its masked view. Never panics, always terminates.
pub fn mask(src: &[u8]) -> Masked {
    let mut code = src.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line_starts = vec![0usize];
    for (i, &b) in src.iter().enumerate() {
        if b == b'\n' && i + 1 < src.len() {
            line_starts.push(i + 1);
        }
    }
    let line_of =
        |offset: usize| -> u32 { line_starts.partition_point(|&s| s <= offset).max(1) as u32 };

    let n = src.len();
    let mut i = 0usize;
    while i < n {
        let b = src[i];
        let next = src.get(i + 1).copied();
        match b {
            b'/' if next == Some(b'/') => {
                // Line comment (incl. /// and //!): to end of line.
                let start = i;
                while i < n && src[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line: line_of(start),
                    text: String::from_utf8_lossy(&src[start..i]).into_owned(),
                });
                blank(&mut code, start, i);
            }
            b'/' if next == Some(b'*') => {
                // Block comment; Rust block comments nest.
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if src[i] == b'/' && src.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if src[i] == b'*' && src.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: line_of(start),
                    text: String::from_utf8_lossy(&src[start..i]).into_owned(),
                });
                blank(&mut code, start, i);
            }
            b'"' => {
                let start = i;
                i = skip_quoted(src, i + 1);
                strings.push(StrLit {
                    line: line_of(start),
                    text: String::from_utf8_lossy(
                        &src[start + 1..i.saturating_sub(1).max(start + 1)],
                    )
                    .into_owned(),
                });
                blank(&mut code, start + 1, i.saturating_sub(1).max(start + 1));
            }
            b'r' | b'b' if is_raw_or_byte_prefix(src, i) => {
                // r"..", r#".."#, b"..", br#".."#, rb (not rust, but harmless)
                let start = i;
                let mut j = i;
                while j < n && (src[j] == b'r' || src[j] == b'b') && j - i < 2 {
                    j += 1;
                }
                let mut fences = 0usize;
                while j < n && src[j] == b'#' {
                    fences += 1;
                    j += 1;
                }
                if src.get(j) == Some(&b'"') {
                    let content_start = j + 1;
                    let is_raw = src[i..j].contains(&b'r');
                    let (content_end, end) = if is_raw {
                        skip_raw(src, content_start, fences)
                    } else {
                        let e = skip_quoted(src, content_start);
                        (e.saturating_sub(1).max(content_start), e)
                    };
                    strings.push(StrLit {
                        line: line_of(start),
                        text: String::from_utf8_lossy(&src[content_start..content_end])
                            .into_owned(),
                    });
                    blank(&mut code, content_start, content_end);
                    i = end;
                } else {
                    // Just an identifier starting with r/b.
                    i += 1;
                    while i < n && is_ident_byte(src[i]) {
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime.
                if let Some(end) = char_literal_end(src, i) {
                    blank(&mut code, i + 1, end - 1);
                    i = end;
                } else {
                    // Lifetime tick: consume the tick and the label.
                    i += 1;
                    while i < n && is_ident_byte(src[i]) {
                        i += 1;
                    }
                }
            }
            _ if is_ident_byte(b) => {
                // Skip whole identifiers so `br` / `r#raw_ident` prefixes
                // inside longer names can't start a false literal.
                while i < n && is_ident_byte(src[i]) {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    Masked {
        code,
        comments,
        strings,
        line_starts,
    }
}

/// Is `src[i]` the start of a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`, …) rather than a plain identifier?
fn is_raw_or_byte_prefix(src: &[u8], i: usize) -> bool {
    // Must not be the tail of a longer identifier.
    if i > 0 && is_ident_byte(src[i - 1]) {
        return false;
    }
    let mut j = i;
    let n = src.len();
    while j < n && (src[j] == b'r' || src[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i {
        return false;
    }
    // r#ident (raw identifier) must NOT lex as a raw string: the fence
    // run, if any, must be followed by a quote, and only `r`-prefixed
    // literals may carry fences at all.
    let has_r = src[i..j].contains(&b'r');
    let mut k = j;
    while k < n && src[k] == b'#' {
        k += 1;
    }
    if k > j && !has_r {
        return false;
    }
    src.get(k) == Some(&b'"')
}

/// Advance past a quoted literal body starting just after the opening
/// quote; returns the index one past the closing quote (or `src.len()`).
fn skip_quoted(src: &[u8], mut i: usize) -> usize {
    let n = src.len();
    while i < n {
        match src[i] {
            b'\\' => i = (i + 2).min(n),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Advance past a raw literal body; returns (content_end, one past the
/// closing fence).
fn skip_raw(src: &[u8], start: usize, fences: usize) -> (usize, usize) {
    let n = src.len();
    let mut i = start;
    while i < n {
        if src[i] == b'"' {
            let mut k = i + 1;
            let mut seen = 0usize;
            while k < n && src[k] == b'#' && seen < fences {
                k += 1;
                seen += 1;
            }
            if seen == fences {
                return (i, k);
            }
        }
        i += 1;
    }
    (n, n)
}

/// If a char literal starts at `src[i] == '\''`, return the index one
/// past its closing quote; `None` when this tick is a lifetime.
fn char_literal_end(src: &[u8], i: usize) -> Option<usize> {
    let n = src.len();
    let first = *src.get(i + 1)?;
    if first == b'\\' {
        // Escaped char: find the closing quote.
        let mut j = i + 2;
        while j < n {
            match src[j] {
                b'\\' => j = (j + 2).min(n),
                b'\'' => return Some(j + 1),
                b'\n' => return None,
                _ => j += 1,
            }
        }
        return Some(n);
    }
    if first == b'\'' {
        // '' — empty, treat as a two-byte oddity, not a lifetime.
        return Some(i + 2);
    }
    // Multi-byte UTF-8 scalar or single char followed by closing quote.
    let mut j = i + 1;
    // Consume one "character": 1-4 bytes depending on UTF-8 lead byte.
    let lead = src[j];
    let width = if lead < 0x80 {
        1
    } else if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else if lead >= 0xC0 {
        2
    } else {
        1
    };
    j = (j + width).min(n);
    if src.get(j) == Some(&b'\'') {
        // 'x' — but only a char literal if it isn't a lifetime label
        // followed by a quote start ('a'' is not valid Rust anyway).
        Some(j + 1)
    } else {
        None
    }
}

/// Find every occurrence of `needle` in `hay` whose preceding byte is
/// not an identifier byte (word-start boundary).
pub fn find_word_starts(hay: &[u8], needle: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    if needle.is_empty() || hay.len() < needle.len() {
        return out;
    }
    let mut i = 0usize;
    while let Some(pos) = find_from(hay, needle, i) {
        let boundary = pos == 0 || !is_ident_byte(hay[pos - 1]);
        if boundary {
            out.push(pos);
        }
        i = pos + 1;
    }
    out
}

/// Substring search from an offset; returns the absolute position.
pub fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= hay.len() || hay.len() - from < needle.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Skip ASCII whitespace forward from `i`.
pub fn skip_ws(hay: &[u8], mut i: usize) -> usize {
    while i < hay.len() && hay[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Given the offset of an opening delimiter, return the offset one past
/// its balanced closer, treating `open`/`close` pairs only (the masked
/// view has no delimiters inside strings or comments). Returns
/// `hay.len()` when unbalanced.
pub fn skip_balanced(hay: &[u8], open_at: usize, open: u8, close: u8) -> usize {
    let mut depth = 0i64;
    let mut i = open_at;
    while i < hay.len() {
        if hay[i] == open {
            depth += 1;
        } else if hay[i] == close {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hay.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_str(src: &str) -> String {
        String::from_utf8_lossy(&mask(src.as_bytes()).code).into_owned()
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let m = masked_str("let x = \"panic!\"; // unwrap()\nfoo();");
        assert!(!m.contains("panic"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("foo();"));
        assert!(m.contains("let x = \"      \";"));
    }

    #[test]
    fn nested_block_comment() {
        let m = masked_str("a /* x /* y */ z */ b");
        assert!(m.starts_with('a'));
        assert!(m.ends_with('b'));
        assert!(!m.contains('x') && !m.contains('y') && !m.contains('z'));
    }

    #[test]
    fn raw_strings_with_fences() {
        let m = masked_str(r###"let s = r#"unwrap() "quoted" panic!"#; tail();"###);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn char_vs_lifetime() {
        let m = masked_str("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(m.contains("'a str"), "lifetime must stay code: {m}");
        assert!(!m.contains('x') || !m.contains("'x'"), "char body blanked");
    }

    #[test]
    fn byte_len_and_newlines_preserved() {
        let src = "a\n\"two\nlines\"\nb // c\n";
        let m = mask(src.as_bytes());
        assert_eq!(m.code.len(), src.len());
        let nl_src: Vec<usize> = src
            .bytes()
            .enumerate()
            .filter(|(_, b)| *b == b'\n')
            .map(|(i, _)| i)
            .collect();
        let nl_out: Vec<usize> = m
            .code
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == b'\n')
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nl_src, nl_out);
    }

    #[test]
    fn collected_literals_and_comments() {
        let m = mask(b"// top\nlet s = \"body\"; /* mid */");
        assert_eq!(m.comments.len(), 2);
        assert_eq!(m.comments[0].line, 1);
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].text, "body");
        assert_eq!(m.strings[0].line, 2);
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let m = masked_str("let r#type = 1; let b = r#try; call();");
        assert!(m.contains("call();"));
        assert_eq!(mask(b"let r#type = 1;").strings.len(), 0);
    }
}
