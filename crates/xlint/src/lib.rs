//! `xlint` — the rdfviews workspace's in-tree static analysis pass.
//!
//! The workspace carries three invariant-heavy subsystems whose
//! correctness rules used to live only in reviewers' heads: the
//! lock-striped parallel search core (explicit atomic orderings, no
//! panics on library paths), the byte-deterministic persistence codec
//! (deterministic encode order, unique wire tags), and the pooled-
//! scratch join engines. `xlint` machine-checks those rules with a
//! hand-rolled Rust lexer ([`lexer`]) and a repo-specific rule engine
//! ([`rules`]) over every `.rs` file under `src/`, `crates/`, and
//! `examples/`.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p xlint -- --deny-all
//! ```
//!
//! Findings print as `file:line: X00N message` and a nonzero exit code
//! gates CI. Genuine exceptions are suppressed inline with a mandatory
//! reason:
//!
//! ```text
//! // xlint: allow(X001, reason = "slot index handed to exactly one worker")
//! ```
//!
//! The pragma covers its own line and the next one. See [`rules`] for
//! the rule catalog.

pub mod lexer;
pub mod rules;

pub use rules::{check_ci_contract, classify, Analysis, FileKind, Finding, Rule};

use std::io;
use std::path::{Path, PathBuf};

/// The directories scanned in repo mode, relative to the workspace root.
pub const SCAN_ROOTS: [&str; 3] = ["src", "crates", "examples"];

/// Recursively collect `.rs` files under `dir`, sorted for
/// deterministic output. Skips build `target/` trees and xlint's own
/// fixture `corpus/` snippets (which contain violations on purpose).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "corpus" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint one file as classified by its path relative to `root`.
pub fn lint_file(root: &Path, path: &Path) -> io::Result<Vec<Finding>> {
    let src = std::fs::read(path)?;
    let rel = relative(root, path);
    Ok(Analysis::from_path(&rel, &src).run())
}

/// Lint one file under a forced [`FileKind`] (fixture / self-test mode).
pub fn lint_file_as(root: &Path, path: &Path, kind: FileKind) -> io::Result<Vec<Finding>> {
    let src = std::fs::read(path)?;
    let rel = relative(root, path);
    Ok(Analysis::new(&rel, &src, kind).run())
}

/// Repo mode: lint every `.rs` file under the scan roots plus the
/// cross-file CI contract check (X007). Returns sorted findings.
pub fn scan_repo(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(lint_file(root, file)?);
    }
    findings.extend(check_ci_contract(root));
    findings.sort();
    Ok((files.len(), findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(
            classify("crates/core/src/search/engine.rs"),
            FileKind::Library
        );
        assert_eq!(classify("src/bin/rdfviews.rs"), FileKind::Binary);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Binary);
        assert_eq!(
            classify("crates/rdf-model/tests/prop.rs"),
            FileKind::TestCode
        );
        assert_eq!(
            classify("crates/bench/benches/micro.rs"),
            FileKind::TestCode
        );
    }
}
