//! RDF / RDFS vocabulary constants.
//!
//! Only the handful of special URIs the paper's entailment rules need
//! (Table 1 and Section 4.1).

/// `rdf:type` — class membership.
pub const RDF_TYPE: &str = "rdf:type";

/// `rdfs:subClassOf` — class inclusion.
pub const RDFS_SUB_CLASS_OF: &str = "rdfs:subClassOf";

/// `rdfs:subPropertyOf` — property inclusion.
pub const RDFS_SUB_PROPERTY_OF: &str = "rdfs:subPropertyOf";

/// `rdfs:domain` — domain typing of a property.
pub const RDFS_DOMAIN: &str = "rdfs:domain";

/// `rdfs:range` — range typing of a property.
pub const RDFS_RANGE: &str = "rdfs:range";

/// `rdfs:Class` — the class of classes.
pub const RDFS_CLASS: &str = "rdfs:Class";

/// All RDFS schema properties (the four semantic relationships of Table 1).
pub const SCHEMA_PROPERTIES: [&str; 4] = [
    RDFS_SUB_CLASS_OF,
    RDFS_SUB_PROPERTY_OF,
    RDFS_DOMAIN,
    RDFS_RANGE,
];

/// Returns `true` if `uri` is one of the four RDFS schema properties.
pub fn is_schema_property(uri: &str) -> bool {
    SCHEMA_PROPERTIES.contains(&uri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_property_detection() {
        assert!(is_schema_property(RDFS_DOMAIN));
        assert!(is_schema_property(RDFS_SUB_CLASS_OF));
        assert!(!is_schema_property(RDF_TYPE));
        assert!(!is_schema_property("ex:hasPainted"));
    }
}
