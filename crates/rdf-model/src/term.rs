//! RDF terms and dictionary ids.
//!
//! Following the RDF specification (and Section 2 of the paper), a triple
//! `(s, p, o)` is *well-formed* when the subject is a URI or blank node, the
//! property is a URI, and the object is a URI, blank node or literal.

use std::fmt;

/// A dictionary-encoded term identifier.
///
/// `Id` is a plain `u32` newtype: 4 bytes per slot keeps a triple at
/// 12 bytes, which matters because the six permutation indexes each hold a
/// full copy of the triple table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub u32);

impl Id {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The lexical kind of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TermKind {
    /// A URI reference.
    Uri,
    /// A blank node (placeholder for an unknown URI or literal).
    Blank,
    /// A literal value.
    Literal,
}

/// An RDF term: URI, blank node, or literal.
///
/// Blank nodes carry a label so that distinct blank nodes of one dataset stay
/// distinct after encoding; from a database perspective they are existential
/// constants that — unlike SQL `NULL` — *do* join with themselves.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A URI reference, e.g. `ex:hasPainted`.
    Uri(Box<str>),
    /// A blank node with a dataset-local label, e.g. `_:b42`.
    Blank(Box<str>),
    /// A literal, e.g. `"Starry Night"`.
    Literal(Box<str>),
}

impl Term {
    /// Builds a URI term.
    pub fn uri(s: impl Into<Box<str>>) -> Self {
        Term::Uri(s.into())
    }

    /// Builds a blank-node term.
    pub fn blank(s: impl Into<Box<str>>) -> Self {
        Term::Blank(s.into())
    }

    /// Builds a literal term.
    pub fn literal(s: impl Into<Box<str>>) -> Self {
        Term::Literal(s.into())
    }

    /// The lexical form without kind markers.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Uri(s) | Term::Blank(s) | Term::Literal(s) => s,
        }
    }

    /// The kind of this term.
    pub fn kind(&self) -> TermKind {
        match self {
            Term::Uri(_) => TermKind::Uri,
            Term::Blank(_) => TermKind::Blank,
            Term::Literal(_) => TermKind::Literal,
        }
    }

    /// Size in bytes of the lexical form — the unit used by the paper's view
    /// space occupancy estimate ("average size of a subject, property,
    /// respectively object").
    pub fn byte_width(&self) -> usize {
        self.lexical().len()
    }

    /// Whether this term may appear in subject position.
    pub fn valid_subject(&self) -> bool {
        matches!(self, Term::Uri(_) | Term::Blank(_))
    }

    /// Whether this term may appear in property position.
    pub fn valid_property(&self) -> bool {
        matches!(self, Term::Uri(_))
    }

    /// Whether this term may appear in object position (always true).
    pub fn valid_object(&self) -> bool {
        true
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Uri(s) => write!(f, "<{s}>"),
            Term::Blank(s) => write!(f, "_:{s}"),
            Term::Literal(s) => write!(f, "\"{s}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_constructors_and_kinds() {
        assert_eq!(Term::uri("a").kind(), TermKind::Uri);
        assert_eq!(Term::blank("b").kind(), TermKind::Blank);
        assert_eq!(Term::literal("c").kind(), TermKind::Literal);
    }

    #[test]
    fn well_formedness_positions() {
        assert!(Term::uri("a").valid_subject());
        assert!(Term::blank("b").valid_subject());
        assert!(!Term::literal("c").valid_subject());
        assert!(Term::uri("a").valid_property());
        assert!(!Term::blank("b").valid_property());
        assert!(Term::literal("c").valid_object());
    }

    #[test]
    fn byte_width_is_lexical_length() {
        assert_eq!(Term::uri("ex:hasPainted").byte_width(), 13);
        assert_eq!(Term::literal("").byte_width(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::uri("ex:a").to_string(), "<ex:a>");
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
        assert_eq!(Term::literal("v").to_string(), "\"v\"");
    }

    #[test]
    fn kinds_distinguish_equal_lexicals() {
        // A URI and a literal with the same spelling are different terms.
        assert_ne!(Term::uri("x"), Term::literal("x"));
        assert_ne!(Term::uri("x"), Term::blank("x"));
    }
}
