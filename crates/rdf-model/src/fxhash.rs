//! A small FxHash-style hasher.
//!
//! The search data structures key hash maps almost exclusively by small
//! integers and short byte strings; SipHash's HashDoS protection is wasted
//! there. This is the well-known multiply-rotate hash used by rustc
//! (`rustc-hash`), implemented locally so the workspace keeps zero external
//! hashing dependencies.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // xlint: allow(X001, reason = "chunks_exact(8) yields exactly 8-byte chunks")
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        // Nearby keys land in different buckets for small table sizes.
        let buckets: std::collections::HashSet<u64> = (0..64u64).map(|i| h(i) % 64).collect();
        assert!(buckets.len() > 16, "hash should spread nearby integers");
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<[u32; 3]> = FxHashSet::default();
        assert!(s.insert([1, 2, 3]));
        assert!(!s.insert([1, 2, 3]));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_eq!(h(b"hello world"), h(b"hello world"));
        assert_ne!(h(b"hello world"), h(b"hello worle"));
        // Tail handling: lengths not divisible by 8.
        assert_ne!(h(b"abc"), h(b"abd"));
    }
}
