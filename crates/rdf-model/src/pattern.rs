//! Store-level triple patterns.
//!
//! A [`StorePattern`] binds each of the three columns either to a constant id
//! or leaves it free. This is the interface between the query processor and
//! the index layer: variable *names* and intra-atom equality (e.g.
//! `t(X, p, X)`) are handled by the evaluator, which post-filters; the store
//! only needs to know which columns are fixed.

use crate::term::Id;

/// One column of a pattern: bound to a constant or free.
pub type Slot = Option<Id>;

/// A triple pattern over the encoded triple table: `(s?, p?, o?)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StorePattern {
    /// Subject slot.
    pub s: Slot,
    /// Property slot.
    pub p: Slot,
    /// Object slot.
    pub o: Slot,
}

impl StorePattern {
    /// The all-free pattern (full scan).
    pub const ALL: StorePattern = StorePattern {
        s: None,
        p: None,
        o: None,
    };

    /// Builds a pattern from three slots.
    pub fn new(s: Slot, p: Slot, o: Slot) -> Self {
        Self { s, p, o }
    }

    /// Pattern with only the subject bound.
    pub fn with_s(s: Id) -> Self {
        Self::new(Some(s), None, None)
    }

    /// Pattern with only the property bound.
    pub fn with_p(p: Id) -> Self {
        Self::new(None, Some(p), None)
    }

    /// Pattern with only the object bound.
    pub fn with_o(o: Id) -> Self {
        Self::new(None, None, Some(o))
    }

    /// Pattern with property and object bound.
    pub fn with_po(p: Id, o: Id) -> Self {
        Self::new(None, Some(p), Some(o))
    }

    /// Pattern with subject and property bound.
    pub fn with_sp(s: Id, p: Id) -> Self {
        Self::new(Some(s), Some(p), None)
    }

    /// Pattern with subject and object bound.
    pub fn with_so(s: Id, o: Id) -> Self {
        Self::new(Some(s), None, Some(o))
    }

    /// Fully bound pattern (membership test).
    pub fn exact(s: Id, p: Id, o: Id) -> Self {
        Self::new(Some(s), Some(p), Some(o))
    }

    /// The slots as an array in `(s, p, o)` order.
    #[inline]
    pub fn slots(&self) -> [Slot; 3] {
        [self.s, self.p, self.o]
    }

    /// Number of bound columns (0–3).
    pub fn bound_count(&self) -> usize {
        self.slots().iter().filter(|s| s.is_some()).count()
    }

    /// Whether the given encoded triple matches this pattern.
    #[inline]
    pub fn matches(&self, t: [Id; 3]) -> bool {
        self.slots()
            .iter()
            .zip(t.iter())
            .all(|(slot, v)| slot.is_none_or(|c| c == *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching() {
        let t = [Id(1), Id(2), Id(3)];
        assert!(StorePattern::ALL.matches(t));
        assert!(StorePattern::with_p(Id(2)).matches(t));
        assert!(!StorePattern::with_p(Id(9)).matches(t));
        assert!(StorePattern::exact(Id(1), Id(2), Id(3)).matches(t));
        assert!(!StorePattern::exact(Id(1), Id(2), Id(4)).matches(t));
        assert!(StorePattern::with_so(Id(1), Id(3)).matches(t));
    }

    #[test]
    fn bound_count() {
        assert_eq!(StorePattern::ALL.bound_count(), 0);
        assert_eq!(StorePattern::with_s(Id(0)).bound_count(), 1);
        assert_eq!(StorePattern::with_po(Id(0), Id(1)).bound_count(), 2);
        assert_eq!(StorePattern::exact(Id(0), Id(1), Id(2)).bound_count(), 3);
    }
}
