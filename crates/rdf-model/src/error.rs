//! Error types for the data model layer.

use std::fmt;

/// Errors produced while parsing or validating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A line of N-Triples-style input could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable explanation.
        message: String,
    },
    /// A triple violated RDF well-formedness (e.g. literal subject).
    IllFormed {
        /// 1-based line number (0 when constructed programmatically).
        line: usize,
        /// Which position was invalid.
        position: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ModelError::IllFormed { line, position } => {
                write!(f, "ill-formed triple at line {line}: invalid {position}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::Parse {
            line: 3,
            message: "missing object".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = ModelError::IllFormed {
            line: 1,
            position: "subject",
        };
        assert!(e.to_string().contains("subject"));
    }
}
