//! # rdf-model
//!
//! Dictionary-encoded RDF data model: terms, triples, patterns and an
//! in-memory triple store with all six permutation indexes
//! (SPO, SOP, PSO, POS, OSP, OPS), in the style of Hexastore and of the
//! heavily-indexed PostgreSQL layout used by *View Selection in Semantic Web
//! Databases* (Goasdoué et al., VLDB 2011).
//!
//! The store views an RDF database exactly as the paper does: a single large
//! triple table `t(s, p, o)` whose values are dictionary-encoded integers.
//! Blank nodes are first-class terms (they join like any constant inside the
//! data, and behave as existential variables in queries, handled by
//! `rdf-query`).
//!
//! ## Quick tour
//!
//! ```
//! use rdf_model::{Dataset, Term};
//!
//! let mut db = Dataset::new();
//! db.insert_terms(
//!     Term::uri("ex:picasso"),
//!     Term::uri("ex:hasPainted"),
//!     Term::uri("ex:guernica"),
//! );
//! assert_eq!(db.store().len(), 1);
//!
//! let painted = db.dict().lookup(&Term::uri("ex:hasPainted")).unwrap();
//! assert_eq!(db.store().match_count(&rdf_model::StorePattern::with_p(painted)), 1);
//! ```

pub mod dict;
pub mod error;
pub mod fxhash;
pub mod ntriples;
pub mod pattern;
pub mod store;
pub mod term;
pub mod vocab;

pub use dict::Dictionary;
pub use error::ModelError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use pattern::StorePattern;
pub use store::{IndexOrder, IndexRange, StoreSnapshot, Triple, TripleStore};
pub use term::{Id, Term, TermKind};

/// A dictionary plus a triple store: the paper's "RDF database".
///
/// This is the convenience façade most users want: it owns the
/// [`Dictionary`] used for encoding and the [`TripleStore`] holding the
/// encoded triples, and keeps the two consistent.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    dict: Dictionary,
    store: TripleStore,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dictionary mapping terms to integer ids.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary (for pre-interning vocabulary).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    /// The encoded triple table.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Mutable access to the triple table.
    pub fn store_mut(&mut self) -> &mut TripleStore {
        &mut self.store
    }

    /// Splits the dataset into its parts.
    pub fn into_parts(self) -> (Dictionary, TripleStore) {
        (self.dict, self.store)
    }

    /// Rebuilds a dataset from parts (the ids in `store` must come from
    /// `dict`).
    pub fn from_parts(dict: Dictionary, store: TripleStore) -> Self {
        Self { dict, store }
    }

    /// Interns the three terms and inserts the resulting triple.
    /// Returns `true` if the triple was new.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.store.insert([s, p, o])
    }

    /// Decodes an encoded triple back to terms. Panics if an id is unknown,
    /// which indicates the store and dictionary are out of sync.
    pub fn decode(&self, t: Triple) -> (&Term, &Term, &Term) {
        (
            self.dict.term(t[0]),
            self.dict.term(t[1]),
            self.dict.term(t[2]),
        )
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the dataset holds no triples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_roundtrip() {
        let mut db = Dataset::new();
        assert!(db.is_empty());
        assert!(db.insert_terms(Term::uri("ex:a"), Term::uri("ex:p"), Term::literal("v")));
        // Duplicate insert is a no-op.
        assert!(!db.insert_terms(Term::uri("ex:a"), Term::uri("ex:p"), Term::literal("v")));
        assert_eq!(db.len(), 1);
        let t = db.store().triples()[0];
        let (s, p, o) = db.decode(t);
        assert_eq!(s, &Term::uri("ex:a"));
        assert_eq!(p, &Term::uri("ex:p"));
        assert_eq!(o, &Term::literal("v"));
    }
}
