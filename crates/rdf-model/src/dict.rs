//! The encoding dictionary.
//!
//! As in the paper's experimental platform, data is stored in a
//! dictionary-encoded triple table "using a distinct integer for each
//! distinct URI or literal appearing in an s, p or o value", with the
//! dictionary indexed both ways (id → term and term → id).

use crate::fxhash::FxHashMap;
use crate::term::{Id, Term};

/// Bidirectional term ↔ id mapping.
///
/// Ids are dense and allocated in interning order, which lets downstream
/// components use them directly as vector indexes.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    lookup: FxHashMap<Term, Id>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            terms: Vec::with_capacity(cap),
            lookup: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Interns a term, returning its id (allocating a fresh one if new).
    pub fn intern(&mut self, term: Term) -> Id {
        if let Some(&id) = self.lookup.get(&term) {
            return id;
        }
        let id =
            // xlint: allow(X001, reason = "u32 ids are a documented capacity limit of the dictionary")
            Id(u32::try_from(self.terms.len()).expect("dictionary overflow: > u32::MAX terms"));
        self.terms.push(term.clone());
        self.lookup.insert(term, id);
        id
    }

    /// Convenience: intern a URI given as a string.
    pub fn intern_uri(&mut self, uri: &str) -> Id {
        self.intern(Term::uri(uri))
    }

    /// Convenience: intern a literal given as a string.
    pub fn intern_literal(&mut self, lit: &str) -> Id {
        self.intern(Term::literal(lit))
    }

    /// Convenience: intern a blank node given by label.
    pub fn intern_blank(&mut self, label: &str) -> Id {
        self.intern(Term::blank(label))
    }

    /// Looks up an already-interned term.
    pub fn lookup(&self, term: &Term) -> Option<Id> {
        self.lookup.get(term).copied()
    }

    /// Looks up a URI by spelling.
    pub fn lookup_uri(&self, uri: &str) -> Option<Id> {
        self.lookup(&Term::uri(uri))
    }

    /// Decodes an id. Panics on unknown ids (they can only come from a
    /// foreign dictionary, which is a programming error).
    pub fn term(&self, id: Id) -> &Term {
        &self.terms[id.index()]
    }

    /// Decodes an id if it is known.
    pub fn get(&self, id: Id) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (Id(i as u32), t))
    }

    /// Byte width of an id's lexical form (used for space-occupancy
    /// estimates).
    pub fn byte_width(&self, id: Id) -> usize {
        self.term(id).byte_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::uri("ex:a"));
        let b = d.intern(Term::uri("ex:b"));
        let a2 = d.intern(Term::uri("ex:a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.intern(Term::literal(format!("{i}")));
            assert_eq!(id, Id(i));
        }
    }

    #[test]
    fn lookup_and_decode_roundtrip() {
        let mut d = Dictionary::new();
        let t = Term::blank("node1");
        let id = d.intern(t.clone());
        assert_eq!(d.lookup(&t), Some(id));
        assert_eq!(d.term(id), &t);
        assert_eq!(d.get(Id(999)), None);
    }

    #[test]
    fn kinds_do_not_collide() {
        let mut d = Dictionary::new();
        let u = d.intern(Term::uri("x"));
        let l = d.intern(Term::literal("x"));
        let b = d.intern(Term::blank("x"));
        assert_ne!(u, l);
        assert_ne!(u, b);
        assert_ne!(l, b);
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut d = Dictionary::new();
        d.intern_uri("a");
        d.intern_uri("b");
        let ids: Vec<u32> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
