//! A compact N-Triples-style reader and writer.
//!
//! One triple per line, terms written as `<uri>`, `_:label` or `"literal"`,
//! optionally terminated by ` .`. This is the loading path for the synthetic
//! Barton-like datasets and for the examples; it is intentionally a strict,
//! fast subset of N-Triples (no language tags, no datatype suffixes, `\"`
//! and `\\` escapes inside literals).

use std::io::{BufRead, Write};

use crate::error::ModelError;
use crate::term::Term;
use crate::Dataset;

/// Parses a single term starting at `input` (already trimmed on the left).
/// Returns the term and the remaining input.
fn parse_term(input: &str, line: usize) -> Result<(Term, &str), ModelError> {
    let bytes = input.as_bytes();
    let err = |message: &str| ModelError::Parse {
        line,
        message: message.to_string(),
    };
    match bytes.first() {
        Some(b'<') => {
            let end = input.find('>').ok_or_else(|| err("unterminated '<'"))?;
            Ok((Term::uri(&input[1..end]), &input[end + 1..]))
        }
        Some(b'_') => {
            if !input.starts_with("_:") {
                return Err(err("blank node must start with '_:'"));
            }
            let rest = &input[2..];
            let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
            if end == 0 {
                return Err(err("empty blank node label"));
            }
            Ok((Term::blank(&rest[..end]), &rest[end..]))
        }
        Some(b'"') => {
            let mut out = String::new();
            let mut chars = input[1..].char_indices();
            loop {
                let (i, c) = chars.next().ok_or_else(|| err("unterminated literal"))?;
                match c {
                    '"' => return Ok((Term::literal(out), &input[1 + i + 1..])),
                    '\\' => {
                        let (_, esc) = chars.next().ok_or_else(|| err("dangling escape"))?;
                        match esc {
                            '"' => out.push('"'),
                            '\\' => out.push('\\'),
                            'n' => out.push('\n'),
                            't' => out.push('\t'),
                            other => return Err(err(&format!("unknown escape '\\{other}'"))),
                        }
                    }
                    other => out.push(other),
                }
            }
        }
        _ => Err(err("expected '<', '_:' or '\"'")),
    }
}

/// Parses one line into a `(s, p, o)` term triple. Empty lines and lines
/// starting with `#` yield `None`.
pub fn parse_line(line: &str, lineno: usize) -> Result<Option<(Term, Term, Term)>, ModelError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let (s, rest) = parse_term(trimmed, lineno)?;
    let (p, rest) = parse_term(rest.trim_start(), lineno)?;
    let (o, rest) = parse_term(rest.trim_start(), lineno)?;
    let tail = rest.trim();
    if !(tail.is_empty() || tail == ".") {
        return Err(ModelError::Parse {
            line: lineno,
            message: format!("trailing content: {tail:?}"),
        });
    }
    if !s.valid_subject() {
        return Err(ModelError::IllFormed {
            line: lineno,
            position: "subject",
        });
    }
    if !p.valid_property() {
        return Err(ModelError::IllFormed {
            line: lineno,
            position: "property",
        });
    }
    Ok(Some((s, p, o)))
}

/// Reads triples from `reader` into `db`. Returns the number of *new*
/// triples inserted.
pub fn read_into(db: &mut Dataset, reader: impl BufRead) -> Result<usize, ModelError> {
    let mut added = 0;
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ModelError::Parse {
            line: i + 1,
            message: e.to_string(),
        })?;
        if let Some((s, p, o)) = parse_line(&line, i + 1)? {
            if db.insert_terms(s, p, o) {
                added += 1;
            }
        }
    }
    Ok(added)
}

/// Parses a whole string of triples into a fresh dataset.
pub fn parse_dataset(text: &str) -> Result<Dataset, ModelError> {
    let mut db = Dataset::new();
    read_into(&mut db, text.as_bytes())?;
    Ok(db)
}

/// Writes one term in the line format.
fn write_term(out: &mut impl Write, t: &Term) -> std::io::Result<()> {
    match t {
        Term::Uri(s) => write!(out, "<{s}>"),
        Term::Blank(s) => write!(out, "_:{s}"),
        Term::Literal(s) => {
            let escaped = s
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t");
            write!(out, "\"{escaped}\"")
        }
    }
}

/// Serializes every triple of `db`, one per line, terminated by ` .`.
pub fn write_dataset(db: &Dataset, out: &mut impl Write) -> std::io::Result<()> {
    for &t in db.store().triples() {
        let (s, p, o) = db.decode(t);
        write_term(out, s)?;
        out.write_all(b" ")?;
        write_term(out, p)?;
        out.write_all(b" ")?;
        write_term(out, o)?;
        out.write_all(b" .\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_triples() {
        let db = parse_dataset(
            "# a comment\n\
             <ex:a> <ex:p> <ex:b> .\n\
             \n\
             <ex:a> <ex:p> \"hello\" \n\
             _:n1 <ex:p> _:n2 .\n",
        )
        .unwrap();
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn escapes_roundtrip() {
        let mut db = Dataset::new();
        db.insert_terms(
            Term::uri("ex:a"),
            Term::uri("ex:p"),
            Term::literal("say \"hi\" \\ done"),
        );
        let mut buf = Vec::new();
        write_dataset(&db, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = parse_dataset(&text).unwrap();
        assert_eq!(back.len(), 1);
        let (_, _, o) = back.decode(back.store().triples()[0]);
        assert_eq!(o, &Term::literal("say \"hi\" \\ done"));
    }

    #[test]
    fn rejects_ill_formed() {
        assert!(matches!(
            parse_line("\"lit\" <ex:p> <ex:o>", 1),
            Err(ModelError::IllFormed {
                position: "subject",
                ..
            })
        ));
        assert!(matches!(
            parse_line("<ex:s> _:b <ex:o>", 1),
            Err(ModelError::IllFormed {
                position: "property",
                ..
            })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("<ex:s> <ex:p>", 1).is_err());
        assert!(parse_line("<ex:s> <ex:p> <ex:o> junk", 1).is_err());
        assert!(parse_line("<unterminated", 1).is_err());
        assert!(parse_line("<ex:s> <ex:p> \"open", 1).is_err());
    }

    #[test]
    fn full_roundtrip_preserves_triples() {
        let text = "<ex:s> <ex:p> <ex:o> .\n<ex:s> <ex:q> \"1\" .\n_:b <ex:p> \"x\\ny\" .\n";
        let db = parse_dataset(text).unwrap();
        let mut buf = Vec::new();
        write_dataset(&db, &mut buf).unwrap();
        let db2 = parse_dataset(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(db.len(), db2.len());
    }
}
