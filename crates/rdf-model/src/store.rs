//! The triple table and its six permutation indexes.
//!
//! The store keeps every distinct triple once (insertion order preserved)
//! and lazily materializes up to six sorted copies — one per column
//! permutation — so that any pattern with 1–3 bound columns is answered by a
//! binary-searched range over the best index. This mirrors the sextuple
//! indexing of Hexastore [23] and the "indexed the encoded triple table on
//! s, p, o, and all two- and three-column combinations" layout of the
//! paper's evaluation platform.
//!
//! Index snapshots are `Arc`-shared and version-stamped: single-triple
//! mutations invalidate them lazily (the next scan rebuilds only the
//! orders it actually needs), while the batch entry points carry every
//! already-built run forward — a merge (insert) or filter (remove) pass
//! producing a **new** `Arc` per run, so the old runs stay untouched for
//! anyone still holding them.
//!
//! The triple list and membership set are `Arc`-shared too, which makes
//! generations copy-on-write: [`TripleStore::snapshot`] pins the current
//! contents as an immutable [`StoreSnapshot`] in O(built runs) time, and
//! the next mutation clones the shared parts once (`Arc::make_mut`)
//! instead of blocking or invalidating the pinned readers.

use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a snapshot-cache `RwLock`, recovering from poison: the caches
/// hold complete `(version, value)` entries that are swapped in whole,
/// so a panicked writer can at worst leave a stale entry behind — the
/// version check re-validates it either way.
fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock counterpart of [`read_unpoisoned`].
fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

use crate::fxhash::FxHashSet;
use crate::pattern::StorePattern;
use crate::term::Id;

/// An encoded triple in `(s, p, o)` order.
pub type Triple = [Id; 3];

/// Subject / property / object column index.
pub const S: usize = 0;
/// Property column.
pub const P: usize = 1;
/// Object column.
pub const O: usize = 2;

/// One of the six column permutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexOrder {
    /// subject, property, object
    Spo,
    /// subject, object, property
    Sop,
    /// property, subject, object
    Pso,
    /// property, object, subject
    Pos,
    /// object, subject, property
    Osp,
    /// object, property, subject
    Ops,
}

impl IndexOrder {
    /// All six orders.
    pub const ALL: [IndexOrder; 6] = [
        IndexOrder::Spo,
        IndexOrder::Sop,
        IndexOrder::Pso,
        IndexOrder::Pos,
        IndexOrder::Osp,
        IndexOrder::Ops,
    ];

    /// The column permutation: `perm()[k]` is the column compared at sort
    /// level `k`.
    #[inline]
    pub fn perm(self) -> [usize; 3] {
        match self {
            IndexOrder::Spo => [S, P, O],
            IndexOrder::Sop => [S, O, P],
            IndexOrder::Pso => [P, S, O],
            IndexOrder::Pos => [P, O, S],
            IndexOrder::Osp => [O, S, P],
            IndexOrder::Ops => [O, P, S],
        }
    }

    /// Dense slot in the cache array.
    #[inline]
    fn slot(self) -> usize {
        match self {
            IndexOrder::Spo => 0,
            IndexOrder::Sop => 1,
            IndexOrder::Pso => 2,
            IndexOrder::Pos => 3,
            IndexOrder::Osp => 4,
            IndexOrder::Ops => 5,
        }
    }

    /// Picks the order whose sort prefix covers the pattern's bound columns,
    /// and returns it with the key values in comparison order.
    pub fn for_pattern(pat: &StorePattern) -> (IndexOrder, Vec<Id>) {
        let slots = pat.slots();
        let order = match (pat.s.is_some(), pat.p.is_some(), pat.o.is_some()) {
            (true, true, _) => IndexOrder::Spo,
            (true, false, true) => IndexOrder::Sop,
            (false, true, true) => IndexOrder::Pos,
            (true, false, false) => IndexOrder::Spo,
            (false, true, false) => IndexOrder::Pso,
            (false, false, true) => IndexOrder::Osp,
            (false, false, false) => IndexOrder::Spo,
        };
        let key: Vec<Id> = order.perm().iter().map_while(|&col| slots[col]).collect();
        (order, key)
    }

    /// Picks an order whose sort sequence lists the given column `groups`
    /// consecutively, in the given group order (columns *within* a group
    /// may appear in any order). This is the trie-cursor selection of a
    /// leapfrog join: the first group holds the constant-bound columns (the
    /// range key prefix) and each later group holds the column(s) of one
    /// join variable, ordered by the global variable order — the chosen
    /// permutation then exposes the atom's matches as a trie sorted by
    /// variable depth.
    ///
    /// Every ordered partition of a subset of `{S, P, O}` is satisfiable
    /// (all six permutations exist), so this returns `None` only for
    /// malformed input (a repeated or out-of-range column).
    pub fn for_groups(groups: &[&[usize]]) -> Option<IndexOrder> {
        IndexOrder::ALL.into_iter().find(|order| {
            let perm = order.perm();
            let mut pos = 0;
            groups.iter().all(|g| {
                let end = pos + g.len();
                let ok = end <= 3 && perm[pos..end].iter().all(|c| g.contains(c));
                pos = end;
                ok
            })
        })
    }
}

/// A version-stamped sorted snapshot of the triple table.
#[derive(Debug, Clone)]
struct IndexSnapshot {
    version: u64,
    sorted: Arc<Vec<Triple>>,
}

/// A resolved `[start, end)` range of one sorted permutation index: every
/// triple in [`IndexRange::as_slice`] has the probed key as its sort-prefix.
///
/// This is the store's public cursor API: the join core iterates matches
/// directly over the `Arc`-shared sorted snapshot — no per-lookup
/// collection into a fresh `Vec` — and the range stays valid (a consistent
/// snapshot) even if the store is mutated afterwards, because snapshots are
/// immutable once built.
#[derive(Debug, Clone)]
pub struct IndexRange {
    sorted: Arc<Vec<Triple>>,
    start: usize,
    end: usize,
}

impl IndexRange {
    /// The matching triples, in index order.
    #[inline]
    pub fn as_slice(&self) -> &[Triple] {
        &self.sorted[self.start..self.end]
    }

    /// Number of matching triples.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The in-memory triple table.
///
/// The triple list and membership set are `Arc`-shared so that clones and
/// [`TripleStore::snapshot`]s are O(built index runs): the data itself is
/// copied only when a mutation hits a store whose parts are still shared
/// (`Arc::make_mut` — copy-on-write at whole-structure granularity).
#[derive(Debug, Default)]
pub struct TripleStore {
    triples: Arc<Vec<Triple>>,
    seen: Arc<FxHashSet<Triple>>,
    version: u64,
    indexes: RwLock<[Option<IndexSnapshot>; 6]>,
    distinct: RwLock<Option<(u64, [usize; 3])>>,
}

impl Clone for TripleStore {
    fn clone(&self) -> Self {
        // The list, set, and built index runs are all behind `Arc`s, so a
        // clone shares everything (including warm caches); either side's
        // next mutation un-shares its own copy.
        Self {
            triples: Arc::clone(&self.triples),
            seen: Arc::clone(&self.seen),
            version: self.version,
            indexes: RwLock::new(self.current_index_slots()),
            distinct: RwLock::new(*read_unpoisoned(&self.distinct)),
        }
    }
}

/// An immutable, pinned generation of a [`TripleStore`].
///
/// Produced by [`TripleStore::snapshot`] in O(built index runs) time: the
/// triple list, membership set, and every index run valid at the pinned
/// version are `Arc`-shared with the live store, which un-shares its own
/// copies on its next mutation (copy-on-write). The snapshot derefs to
/// `TripleStore`, so every read API — `range`, `pattern_range`,
/// `match_count`, the engines' cursors — works on a pinned generation
/// unchanged, and keeps answering as-of [`StoreSnapshot::version`] no
/// matter how far the live store moves on. Cloning a snapshot is one
/// `Arc` bump; dropping the last clone releases the pinned generation's
/// share of the data.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    inner: Arc<TripleStore>,
}

impl StoreSnapshot {
    /// The generation this snapshot is pinned to.
    pub fn version(&self) -> u64 {
        self.inner.version
    }
}

impl std::ops::Deref for StoreSnapshot {
    type Target = TripleStore;
    fn deref(&self) -> &TripleStore {
        &self.inner
    }
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            triples: Arc::new(Vec::with_capacity(cap)),
            seen: Arc::new(FxHashSet::with_capacity_and_hasher(cap, Default::default())),
            ..Default::default()
        }
    }

    /// Reconstructs a store from persisted parts: the triple list (already
    /// deduplicated, in insertion order) and the version stamp it carried
    /// when serialized. The seen-set is rebuilt; index snapshots start
    /// cold. Restoring the *same* version matters for durability: sessions
    /// and plans pinned to the persisted store remain valid after a
    /// reload, and write-ahead-log records stamped with pre-apply versions
    /// replay against the exact counter they were logged under.
    pub fn from_parts(triples: Vec<Triple>, version: u64) -> Self {
        let seen: FxHashSet<Triple> = triples.iter().copied().collect();
        debug_assert_eq!(
            seen.len(),
            triples.len(),
            "persisted triples must be distinct"
        );
        Self {
            triples: Arc::new(triples),
            seen: Arc::new(seen),
            version,
            indexes: RwLock::new(Default::default()),
            distinct: RwLock::new(None),
        }
    }

    /// Pins the current generation as an immutable [`StoreSnapshot`].
    ///
    /// O(built index runs): the triple list, membership set, and every
    /// index run valid at the current version are shared by `Arc`; no
    /// triple is copied. The live store's next mutation copies the shared
    /// parts once (`Arc::make_mut`) and, for the batch entry points,
    /// publishes new index runs — the snapshot's runs are never touched,
    /// so pinned readers run wait-free while writes proceed.
    ///
    /// Memory: a retained snapshot holds the whole generation alive —
    /// `O(|triples|)` for the list + set plus `O(|triples|)` per index
    /// run built at pin time, *shared* with the live store until a
    /// mutation diverges them. Drop the snapshot to release its pin.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            inner: Arc::new(self.clone()),
        }
    }

    /// The index-cache entries still valid at the current version, as a
    /// fresh slot array (stale entries are dropped rather than copied).
    fn current_index_slots(&self) -> [Option<IndexSnapshot>; 6] {
        let guard = read_unpoisoned(&self.indexes);
        let mut slots: [Option<IndexSnapshot>; 6] = Default::default();
        for (slot, entry) in guard.iter().enumerate() {
            if let Some(snap) = entry {
                if snap.version == self.version {
                    slots[slot] = Some(snap.clone());
                }
            }
        }
        slots
    }

    /// The store's version stamp: a counter bumped by every mutation
    /// (once per call for the batch entry points). Snapshot caches — and
    /// the selection pipeline's `Preparation` sessions — compare versions
    /// to detect that the data changed underneath them.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Inserts a triple; returns `true` if it was not present before.
    /// Built index runs are invalidated lazily (version mismatch) — the
    /// batch entry points instead carry them forward, so saturation-style
    /// hot loops of single inserts pay nothing for index maintenance.
    pub fn insert(&mut self, t: Triple) -> bool {
        if self.seen.contains(&t) {
            return false;
        }
        Arc::make_mut(&mut self.seen).insert(t);
        Arc::make_mut(&mut self.triples).push(t);
        self.version += 1;
        true
    }

    /// Inserts a batch of triples, deduplicating against the triple set
    /// (and within the batch). Returns the triples that were actually new,
    /// in batch order. The version stamp is bumped **once** for the whole
    /// batch, and every already-built index run is carried forward by a
    /// two-way merge with the sorted batch — O(n + |Δ| log |Δ|) per run
    /// instead of a fresh O(n log n) sort — published as a **new** `Arc`
    /// at the new version, leaving pinned snapshots' runs untouched.
    pub fn insert_batch(&mut self, batch: &[Triple]) -> Vec<Triple> {
        let mut added = Vec::new();
        for &t in batch {
            if self.seen.contains(&t) {
                continue;
            }
            Arc::make_mut(&mut self.seen).insert(t);
            Arc::make_mut(&mut self.triples).push(t);
            added.push(t);
        }
        if !added.is_empty() {
            self.advance_indexes_insert(&added);
            self.version += 1;
        }
        added
    }

    /// Carries every index run built at the current version forward across
    /// an insert batch, stamping the merged runs `version + 1`. Must be
    /// called immediately **before** the batch's version bump; runs built
    /// at any other version are dropped.
    fn advance_indexes_insert(&self, added: &[Triple]) {
        let mut guard = write_unpoisoned(&self.indexes);
        for (slot, entry) in guard.iter_mut().enumerate() {
            let Some(snap) = entry.take() else { continue };
            if snap.version != self.version {
                continue; // stale run: drop instead of merging garbage
            }
            let perm = IndexOrder::ALL[slot].perm();
            let key = |t: &Triple| [t[perm[0]], t[perm[1]], t[perm[2]]];
            let mut delta = added.to_vec();
            delta.sort_unstable_by_key(key);
            let old = &snap.sorted;
            let mut merged = Vec::with_capacity(old.len() + delta.len());
            let (mut i, mut j) = (0, 0);
            while i < old.len() && j < delta.len() {
                if key(&old[i]) <= key(&delta[j]) {
                    merged.push(old[i]);
                    i += 1;
                } else {
                    merged.push(delta[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&old[i..]);
            merged.extend_from_slice(&delta[j..]);
            *entry = Some(IndexSnapshot {
                version: self.version + 1,
                sorted: Arc::new(merged),
            });
        }
    }

    /// Filter-pass counterpart of [`TripleStore::advance_indexes_insert`]
    /// for remove batches: surviving triples keep their index order.
    fn advance_indexes_remove(&self, doomed: &FxHashSet<Triple>) {
        let mut guard = write_unpoisoned(&self.indexes);
        for entry in guard.iter_mut() {
            let Some(snap) = entry.take() else { continue };
            if snap.version != self.version {
                continue;
            }
            let kept: Vec<Triple> = snap
                .sorted
                .iter()
                .copied()
                .filter(|t| !doomed.contains(t))
                .collect();
            *entry = Some(IndexSnapshot {
                version: self.version + 1,
                sorted: Arc::new(kept),
            });
        }
    }

    /// Inserts every triple of an iterator; returns how many were new.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = Triple>) -> usize {
        iter.into_iter().filter(|&t| self.insert(t)).count()
    }

    /// Removes a triple; returns `true` if it was present. Insertion order
    /// of the remaining triples is preserved; index snapshots are
    /// invalidated. O(n) — deletion feeds are expected to be rare relative
    /// to scans (the paper's VMC model assumes insert-dominated updates).
    pub fn remove(&mut self, t: Triple) -> bool {
        if !self.seen.contains(&t) {
            return false;
        }
        Arc::make_mut(&mut self.seen).remove(&t);
        let triples = Arc::make_mut(&mut self.triples);
        let pos = triples
            .iter()
            .position(|&x| x == t)
            // xlint: allow(X001, reason = "the seen set answered true, so the triple is in the list")
            .expect("seen-set and triple list in sync");
        triples.remove(pos);
        self.version += 1;
        true
    }

    /// Removes a batch of triples. Returns the triples that were actually
    /// present (deduplicated), in batch order. Unlike repeated
    /// [`TripleStore::remove`] calls — O(n) each — the surviving triple
    /// list is rebuilt in **one** retain pass, the version stamp is
    /// bumped once for the whole batch, and every already-built index run
    /// is carried forward by a filter pass (new `Arc`s; pinned snapshots'
    /// runs stay untouched).
    pub fn remove_batch(&mut self, batch: &[Triple]) -> Vec<Triple> {
        let mut removed = Vec::new();
        for &t in batch {
            if !self.seen.contains(&t) {
                continue;
            }
            Arc::make_mut(&mut self.seen).remove(&t);
            removed.push(t);
        }
        if removed.is_empty() {
            return removed;
        }
        let doomed: FxHashSet<Triple> = removed.iter().copied().collect();
        self.advance_indexes_remove(&doomed);
        Arc::make_mut(&mut self.triples).retain(|t| !doomed.contains(t));
        self.version += 1;
        removed
    }

    /// Membership test (hash lookup, no index needed).
    pub fn contains(&self, t: Triple) -> bool {
        self.seen.contains(&t)
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// A sorted snapshot for the given order, built lazily and shared.
    pub fn index(&self, order: IndexOrder) -> Arc<Vec<Triple>> {
        let slot = order.slot();
        {
            let guard = read_unpoisoned(&self.indexes);
            if let Some(snap) = &guard[slot] {
                if snap.version == self.version {
                    return Arc::clone(&snap.sorted);
                }
            }
        }
        let perm = order.perm();
        let mut sorted = (*self.triples).clone();
        sorted.sort_unstable_by_key(|t| [t[perm[0]], t[perm[1]], t[perm[2]]]);
        let sorted = Arc::new(sorted);
        let mut guard = write_unpoisoned(&self.indexes);
        guard[slot] = Some(IndexSnapshot {
            version: self.version,
            sorted: Arc::clone(&sorted),
        });
        sorted
    }

    /// The `[start, end)` range of `index(order)` whose key columns equal
    /// `key` (a prefix in the order's comparison sequence), binary-searched.
    pub fn range(&self, order: IndexOrder, key: &[Id]) -> IndexRange {
        let idx = self.index(order);
        let perm = order.perm();
        let cmp_prefix = |t: &Triple| -> std::cmp::Ordering {
            for (k, &key_val) in key.iter().enumerate() {
                match t[perm[k]].cmp(&key_val) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        };
        let start = idx.partition_point(|t| cmp_prefix(t) == std::cmp::Ordering::Less);
        let end =
            start + idx[start..].partition_point(|t| cmp_prefix(t) == std::cmp::Ordering::Equal);
        IndexRange {
            sorted: idx,
            start,
            end,
        }
    }

    /// The matches of `pat` as a range over the best permutation index:
    /// the order is chosen so its sort prefix covers every bound column,
    /// making the range exact (no post-filtering needed). An all-free
    /// pattern ranges over the whole SPO snapshot.
    pub fn pattern_range(&self, pat: &StorePattern) -> IndexRange {
        let (order, key) = IndexOrder::for_pattern(pat);
        self.range(order, &key)
    }

    /// Calls `f` for every triple matching `pat`, using the best index.
    pub fn for_each_match(&self, pat: &StorePattern, mut f: impl FnMut(Triple)) {
        if pat.bound_count() == 0 {
            for &t in self.triples.iter() {
                f(t);
            }
            return;
        }
        for &t in self.pattern_range(pat).as_slice() {
            // With a full prefix the range is exact; a 2-bound pattern on
            // non-adjacent sort columns cannot happen by construction.
            debug_assert!(pat.matches(t));
            f(t);
        }
    }

    /// Collects every triple matching `pat`.
    pub fn matching(&self, pat: &StorePattern) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(pat, |t| out.push(t));
        out
    }

    /// Exact number of triples matching `pat` — the statistic the paper
    /// counts for every workload atom and its relaxations (Section 3.3).
    pub fn match_count(&self, pat: &StorePattern) -> usize {
        match pat.bound_count() {
            0 => self.len(),
            // xlint: allow(X001, reason = "bound_count() == 3 means all three fields are Some")
            3 => usize::from(self.contains([pat.s.unwrap(), pat.p.unwrap(), pat.o.unwrap()])),
            _ => self.pattern_range(pat).len(),
        }
    }

    /// Number of distinct values in each column `(s, p, o)` — the paper's
    /// per-column statistics used by the cardinality estimator.
    pub fn distinct_counts(&self) -> [usize; 3] {
        {
            let guard = read_unpoisoned(&self.distinct);
            if let Some((version, counts)) = *guard {
                if version == self.version {
                    return counts;
                }
            }
        }
        // One pass over the triple list with three small hash sets —
        // properties (and often objects) have far fewer distinct values
        // than triples, so this beats forcing three full sorted snapshots
        // into existence just to count runs.
        let mut seen: [FxHashSet<Id>; 3] = Default::default();
        for t in self.triples.iter() {
            for (c, set) in seen.iter_mut().enumerate() {
                set.insert(t[c]);
            }
        }
        let counts = [seen[S].len(), seen[P].len(), seen[O].len()];
        *write_unpoisoned(&self.distinct) = Some((self.version, counts));
        counts
    }

    /// Minimum and maximum id per column, if non-empty.
    pub fn min_max(&self) -> Option<[(Id, Id); 3]> {
        if self.is_empty() {
            return None;
        }
        let mut mm = [(Id(u32::MAX), Id(0)); 3];
        for t in self.triples.iter() {
            for c in 0..3 {
                if t[c] < mm[c].0 {
                    mm[c].0 = t[c];
                }
                if t[c] > mm[c].1 {
                    mm[c].1 = t[c];
                }
            }
        }
        Some(mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_groups_lists_groups_consecutively() {
        // Constant property, then subject, then object: Pso.
        assert_eq!(
            IndexOrder::for_groups(&[&[P], &[S], &[O]]),
            Some(IndexOrder::Pso)
        );
        // A two-column group (repeated variable over s and o) after p.
        let order = IndexOrder::for_groups(&[&[P], &[S, O]]).expect("satisfiable");
        assert_eq!(order.perm()[0], P);
        // No constants, object variable first.
        let order = IndexOrder::for_groups(&[&[O], &[P]]).expect("satisfiable");
        let perm = order.perm();
        assert_eq!((perm[0], perm[1]), (O, P));
        // Every ordered partition of a subset of {s,p,o} is satisfiable.
        for a in 0..3 {
            for b in 0..3 {
                if a == b {
                    continue;
                }
                assert!(IndexOrder::for_groups(&[&[a], &[b]]).is_some());
                let c = 3 - a - b;
                assert!(IndexOrder::for_groups(&[&[a], &[b], &[c]]).is_some());
                assert!(IndexOrder::for_groups(&[&[a], &[b, c]]).is_some());
                assert!(IndexOrder::for_groups(&[&[a, b], &[c]]).is_some());
            }
        }
        // Malformed: a column repeated across groups is unsatisfiable.
        assert_eq!(IndexOrder::for_groups(&[&[S], &[S]]), None);
    }

    fn store_with(n: u32) -> TripleStore {
        // Deterministic little dataset: p in {0,1,2}, s in 0..n, o = s*7 % n.
        let mut st = TripleStore::new();
        for s in 0..n {
            for p in 0..3u32 {
                st.insert([Id(s), Id(100 + p), Id(s * 7 % n)]);
            }
        }
        st
    }

    #[test]
    fn insert_dedups_and_preserves_order() {
        let mut st = TripleStore::new();
        assert!(st.insert([Id(1), Id(2), Id(3)]));
        assert!(!st.insert([Id(1), Id(2), Id(3)]));
        assert!(st.insert([Id(0), Id(0), Id(0)]));
        assert_eq!(
            st.triples(),
            &[[Id(1), Id(2), Id(3)], [Id(0), Id(0), Id(0)]]
        );
    }

    #[test]
    fn all_orders_agree_with_linear_scan() {
        let st = store_with(29);
        let pats = vec![
            StorePattern::ALL,
            StorePattern::with_s(Id(3)),
            StorePattern::with_p(Id(101)),
            StorePattern::with_o(Id(21)),
            StorePattern::with_sp(Id(3), Id(101)),
            StorePattern::with_so(Id(3), Id(21)),
            StorePattern::with_po(Id(101), Id(21)),
            StorePattern::exact(Id(3), Id(101), Id(21)),
            StorePattern::with_p(Id(999)), // no matches
        ];
        for pat in pats {
            let mut expect: Vec<Triple> = st
                .triples()
                .iter()
                .copied()
                .filter(|&t| pat.matches(t))
                .collect();
            expect.sort_unstable();
            let mut got = st.matching(&pat);
            got.sort_unstable();
            assert_eq!(got, expect, "pattern {pat:?}");
            assert_eq!(st.match_count(&pat), expect.len(), "count {pat:?}");
        }
    }

    #[test]
    fn remove_deletes_and_invalidates() {
        let mut st = store_with(5);
        let t = [Id(1), Id(100), Id(7 % 5)];
        let before = st.match_count(&StorePattern::with_p(Id(100)));
        assert!(st.contains(t));
        assert!(st.remove(t));
        assert!(!st.remove(t), "second removal is a no-op");
        assert!(!st.contains(t));
        assert_eq!(st.match_count(&StorePattern::with_p(Id(100))), before - 1);
        // Re-insertion works and is visible to the indexes again.
        assert!(st.insert(t));
        assert_eq!(st.match_count(&StorePattern::with_p(Id(100))), before);
    }

    #[test]
    fn remove_preserves_insertion_order() {
        let mut st = TripleStore::new();
        st.insert([Id(1), Id(2), Id(3)]);
        st.insert([Id(4), Id(5), Id(6)]);
        st.insert([Id(7), Id(8), Id(9)]);
        st.remove([Id(4), Id(5), Id(6)]);
        assert_eq!(
            st.triples(),
            &[[Id(1), Id(2), Id(3)], [Id(7), Id(8), Id(9)]]
        );
    }

    #[test]
    fn batch_insert_dedups_and_bumps_version_once() {
        let mut st = store_with(5);
        let v0 = st.version();
        let existing = st.triples()[0];
        let batch = [
            [Id(90), Id(100), Id(90)],
            existing, // duplicate vs store
            [Id(91), Id(100), Id(91)],
            [Id(90), Id(100), Id(90)], // duplicate within batch
        ];
        let added = st.insert_batch(&batch);
        assert_eq!(
            added,
            vec![[Id(90), Id(100), Id(90)], [Id(91), Id(100), Id(91)]]
        );
        assert_eq!(st.version(), v0 + 1, "one bump per batch");
        // A fully-duplicate batch is a version no-op.
        assert!(st.insert_batch(&batch).is_empty());
        assert_eq!(st.version(), v0 + 1);
        // The indexes see the batch.
        assert_eq!(
            st.match_count(&StorePattern::exact(Id(91), Id(100), Id(91))),
            1
        );
    }

    #[test]
    fn batch_remove_dedups_and_preserves_order() {
        let mut st = TripleStore::new();
        st.insert([Id(1), Id(2), Id(3)]);
        st.insert([Id(4), Id(5), Id(6)]);
        st.insert([Id(7), Id(8), Id(9)]);
        let v0 = st.version();
        let removed = st.remove_batch(&[
            [Id(4), Id(5), Id(6)],
            [Id(9), Id(9), Id(9)], // absent
            [Id(4), Id(5), Id(6)], // duplicate within batch
            [Id(1), Id(2), Id(3)],
        ]);
        assert_eq!(removed, vec![[Id(4), Id(5), Id(6)], [Id(1), Id(2), Id(3)]]);
        assert_eq!(st.version(), v0 + 1, "one bump per batch");
        assert_eq!(st.triples(), &[[Id(7), Id(8), Id(9)]]);
        // Removing nothing is a version no-op.
        assert!(st.remove_batch(&[[Id(9), Id(9), Id(9)]]).is_empty());
        assert_eq!(st.version(), v0 + 1);
    }

    #[test]
    fn batch_remove_matches_sequential_removes() {
        let mut a = store_with(9);
        let mut b = a.clone();
        let doomed: Vec<Triple> = a.triples().iter().copied().step_by(3).collect();
        let removed = a.remove_batch(&doomed);
        assert_eq!(removed, doomed);
        for &t in &doomed {
            assert!(b.remove(t));
        }
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn index_invalidation_on_insert() {
        let mut st = store_with(5);
        let before = st.match_count(&StorePattern::with_p(Id(100)));
        st.insert([Id(99), Id(100), Id(99)]);
        let after = st.match_count(&StorePattern::with_p(Id(100)));
        assert_eq!(after, before + 1);
    }

    #[test]
    fn distinct_counts_match_naive() {
        let st = store_with(17);
        let naive = |col: usize| {
            let mut set = std::collections::HashSet::new();
            for t in st.triples() {
                set.insert(t[col]);
            }
            set.len()
        };
        assert_eq!(st.distinct_counts(), [naive(0), naive(1), naive(2)]);
    }

    #[test]
    fn min_max_bounds() {
        let st = store_with(4);
        let mm = st.min_max().unwrap();
        assert_eq!(mm[1], (Id(100), Id(102)));
        assert!(mm[0].0 <= mm[0].1);
        assert!(TripleStore::new().min_max().is_none());
    }

    #[test]
    fn from_parts_restores_version_and_contents() {
        let mut st = store_with(7);
        st.insert([Id(200), Id(201), Id(202)]);
        let restored = TripleStore::from_parts(st.triples().to_vec(), st.version());
        assert_eq!(restored.version(), st.version());
        assert_eq!(restored.triples(), st.triples());
        assert!(restored.contains([Id(200), Id(201), Id(202)]));
        assert_eq!(
            restored.match_count(&StorePattern::with_p(Id(100))),
            st.match_count(&StorePattern::with_p(Id(100)))
        );
        assert_eq!(restored.distinct_counts(), st.distinct_counts());
    }

    #[test]
    fn clone_preserves_contents() {
        let st = store_with(7);
        let cl = st.clone();
        assert_eq!(st.triples(), cl.triples());
        assert_eq!(
            cl.match_count(&StorePattern::with_p(Id(102))),
            st.match_count(&StorePattern::with_p(Id(102)))
        );
    }

    #[test]
    fn snapshot_pins_contents_across_mutations() {
        let mut st = store_with(7);
        let pinned_len = st.len();
        let pinned_version = st.version();
        let p100 = StorePattern::with_p(Id(100));
        let pinned_p100 = st.match_count(&p100);
        let snap = st.snapshot();

        st.insert_batch(&[[Id(70), Id(100), Id(70)], [Id(71), Id(100), Id(71)]]);
        st.remove_batch(&[[Id(0), Id(101), Id(0)]]);
        st.insert([Id(72), Id(100), Id(72)]);

        assert_eq!(snap.version(), pinned_version);
        assert_eq!(snap.len(), pinned_len);
        assert_eq!(snap.match_count(&p100), pinned_p100);
        assert!(!snap.contains([Id(70), Id(100), Id(70)]));
        assert!(snap.contains([Id(0), Id(101), Id(0)]));
        // The live store moved on.
        assert_eq!(st.match_count(&p100), pinned_p100 + 3);
        assert!(st.version() > pinned_version);
    }

    #[test]
    fn snapshot_shares_built_index_runs() {
        let st = store_with(7);
        let live_run = st.index(IndexOrder::Pos);
        let snap = st.snapshot();
        // Pin is O(built runs): the snapshot reuses the same sorted run.
        assert!(Arc::ptr_eq(&live_run, &snap.index(IndexOrder::Pos)));
        // Unbuilt orders are built on the snapshot independently.
        let snap_run = snap.index(IndexOrder::Ops);
        assert_eq!(snap_run.len(), snap.len());
    }

    #[test]
    fn batch_mutations_advance_built_index_runs() {
        let mut st = store_with(9);
        // Build every run, then batch-mutate: runs must be carried forward
        // (merge / filter), not rebuilt, and must equal a fresh sort.
        for order in IndexOrder::ALL {
            st.index(order);
        }
        let old_run = st.index(IndexOrder::Sop);
        st.insert_batch(&[
            [Id(90), Id(100), Id(90)],
            [Id(0), Id(100), Id(50)],
            [Id(91), Id(102), Id(1)],
        ]);
        st.remove_batch(&[[Id(1), Id(100), Id(7)], [Id(2), Id(101), Id(14 % 9)]]);
        for order in IndexOrder::ALL {
            let advanced = st.index(order);
            let fresh = TripleStore::from_parts(st.triples().to_vec(), 0).index(order);
            assert_eq!(*advanced, *fresh, "order {order:?}");
        }
        // The pre-batch run object was not mutated in place.
        assert_eq!(old_run.len(), 27);
    }

    #[test]
    fn single_mutations_invalidate_runs_lazily() {
        let mut st = store_with(5);
        st.index(IndexOrder::Spo);
        st.insert([Id(80), Id(100), Id(80)]);
        // The run is rebuilt on next access and sees the new triple.
        let run = st.index(IndexOrder::Spo);
        assert_eq!(run.len(), st.len());
        assert!(run.contains(&[Id(80), Id(100), Id(80)]));
    }

    #[test]
    fn clone_shares_then_diverges() {
        let mut a = store_with(5);
        a.index(IndexOrder::Spo);
        let mut b = a.clone();
        assert_eq!(a.triples(), b.triples());
        b.insert([Id(60), Id(100), Id(60)]);
        a.remove([Id(0), Id(100), Id(0)]);
        assert!(b.contains([Id(60), Id(100), Id(60)]));
        assert!(!a.contains([Id(60), Id(100), Id(60)]));
        assert!(b.contains([Id(0), Id(100), Id(0)]));
        assert_eq!(a.len() + 2, b.len());
    }

    #[test]
    fn full_prefix_three_bound() {
        let st = store_with(11);
        assert_eq!(
            st.match_count(&StorePattern::exact(Id(1), Id(100), Id(7))),
            1
        );
        assert_eq!(
            st.match_count(&StorePattern::exact(Id(1), Id(100), Id(8))),
            0
        );
    }
}
