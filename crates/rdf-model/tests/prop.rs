//! Property tests for the store: every index order must agree with a
//! linear scan, for arbitrary triple sets and patterns.

use proptest::prelude::*;
use rdf_model::{Id, StorePattern, TripleStore};

fn triples_strategy() -> impl Strategy<Value = Vec<[u32; 3]>> {
    prop::collection::vec([0u32..12, 0u32..6, 0u32..12], 0..120)
}

fn pattern_strategy() -> impl Strategy<Value = [Option<u32>; 3]> {
    [
        prop::option::of(0u32..12),
        prop::option::of(0u32..6),
        prop::option::of(0u32..12),
    ]
}

proptest! {
    #[test]
    fn index_scans_agree_with_linear_scan(
        triples in triples_strategy(),
        pats in prop::collection::vec(pattern_strategy(), 1..12),
    ) {
        let mut store = TripleStore::new();
        for t in &triples {
            store.insert([Id(t[0]), Id(t[1]), Id(t[2])]);
        }
        for p in pats {
            let pat = StorePattern::new(p[0].map(Id), p[1].map(Id), p[2].map(Id));
            let mut expected: Vec<[Id; 3]> = store
                .triples()
                .iter()
                .copied()
                .filter(|&t| pat.matches(t))
                .collect();
            expected.sort_unstable();
            let mut got = store.matching(&pat);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(store.match_count(&pat), expected.len());
        }
    }

    #[test]
    fn insert_then_contains(triples in triples_strategy()) {
        let mut store = TripleStore::new();
        let mut reference = std::collections::HashSet::new();
        for t in &triples {
            let t = [Id(t[0]), Id(t[1]), Id(t[2])];
            prop_assert_eq!(store.insert(t), reference.insert(t));
        }
        prop_assert_eq!(store.len(), reference.len());
        for t in &reference {
            prop_assert!(store.contains(*t));
        }
    }

    #[test]
    fn distinct_counts_are_exact(triples in triples_strategy()) {
        let mut store = TripleStore::new();
        for t in &triples {
            store.insert([Id(t[0]), Id(t[1]), Id(t[2])]);
        }
        let counts = store.distinct_counts();
        for col in 0..3 {
            let expected: std::collections::HashSet<Id> =
                store.triples().iter().map(|t| t[col]).collect();
            prop_assert_eq!(counts[col], expected.len());
        }
    }

    #[test]
    fn interleaved_insert_and_scan(
        batches in prop::collection::vec(triples_strategy(), 1..4),
    ) {
        // Index snapshots must be correctly invalidated by writes.
        let mut store = TripleStore::new();
        for batch in &batches {
            for t in batch {
                store.insert([Id(t[0]), Id(t[1]), Id(t[2])]);
            }
            let pat = StorePattern::with_p(Id(1));
            let expected = store
                .triples()
                .iter()
                .filter(|t| t[1] == Id(1))
                .count();
            prop_assert_eq!(store.match_count(&pat), expected);
        }
    }
}
