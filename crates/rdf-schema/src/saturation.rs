//! Database saturation: materializing all implicit triples entailed by an
//! RDFS.
//!
//! The paper's Section 4.2 describes saturation as the inflationary fixpoint
//! of the RDF entailment rules; as in its experiments, we consider the four
//! instance-level rules derived from an RDFS (Table 1):
//!
//! 1. `(s, rdf:type, c1)` and `c1 ⊑ c2`     ⇒ `(s, rdf:type, c2)`
//! 2. `(s, p1, o)` and `p1 ⊑p p2`           ⇒ `(s, p2, o)`
//! 3. `(s, p, o)` and `p rdfs:domain c`     ⇒ `(s, rdf:type, c)`
//! 4. `(s, p, o)` and `p rdfs:range c`      ⇒ `(o, rdf:type, c)`
//!
//! The fixpoint is computed semi-naïvely: each triple is processed exactly
//! once, and rule chaining (e.g. subproperty then domain then subclass) is
//! handled by the worklist. The derived-triple bound `O(|D| × |S|)` quoted
//! in Section 6.5 follows: each data triple can trigger at most one
//! derivation per schema statement per chain step.

use rdf_model::{Id, Triple, TripleStore};

use crate::schema::Schema;
use crate::VocabIds;

/// Counters describing a saturation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SaturationStats {
    /// Triples present before saturation.
    pub explicit: usize,
    /// Implicit triples added.
    pub implicit: usize,
    /// Worklist items processed (explicit + implicit).
    pub processed: usize,
}

impl SaturationStats {
    /// Total triples after saturation.
    pub fn total(&self) -> usize {
        self.explicit + self.implicit
    }
}

/// Saturates `store` in place; returns the number of implicit triples
/// added.
pub fn saturate(store: &mut TripleStore, schema: &Schema, vocab: &VocabIds) -> usize {
    saturate_with_stats(store, schema, vocab).implicit
}

/// Saturates `store` in place and reports counters.
pub fn saturate_with_stats(
    store: &mut TripleStore,
    schema: &Schema,
    vocab: &VocabIds,
) -> SaturationStats {
    let mut stats = SaturationStats {
        explicit: store.len(),
        ..Default::default()
    };
    let rdf_type = vocab.rdf_type;
    let mut queue: Vec<Triple> = store.triples().to_vec();
    let mut derived: Vec<Triple> = Vec::new();
    while let Some(t) = queue.pop() {
        stats.processed += 1;
        derive_one(t, rdf_type, schema, &mut derived);
        for nt in derived.drain(..) {
            if store.insert(nt) {
                stats.implicit += 1;
                queue.push(nt);
            }
        }
    }
    stats
}

/// Applies each rule once to `t`, pushing consequents into `out`.
fn derive_one(t: Triple, rdf_type: Id, schema: &Schema, out: &mut Vec<Triple>) {
    let [s, p, o] = t;
    if p == rdf_type {
        // Rule 1: propagate membership to direct superclasses.
        for &c2 in schema.direct_super_classes(o) {
            out.push([s, rdf_type, c2]);
        }
    } else {
        // Rule 2: propagate the triple to direct superproperties.
        for &p2 in schema.direct_super_properties(p) {
            out.push([s, p2, o]);
        }
        // Rule 3: domain typing.
        for &c in schema.domains(p) {
            out.push([s, rdf_type, c]);
        }
        // Rule 4: range typing.
        for &c in schema.ranges(p) {
            out.push([o, rdf_type, c]);
        }
    }
}

/// Returns a saturated copy, leaving `store` untouched (the paper's
/// "reformulation scenario" keeps the database unchanged; this helper exists
/// for comparing the two sides of Theorem 4.2).
pub fn saturated_copy(store: &TripleStore, schema: &Schema, vocab: &VocabIds) -> TripleStore {
    let mut copy = store.clone();
    saturate(&mut copy, schema, vocab);
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaStatement;
    use rdf_model::{Dataset, Dictionary};

    struct Fixture {
        vocab: VocabIds,
        ids: std::collections::HashMap<&'static str, Id>,
    }

    fn fixture(names: &[&'static str]) -> (Dictionary, Fixture) {
        let mut dict = Dictionary::new();
        let vocab = VocabIds::intern(&mut dict);
        let ids = names.iter().map(|&n| (n, dict.intern_uri(n))).collect();
        (dict, Fixture { vocab, ids })
    }

    #[test]
    fn paper_section_4_1_example() {
        // hasPainted ⊑ hasCreated; range(hasPainted)=painting;
        // range(hasCreated)=masterpiece; painting ⊑ masterpiece ⊑ work.
        // (u, hasPainted, b) must entail (u, hasCreated, b) and
        // b : painting, masterpiece, work.
        let (mut dict, f) = fixture(&[
            "hasPainted",
            "hasCreated",
            "painting",
            "masterpiece",
            "work",
            "u",
        ]);
        let b = dict.intern_blank("b");
        let id = |n: &str| f.ids[n];
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubPropertyOf(
            id("hasPainted"),
            id("hasCreated"),
        ));
        schema.add(SchemaStatement::Range(id("hasPainted"), id("painting")));
        schema.add(SchemaStatement::Range(id("hasCreated"), id("masterpiece")));
        schema.add(SchemaStatement::SubClassOf(
            id("painting"),
            id("masterpiece"),
        ));
        schema.add(SchemaStatement::SubClassOf(id("masterpiece"), id("work")));

        let mut store = TripleStore::new();
        store.insert([id("u"), id("hasPainted"), b]);
        let stats = saturate_with_stats(&mut store, &schema, &f.vocab);

        let ty = f.vocab.rdf_type;
        assert!(store.contains([id("u"), id("hasCreated"), b]));
        assert!(store.contains([b, ty, id("painting")]));
        assert!(store.contains([b, ty, id("masterpiece")]));
        assert!(store.contains([b, ty, id("work")]));
        assert_eq!(stats.explicit, 1);
        assert_eq!(stats.implicit, 4);
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn introduction_driver_license_example() {
        // domain(driverLicenseNo) = person; the fact that John has a license
        // implies John is a person.
        let (_dict, f) = fixture(&["driverLicenseNo", "person", "john", "12345"]);
        let id = |n: &str| f.ids[n];
        let mut schema = Schema::new();
        schema.add(SchemaStatement::Domain(id("driverLicenseNo"), id("person")));
        let mut store = TripleStore::new();
        store.insert([id("john"), id("driverLicenseNo"), id("12345")]);
        saturate(&mut store, &schema, &f.vocab);
        assert!(store.contains([id("john"), f.vocab.rdf_type, id("person")]));
    }

    #[test]
    fn saturation_is_idempotent() {
        let (_dict, f) = fixture(&["p", "q", "c", "a", "b"]);
        let id = |n: &str| f.ids[n];
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubPropertyOf(id("p"), id("q")));
        schema.add(SchemaStatement::Domain(id("q"), id("c")));
        let mut store = TripleStore::new();
        store.insert([id("a"), id("p"), id("b")]);
        let first = saturate(&mut store, &schema, &f.vocab);
        assert_eq!(first, 2); // (a,q,b) and (a,type,c)
        let second = saturate(&mut store, &schema, &f.vocab);
        assert_eq!(second, 0);
    }

    #[test]
    fn saturated_copy_leaves_original() {
        let (_dict, f) = fixture(&["p", "c", "a", "b"]);
        let id = |n: &str| f.ids[n];
        let mut schema = Schema::new();
        schema.add(SchemaStatement::Range(id("p"), id("c")));
        let mut store = TripleStore::new();
        store.insert([id("a"), id("p"), id("b")]);
        let sat = saturated_copy(&store, &schema, &f.vocab);
        assert_eq!(store.len(), 1);
        assert_eq!(sat.len(), 2);
    }

    #[test]
    fn empty_schema_adds_nothing() {
        let (_dict, f) = fixture(&["p", "a", "b"]);
        let id = |n: &str| f.ids[n];
        let mut store = TripleStore::new();
        store.insert([id("a"), id("p"), id("b")]);
        assert_eq!(saturate(&mut store, &Schema::new(), &f.vocab), 0);
    }

    #[test]
    fn cyclic_schema_terminates() {
        let (_dict, f) = fixture(&["c1", "c2", "x"]);
        let id = |n: &str| f.ids[n];
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubClassOf(id("c1"), id("c2")));
        schema.add(SchemaStatement::SubClassOf(id("c2"), id("c1")));
        let mut store = TripleStore::new();
        store.insert([id("x"), f.vocab.rdf_type, id("c1")]);
        let added = saturate(&mut store, &schema, &f.vocab);
        assert_eq!(added, 1); // only (x, type, c2)
    }

    #[test]
    fn diamond_saturation_no_duplicates() {
        let (_dict, f) = fixture(&["a", "b", "c", "d", "x"]);
        let id = |n: &str| f.ids[n];
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubClassOf(id("d"), id("b")));
        schema.add(SchemaStatement::SubClassOf(id("d"), id("c")));
        schema.add(SchemaStatement::SubClassOf(id("b"), id("a")));
        schema.add(SchemaStatement::SubClassOf(id("c"), id("a")));
        let mut store = TripleStore::new();
        store.insert([id("x"), f.vocab.rdf_type, id("d")]);
        let added = saturate(&mut store, &schema, &f.vocab);
        // b, c, and a (once, despite two derivation paths).
        assert_eq!(added, 3);
    }

    #[test]
    fn domain_of_superproperty_applies_to_subproperty_triples() {
        // p1 ⊑ p2, domain(p2) = c: (s, p1, o) entails (s, type, c) through
        // the chained rules.
        let (_dict, f) = fixture(&["p1", "p2", "c", "s", "o"]);
        let id = |n: &str| f.ids[n];
        let mut schema = Schema::new();
        schema.add(SchemaStatement::SubPropertyOf(id("p1"), id("p2")));
        schema.add(SchemaStatement::Domain(id("p2"), id("c")));
        let mut store = TripleStore::new();
        store.insert([id("s"), id("p1"), id("o")]);
        saturate(&mut store, &schema, &f.vocab);
        assert!(store.contains([id("s"), f.vocab.rdf_type, id("c")]));
    }

    #[test]
    fn bound_is_linear_in_data_times_schema() {
        // |implicit| ≤ |D| × |S| for a subclass chain.
        let mut db = Dataset::new();
        let vocab = VocabIds::intern(db.dict_mut());
        let classes: Vec<Id> = (0..10)
            .map(|i| db.dict_mut().intern_uri(&format!("c{i}")))
            .collect();
        let mut schema = Schema::new();
        for w in classes.windows(2) {
            schema.add(SchemaStatement::SubClassOf(w[0], w[1]));
        }
        let instances: Vec<Id> = (0..20)
            .map(|i| db.dict_mut().intern_uri(&format!("x{i}")))
            .collect();
        for &x in &instances {
            db.store_mut().insert([x, vocab.rdf_type, classes[0]]);
        }
        let explicit = db.store().len();
        let added = saturate(db.store_mut(), &schema, &vocab);
        assert_eq!(added, instances.len() * (classes.len() - 1));
        assert!(added <= explicit * schema.len());
    }
}
