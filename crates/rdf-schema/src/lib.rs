//! # rdf-schema
//!
//! RDF Schema support: the four semantic relationships of the paper's
//! Table 1 (class inclusion, property inclusion, domain typing, range
//! typing), transitive closures over them, and **database saturation** —
//! deriving all implicit triples entailed by an RDFS (Section 4.2 of
//! *View Selection in Semantic Web Databases*).
//!
//! ```
//! use rdf_model::{Dataset, Term, vocab};
//! use rdf_schema::{Schema, SchemaStatement, VocabIds, saturate};
//!
//! let mut db = Dataset::new();
//! let vocab = VocabIds::intern(db.dict_mut());
//! let painting = db.dict_mut().intern_uri("ex:painting");
//! let picture = db.dict_mut().intern_uri("ex:picture");
//! let mona = db.dict_mut().intern_uri("ex:monaLisa");
//!
//! let mut schema = Schema::new();
//! schema.add(SchemaStatement::SubClassOf(painting, picture));
//!
//! db.store_mut().insert([mona, vocab.rdf_type, painting]);
//! let added = saturate(db.store_mut(), &schema, &vocab);
//! assert_eq!(added, 1); // (mona, rdf:type, picture) was implicit
//! assert!(db.store().contains([mona, vocab.rdf_type, picture]));
//! ```

pub mod saturation;
pub mod schema;

pub use saturation::{saturate, saturated_copy, SaturationStats};
pub use schema::{Schema, SchemaStatement, StatementKind};

use rdf_model::{vocab, Dictionary, Id};

/// The dictionary ids of the special RDF/RDFS URIs.
///
/// Both the saturation engine and the reformulation algorithm need to
/// recognize `rdf:type` (and the schema properties when extracting a schema
/// from data), so these are interned once and passed around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabIds {
    /// `rdf:type`
    pub rdf_type: Id,
    /// `rdfs:subClassOf`
    pub sub_class_of: Id,
    /// `rdfs:subPropertyOf`
    pub sub_property_of: Id,
    /// `rdfs:domain`
    pub domain: Id,
    /// `rdfs:range`
    pub range: Id,
}

impl VocabIds {
    /// Interns the vocabulary into `dict` (idempotent).
    pub fn intern(dict: &mut Dictionary) -> Self {
        Self {
            rdf_type: dict.intern_uri(vocab::RDF_TYPE),
            sub_class_of: dict.intern_uri(vocab::RDFS_SUB_CLASS_OF),
            sub_property_of: dict.intern_uri(vocab::RDFS_SUB_PROPERTY_OF),
            domain: dict.intern_uri(vocab::RDFS_DOMAIN),
            range: dict.intern_uri(vocab::RDFS_RANGE),
        }
    }

    /// Looks the vocabulary up without interning; `None` when the dataset
    /// never mentions one of the URIs.
    pub fn lookup(dict: &Dictionary) -> Option<Self> {
        Some(Self {
            rdf_type: dict.lookup_uri(vocab::RDF_TYPE)?,
            sub_class_of: dict.lookup_uri(vocab::RDFS_SUB_CLASS_OF)?,
            sub_property_of: dict.lookup_uri(vocab::RDFS_SUB_PROPERTY_OF)?,
            domain: dict.lookup_uri(vocab::RDFS_DOMAIN)?,
            range: dict.lookup_uri(vocab::RDFS_RANGE)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_intern_idempotent() {
        let mut d = Dictionary::new();
        let v1 = VocabIds::intern(&mut d);
        let v2 = VocabIds::intern(&mut d);
        assert_eq!(v1, v2);
        assert_eq!(VocabIds::lookup(&d), Some(v1));
    }

    #[test]
    fn vocab_lookup_missing() {
        let d = Dictionary::new();
        assert_eq!(VocabIds::lookup(&d), None);
    }
}
