//! RDFS schema statements and closure queries.

use std::collections::BTreeSet;

use rdf_model::{Dataset, FxHashMap, FxHashSet, Id};

use crate::VocabIds;

/// The kind of a schema statement (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StatementKind {
    /// `c1 rdfs:subClassOf c2`
    SubClassOf,
    /// `p1 rdfs:subPropertyOf p2`
    SubPropertyOf,
    /// `p rdfs:domain c`
    Domain,
    /// `p rdfs:range c`
    Range,
}

/// One RDFS statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaStatement {
    /// `∀X (c1(X) ⇒ c2(X))`
    SubClassOf(Id, Id),
    /// `∀X∀Y (p1(X,Y) ⇒ p2(X,Y))`
    SubPropertyOf(Id, Id),
    /// `∀X∀Y (p(X,Y) ⇒ c(X))`
    Domain(Id, Id),
    /// `∀X∀Y (p(X,Y) ⇒ c(Y))`
    Range(Id, Id),
}

impl SchemaStatement {
    /// The statement's kind tag.
    pub fn kind(&self) -> StatementKind {
        match self {
            SchemaStatement::SubClassOf(..) => StatementKind::SubClassOf,
            SchemaStatement::SubPropertyOf(..) => StatementKind::SubPropertyOf,
            SchemaStatement::Domain(..) => StatementKind::Domain,
            SchemaStatement::Range(..) => StatementKind::Range,
        }
    }

    /// The two ids of the statement as a pair.
    pub fn pair(&self) -> (Id, Id) {
        match *self {
            SchemaStatement::SubClassOf(a, b)
            | SchemaStatement::SubPropertyOf(a, b)
            | SchemaStatement::Domain(a, b)
            | SchemaStatement::Range(a, b) => (a, b),
        }
    }
}

/// An RDF Schema: a set of statements with adjacency maps in both
/// directions, sized for the fixpoint algorithms that consume it.
///
/// `|S|` in the paper's Theorem 4.1 is [`Schema::len`].
#[derive(Debug, Default, Clone)]
pub struct Schema {
    statements: Vec<SchemaStatement>,
    seen: FxHashSet<SchemaStatement>,
    // c2 -> direct subclasses c1 (c1 ⊑ c2 ∈ S); reformulation rule 1 walks this.
    sub_classes_of: FxHashMap<Id, Vec<Id>>,
    // c1 -> direct superclasses c2; saturation walks this.
    super_classes_of: FxHashMap<Id, Vec<Id>>,
    sub_props_of: FxHashMap<Id, Vec<Id>>,
    super_props_of: FxHashMap<Id, Vec<Id>>,
    // p -> [c : p domain c]
    domains_of: FxHashMap<Id, Vec<Id>>,
    // c -> [p : p domain c]; reformulation rule 3 walks this.
    domain_props_of: FxHashMap<Id, Vec<Id>>,
    ranges_of: FxHashMap<Id, Vec<Id>>,
    range_props_of: FxHashMap<Id, Vec<Id>>,
    classes: BTreeSet<Id>,
    properties: BTreeSet<Id>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a statement; duplicates are ignored. Returns `true` if new.
    pub fn add(&mut self, stmt: SchemaStatement) -> bool {
        if !self.seen.insert(stmt) {
            return false;
        }
        self.statements.push(stmt);
        match stmt {
            SchemaStatement::SubClassOf(c1, c2) => {
                self.sub_classes_of.entry(c2).or_default().push(c1);
                self.super_classes_of.entry(c1).or_default().push(c2);
                self.classes.insert(c1);
                self.classes.insert(c2);
            }
            SchemaStatement::SubPropertyOf(p1, p2) => {
                self.sub_props_of.entry(p2).or_default().push(p1);
                self.super_props_of.entry(p1).or_default().push(p2);
                self.properties.insert(p1);
                self.properties.insert(p2);
            }
            SchemaStatement::Domain(p, c) => {
                self.domains_of.entry(p).or_default().push(c);
                self.domain_props_of.entry(c).or_default().push(p);
                self.properties.insert(p);
                self.classes.insert(c);
            }
            SchemaStatement::Range(p, c) => {
                self.ranges_of.entry(p).or_default().push(c);
                self.range_props_of.entry(c).or_default().push(p);
                self.properties.insert(p);
                self.classes.insert(c);
            }
        }
        true
    }

    /// Number of statements — `|S|` in Theorem 4.1.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// Whether the schema has no statements.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// All statements, in insertion order.
    pub fn statements(&self) -> &[SchemaStatement] {
        &self.statements
    }

    /// All classes mentioned by the schema (rule 5 of Figure 2 iterates
    /// these).
    pub fn classes(&self) -> impl Iterator<Item = Id> + '_ {
        self.classes.iter().copied()
    }

    /// All properties mentioned by the schema (rule 6 of Figure 2).
    pub fn properties(&self) -> impl Iterator<Item = Id> + '_ {
        self.properties.iter().copied()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of properties.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// Direct subclasses `c1` with `c1 ⊑ c ∈ S`.
    pub fn direct_sub_classes(&self, c: Id) -> &[Id] {
        self.sub_classes_of.get(&c).map_or(&[], Vec::as_slice)
    }

    /// Direct superclasses `c2` with `c ⊑ c2 ∈ S`.
    pub fn direct_super_classes(&self, c: Id) -> &[Id] {
        self.super_classes_of.get(&c).map_or(&[], Vec::as_slice)
    }

    /// Direct subproperties of `p`.
    pub fn direct_sub_properties(&self, p: Id) -> &[Id] {
        self.sub_props_of.get(&p).map_or(&[], Vec::as_slice)
    }

    /// Direct superproperties of `p`.
    pub fn direct_super_properties(&self, p: Id) -> &[Id] {
        self.super_props_of.get(&p).map_or(&[], Vec::as_slice)
    }

    /// Classes `c` with `p rdfs:domain c ∈ S`.
    pub fn domains(&self, p: Id) -> &[Id] {
        self.domains_of.get(&p).map_or(&[], Vec::as_slice)
    }

    /// Classes `c` with `p rdfs:range c ∈ S`.
    pub fn ranges(&self, p: Id) -> &[Id] {
        self.ranges_of.get(&p).map_or(&[], Vec::as_slice)
    }

    /// Properties `p` with `p rdfs:domain c ∈ S` (rule 3 walks this).
    pub fn domain_properties(&self, c: Id) -> &[Id] {
        self.domain_props_of.get(&c).map_or(&[], Vec::as_slice)
    }

    /// Properties `p` with `p rdfs:range c ∈ S` (rule 4 walks this).
    pub fn range_properties(&self, c: Id) -> &[Id] {
        self.range_props_of.get(&c).map_or(&[], Vec::as_slice)
    }

    /// Transitive (non-reflexive) superclass closure of `c`.
    pub fn super_class_closure(&self, c: Id) -> Vec<Id> {
        closure(c, |x| self.direct_super_classes(x))
    }

    /// Transitive (non-reflexive) subclass closure of `c`.
    pub fn sub_class_closure(&self, c: Id) -> Vec<Id> {
        closure(c, |x| self.direct_sub_classes(x))
    }

    /// Transitive (non-reflexive) superproperty closure of `p`.
    pub fn super_property_closure(&self, p: Id) -> Vec<Id> {
        closure(p, |x| self.direct_super_properties(x))
    }

    /// Transitive (non-reflexive) subproperty closure of `p`.
    pub fn sub_property_closure(&self, p: Id) -> Vec<Id> {
        closure(p, |x| self.direct_sub_properties(x))
    }

    /// Extracts the schema encoded in a dataset's triples (statements using
    /// the four RDFS properties), ignoring everything else.
    pub fn from_dataset(db: &Dataset) -> Self {
        let mut schema = Schema::new();
        let Some(vocab) = VocabIds::lookup(db.dict()) else {
            return schema;
        };
        for &[s, p, o] in db.store().triples() {
            let stmt = if p == vocab.sub_class_of {
                SchemaStatement::SubClassOf(s, o)
            } else if p == vocab.sub_property_of {
                SchemaStatement::SubPropertyOf(s, o)
            } else if p == vocab.domain {
                SchemaStatement::Domain(s, o)
            } else if p == vocab.range {
                SchemaStatement::Range(s, o)
            } else {
                continue;
            };
            schema.add(stmt);
        }
        schema
    }

    /// Writes the schema statements as triples into a dataset (the inverse
    /// of [`Schema::from_dataset`]).
    pub fn add_to_dataset(&self, db: &mut Dataset) {
        let vocab = VocabIds::intern(db.dict_mut());
        for stmt in &self.statements {
            let (a, b) = stmt.pair();
            let p = match stmt.kind() {
                StatementKind::SubClassOf => vocab.sub_class_of,
                StatementKind::SubPropertyOf => vocab.sub_property_of,
                StatementKind::Domain => vocab.domain,
                StatementKind::Range => vocab.range,
            };
            db.store_mut().insert([a, p, b]);
        }
    }
}

/// BFS transitive closure over a successor function; tolerates cycles.
fn closure<'a>(start: Id, succ: impl Fn(Id) -> &'a [Id]) -> Vec<Id> {
    let mut out = Vec::new();
    let mut seen = FxHashSet::default();
    seen.insert(start);
    let mut stack = vec![start];
    while let Some(x) = stack.pop() {
        for &nxt in succ(x) {
            if seen.insert(nxt) {
                out.push(nxt);
                stack.push(nxt);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<Id> {
        (0..n).map(Id).collect()
    }

    #[test]
    fn duplicate_statements_ignored() {
        let v = ids(2);
        let mut s = Schema::new();
        assert!(s.add(SchemaStatement::SubClassOf(v[0], v[1])));
        assert!(!s.add(SchemaStatement::SubClassOf(v[0], v[1])));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn closure_chains() {
        // painting ⊑ masterpiece ⊑ work (the paper's Section 4.1 example)
        let v = ids(3);
        let mut s = Schema::new();
        s.add(SchemaStatement::SubClassOf(v[0], v[1]));
        s.add(SchemaStatement::SubClassOf(v[1], v[2]));
        let mut up = s.super_class_closure(v[0]);
        up.sort_unstable();
        assert_eq!(up, vec![v[1], v[2]]);
        let mut down = s.sub_class_closure(v[2]);
        down.sort_unstable();
        assert_eq!(down, vec![v[0], v[1]]);
        assert!(s.super_class_closure(v[2]).is_empty());
    }

    #[test]
    fn diamond_hierarchy_closure() {
        // d ⊑ b, d ⊑ c, b ⊑ a, c ⊑ a: the closure of d is {a, b, c}, with
        // a appearing once despite the two paths.
        let v = ids(4);
        let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
        let mut s = Schema::new();
        s.add(SchemaStatement::SubClassOf(d, b));
        s.add(SchemaStatement::SubClassOf(d, c));
        s.add(SchemaStatement::SubClassOf(b, a));
        s.add(SchemaStatement::SubClassOf(c, a));
        let mut up = s.super_class_closure(d);
        up.sort_unstable();
        assert_eq!(up, vec![a, b, c]);
        let mut down = s.sub_class_closure(a);
        down.sort_unstable();
        assert_eq!(down, vec![b, c, d]);
    }

    #[test]
    fn multiple_domains_and_ranges() {
        // RDF allows several domain/range statements for one property.
        let v = ids(3);
        let mut s = Schema::new();
        s.add(SchemaStatement::Domain(v[0], v[1]));
        s.add(SchemaStatement::Domain(v[0], v[2]));
        assert_eq!(s.domains(v[0]), &[v[1], v[2]]);
        assert_eq!(s.domain_properties(v[1]), &[v[0]]);
        assert_eq!(s.domain_properties(v[2]), &[v[0]]);
    }

    #[test]
    fn closure_tolerates_cycles() {
        let v = ids(2);
        let mut s = Schema::new();
        s.add(SchemaStatement::SubPropertyOf(v[0], v[1]));
        s.add(SchemaStatement::SubPropertyOf(v[1], v[0]));
        let up = s.super_property_closure(v[0]);
        assert_eq!(up.len(), 1); // v1 only; v0 itself excluded (non-reflexive)
    }

    #[test]
    fn classes_and_properties_registration() {
        let v = ids(4);
        let mut s = Schema::new();
        s.add(SchemaStatement::Domain(v[0], v[1]));
        s.add(SchemaStatement::Range(v[0], v[2]));
        s.add(SchemaStatement::SubPropertyOf(v[3], v[0]));
        let classes: Vec<Id> = s.classes().collect();
        assert_eq!(classes, vec![v[1], v[2]]);
        let props: Vec<Id> = s.properties().collect();
        assert_eq!(props, vec![v[0], v[3]]);
        assert_eq!(s.domain_properties(v[1]), &[v[0]]);
        assert_eq!(s.range_properties(v[2]), &[v[0]]);
    }

    #[test]
    fn dataset_roundtrip() {
        use rdf_model::Term;
        let mut db = Dataset::new();
        let _vocab = VocabIds::intern(db.dict_mut());
        let a = db.dict_mut().intern(Term::uri("ex:a"));
        let b = db.dict_mut().intern(Term::uri("ex:b"));
        let p = db.dict_mut().intern(Term::uri("ex:p"));
        let mut s = Schema::new();
        s.add(SchemaStatement::SubClassOf(a, b));
        s.add(SchemaStatement::Domain(p, a));
        s.add_to_dataset(&mut db);
        assert_eq!(db.len(), 2);
        let s2 = Schema::from_dataset(&db);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.direct_super_classes(a), &[b]);
        assert_eq!(s2.domains(p), &[a]);
    }

    #[test]
    fn from_dataset_without_vocab_is_empty() {
        let mut db = Dataset::new();
        db.insert_terms(
            rdf_model::Term::uri("ex:s"),
            rdf_model::Term::uri("ex:p"),
            rdf_model::Term::uri("ex:o"),
        );
        assert!(Schema::from_dataset(&db).is_empty());
    }
}
