//! Incremental view maintenance.
//!
//! The paper's VMC cost term models exactly this work: "the addition of a
//! triple t⁺ causes the addition of f₁·f₂·…·f_len(v) tuples to v" — the
//! delta of each view under a triple insertion. This module implements the
//! classic delta rule for select-project-join views so that the estimate
//! can be validated against measured maintenance effort (see the
//! `exp_vmc` bench):
//!
//! ```text
//! Δv(t⁺) = ⋃_i  π_head( atom_1 ⋈ … ⋈ Δatom_i(t⁺) ⋈ … ⋈ atom_n )
//! ```
//!
//! where `Δatom_i(t⁺)` binds atom `i` to the inserted triple. The base
//! store must already contain `t⁺` when the deltas are applied (insert
//! first, then maintain), which makes repeated application converge to the
//! same table as rematerialization.

use rdf_model::{FxHashMap, FxHashSet, Id, Triple, TripleStore};
use rdf_query::{ConjunctiveQuery, QTerm, Var};

use crate::answers::Answers;
use crate::eval::evaluate;
use crate::view_table::ViewTable;

/// A maintainable materialized view: the definition plus its rows.
#[derive(Debug, Clone)]
pub struct MaintainedView {
    def: ConjunctiveQuery,
    rows: FxHashSet<Vec<Id>>,
}

/// Counters for one maintenance operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Delta tuples computed (before deduplication against the table).
    pub delta_tuples: usize,
    /// Rows actually added to the view.
    pub added: usize,
    /// Rows actually removed from the view.
    pub removed: usize,
}

impl MaintenanceStats {
    /// Accumulates another operation's counters.
    pub fn merge(&mut self, other: MaintenanceStats) {
        self.delta_tuples += other.delta_tuples;
        self.added += other.added;
        self.removed += other.removed;
    }
}

/// The prepared phase of a deletion: candidate rows whose derivations may
/// have used the deleted triple. Produced by
/// [`MaintainedView::prepare_delete`] *before* the triple leaves the
/// store, consumed by [`MaintainedView::commit_delete`] *after*.
#[derive(Debug, Clone)]
pub struct DeleteDelta {
    triple: Triple,
    candidates: Vec<Vec<Id>>,
}

impl DeleteDelta {
    /// Candidate rows identified in the prepare phase.
    pub fn candidates(&self) -> &[Vec<Id>] {
        &self.candidates
    }
}

impl MaintainedView {
    /// Materializes the view over the current store.
    pub fn new(store: &TripleStore, def: ConjunctiveQuery) -> Self {
        let rows: FxHashSet<Vec<Id>> = evaluate(store, &def).into_tuples().into_iter().collect();
        Self { def, rows }
    }

    /// The view definition.
    pub fn definition(&self) -> &ConjunctiveQuery {
        &self.def
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Snapshot as a [`ViewTable`].
    pub fn to_table(&self) -> ViewTable {
        ViewTable::from_rows(self.def.head.len(), self.rows.iter().cloned())
    }

    /// Snapshot as sorted [`Answers`].
    pub fn to_answers(&self) -> Answers {
        Answers::from_tuples(self.def.head.len(), self.rows.iter().cloned())
    }

    /// Applies the insertion of `triple` (already present in `store`):
    /// computes the delta via one bound evaluation per atom and merges it.
    pub fn apply_insert(&mut self, store: &TripleStore, triple: Triple) -> MaintenanceStats {
        let mut stats = MaintenanceStats::default();
        for i in 0..self.def.atoms.len() {
            let Some(bound) = bind_atom_to_triple(&self.def, i, triple) else {
                continue; // the triple cannot match this atom
            };
            for tuple in evaluate(store, &bound).into_tuples() {
                stats.delta_tuples += 1;
                if self.rows.insert(tuple) {
                    stats.added += 1;
                }
            }
        }
        stats
    }

    /// Applies a batch of insertions: the triples must already be in
    /// `store`; deltas are computed per triple (naive batch).
    pub fn apply_batch(&mut self, store: &TripleStore, batch: &[Triple]) -> MaintenanceStats {
        let mut total = MaintenanceStats::default();
        for &t in batch {
            total.merge(self.apply_insert(store, t));
        }
        total
    }

    /// Phase 1 of a deletion (delete-and-rederive): collects the rows whose
    /// derivations may involve `triple`. Must run while `triple` is still
    /// in `store` — once it is gone, derivations that used it in *several*
    /// atoms at once can no longer be enumerated.
    pub fn prepare_delete(&self, store: &TripleStore, triple: Triple) -> DeleteDelta {
        let mut candidates: FxHashSet<Vec<Id>> = FxHashSet::default();
        for i in 0..self.def.atoms.len() {
            let Some(bound) = bind_atom_to_triple(&self.def, i, triple) else {
                continue;
            };
            candidates.extend(evaluate(store, &bound).into_tuples());
        }
        DeleteDelta {
            triple,
            candidates: candidates.into_iter().collect(),
        }
    }

    /// Phase 2 of a deletion: re-derives each candidate over the store
    /// *after* `delta.triple` was removed, and drops the rows that no
    /// longer have a derivation.
    pub fn commit_delete(&mut self, store: &TripleStore, delta: &DeleteDelta) -> MaintenanceStats {
        debug_assert!(
            !store.contains(delta.triple),
            "commit_delete runs after the triple leaves the store"
        );
        let mut stats = MaintenanceStats::default();
        for row in &delta.candidates {
            stats.delta_tuples += 1;
            if !self.rows.contains(row.as_slice()) {
                continue;
            }
            if !self.rederivable(store, row) {
                self.rows.remove(row.as_slice());
                stats.removed += 1;
            }
        }
        stats
    }

    /// Whether `row` still has a derivation over `store`: evaluates the
    /// definition with its head bound to the row's values.
    fn rederivable(&self, store: &TripleStore, row: &[Id]) -> bool {
        let mut subst: FxHashMap<Var, QTerm> = FxHashMap::default();
        for (term, &value) in self.def.head.iter().zip(row.iter()) {
            match term {
                QTerm::Const(c) => {
                    if *c != value {
                        return false;
                    }
                }
                QTerm::Var(v) => match subst.get(v) {
                    Some(QTerm::Const(prev)) => {
                        if *prev != value {
                            return false;
                        }
                    }
                    _ => {
                        subst.insert(*v, QTerm::Const(value));
                    }
                },
            }
        }
        !evaluate(store, &self.def.substitute(&subst)).is_empty()
    }
}

/// Specializes the view to `triple` at atom `i`: substitutes the atom's
/// variables by the triple's ids (unifying), drops the atom (its constraint
/// is now satisfied by the binding) and keeps the remaining body. Returns
/// `None` when the triple cannot match the atom.
fn bind_atom_to_triple(
    def: &ConjunctiveQuery,
    i: usize,
    triple: Triple,
) -> Option<ConjunctiveQuery> {
    let atom = &def.atoms[i];
    let mut subst: FxHashMap<Var, QTerm> = FxHashMap::default();
    for (term, value) in atom.terms().iter().zip(triple.iter()) {
        match term {
            QTerm::Const(c) => {
                if c != value {
                    return None;
                }
            }
            QTerm::Var(v) => match subst.get(v) {
                Some(QTerm::Const(prev)) => {
                    if prev != value {
                        return None;
                    }
                }
                _ => {
                    subst.insert(*v, QTerm::Const(*value));
                }
            },
        }
    }
    let mut atoms = def.atoms.clone();
    atoms.remove(i);
    let specialized = ConjunctiveQuery::new(def.head.clone(), atoms).substitute(&subst);
    if specialized.atoms.is_empty() {
        // Single-atom view: the delta is the projected binding itself,
        // provided the head is fully grounded by the substitution.
        let grounded = specialized.head.iter().all(|t| !t.is_var());
        if !grounded {
            return None; // unsafe degenerate case; cannot happen for safe views
        }
    }
    Some(specialized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;

    fn setup() -> (Dataset, ConjunctiveQuery) {
        let mut db = Dataset::new();
        let t = |db: &mut Dataset, s: &str, p: &str, o: &str| {
            db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
        };
        t(&mut db, "a", "knows", "b");
        t(&mut db, "b", "knows", "c");
        t(&mut db, "c", "worksAt", "acme");
        let q = parse_query(
            "v(X, W) :- t(X, <knows>, Y), t(Y, <worksAt>, W)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        (db, q)
    }

    /// The invariant behind every test: after maintenance, the view equals
    /// a from-scratch rematerialization.
    fn assert_consistent(view: &MaintainedView, store: &TripleStore) {
        let fresh = evaluate(store, view.definition());
        assert_eq!(view.to_answers(), fresh);
    }

    #[test]
    fn insert_extends_join_views() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 1); // (b, acme)

        // d knows c  → (d, acme) must appear.
        let d = db.dict_mut().intern_uri("d");
        let knows = db.dict_mut().intern_uri("knows");
        let c = db.dict_mut().intern_uri("c");
        let triple = [d, knows, c];
        db.store_mut().insert(triple);
        let stats = view.apply_insert(db.store(), triple);
        assert_eq!(stats.added, 1);
        assert_eq!(view.len(), 2);
        assert_consistent(&view, db.store());
    }

    #[test]
    fn insert_matching_second_atom() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        // a works at initech → (X=?, W=initech) via Y=a… wait: needs
        // t(X, knows, a); nothing knows a, so no delta. Then e knows a.
        let a = db.dict().lookup_uri("a").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let initech = db.dict_mut().intern_uri("initech");
        let t1 = [a, works_at, initech];
        db.store_mut().insert(t1);
        let s1 = view.apply_insert(db.store(), t1);
        assert_eq!(s1.added, 0);
        assert_consistent(&view, db.store());

        let e = db.dict_mut().intern_uri("e");
        let knows = db.dict().lookup_uri("knows").unwrap();
        let t2 = [e, knows, a];
        db.store_mut().insert(t2);
        let s2 = view.apply_insert(db.store(), t2);
        assert_eq!(s2.added, 1); // (e, initech)
        assert_consistent(&view, db.store());
    }

    #[test]
    fn irrelevant_triples_cost_nothing() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        let x = db.dict_mut().intern_uri("x");
        let likes = db.dict_mut().intern_uri("likes");
        let y = db.dict_mut().intern_uri("y");
        let t = [x, likes, y];
        db.store_mut().insert(t);
        let stats = view.apply_insert(db.store(), t);
        assert_eq!(stats, MaintenanceStats::default());
        assert_consistent(&view, db.store());
    }

    #[test]
    fn duplicate_delta_not_double_counted() {
        let (db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        // Re-inserting an existing triple adds no rows (store dedups, but
        // even a forced maintenance call must not add).
        let triple = db.store().triples()[0];
        let stats = view.apply_insert(db.store(), triple);
        assert_eq!(stats.added, 0);
        assert_consistent(&view, db.store());
    }

    #[test]
    fn batch_maintenance_matches_rematerialization() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        let knows = db.dict().lookup_uri("knows").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let mut batch = Vec::new();
        for i in 0..10 {
            let s = db.dict_mut().intern_uri(&format!("p{i}"));
            let o = db.dict_mut().intern_uri(&format!("p{}", (i + 1) % 10));
            batch.push([s, knows, o]);
            if i % 3 == 0 {
                let site = db.dict_mut().intern_uri(&format!("site{i}"));
                batch.push([s, works_at, site]);
            }
        }
        for &t in &batch {
            db.store_mut().insert(t);
        }
        view.apply_batch(db.store(), &batch);
        assert_consistent(&view, db.store());
    }

    #[test]
    fn single_atom_view_maintenance() {
        let mut db = Dataset::new();
        db.insert_terms(Term::uri("a"), Term::uri("p"), Term::uri("b"));
        let q = parse_query("v(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 1);
        let p = db.dict().lookup_uri("p").unwrap();
        let c = db.dict_mut().intern_uri("c");
        let d = db.dict_mut().intern_uri("d");
        let t = [c, p, d];
        db.store_mut().insert(t);
        let stats = view.apply_insert(db.store(), t);
        assert_eq!(stats.added, 1);
        assert_consistent(&view, db.store());
    }

    /// The deployment-side deletion protocol: prepare while the triple is
    /// still stored, remove it, commit against the shrunken store.
    fn delete_triple(view: &mut MaintainedView, db: &mut Dataset, t: Triple) -> MaintenanceStats {
        let delta = view.prepare_delete(db.store(), t);
        assert!(db.store_mut().remove(t));
        view.commit_delete(db.store(), &delta)
    }

    #[test]
    fn delete_shrinks_join_views() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 1); // (b, acme)
        let c = db.dict().lookup_uri("c").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let acme = db.dict().lookup_uri("acme").unwrap();
        let stats = delete_triple(&mut view, &mut db, [c, works_at, acme]);
        assert_eq!(stats.removed, 1);
        assert!(view.is_empty());
        assert_consistent(&view, db.store());
    }

    #[test]
    fn delete_keeps_rederivable_rows() {
        // (b, acme) is derivable through two "knows" paths; removing one
        // must keep the row.
        let (mut db, q) = setup();
        let a2 = db.dict_mut().intern_uri("a2");
        let knows = db.dict().lookup_uri("knows").unwrap();
        let b = db.dict().lookup_uri("b").unwrap();
        db.store_mut().insert([a2, knows, b]);
        let q2 = parse_query(
            "v(W) :- t(X, <knows>, Y), t(Y, <worksAt>, W)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let mut view = MaintainedView::new(db.store(), q2);
        assert_eq!(view.len(), 1); // (acme) via b←a and b←a2
        let a = db.dict().lookup_uri("a").unwrap();
        let stats = delete_triple(&mut view, &mut db, [a, knows, b]);
        assert_eq!(stats.removed, 0, "still derivable via a2");
        assert_eq!(view.len(), 1);
        assert_consistent(&view, db.store());
    }

    #[test]
    fn delete_of_irrelevant_triple_is_cheap() {
        let (mut db, q) = setup();
        let x = db.dict_mut().intern_uri("x");
        let likes = db.dict_mut().intern_uri("likes");
        let y = db.dict_mut().intern_uri("y");
        db.store_mut().insert([x, likes, y]);
        let mut view = MaintainedView::new(db.store(), q);
        let stats = delete_triple(&mut view, &mut db, [x, likes, y]);
        assert_eq!(stats, MaintenanceStats::default());
        assert_consistent(&view, db.store());
    }

    #[test]
    fn delete_with_triple_in_two_atoms() {
        // v(X) :- t(X, p, Y), t(Y, p, X): the pair (a,b),(b,a) derives both
        // a and b; deleting (b,p,a) must drop both rows.
        let mut db = Dataset::new();
        let q = parse_query("v(X) :- t(X, <p>, Y), t(Y, <p>, X)", db.dict_mut())
            .unwrap()
            .query;
        let p = db.dict().lookup_uri("p").unwrap();
        let a = db.dict_mut().intern_uri("a");
        let b = db.dict_mut().intern_uri("b");
        db.store_mut().insert([a, p, b]);
        db.store_mut().insert([b, p, a]);
        db.store_mut().insert([a, p, a]); // self-loop keeps a derivable
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 2);
        let stats = delete_triple(&mut view, &mut db, [b, p, a]);
        assert_eq!(stats.removed, 1, "b gone, a survives via its self-loop");
        assert_consistent(&view, db.store());
    }

    #[test]
    fn interleaved_inserts_and_deletes_converge() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        let knows = db.dict().lookup_uri("knows").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let mut triples = Vec::new();
        for i in 0..8 {
            let s = db.dict_mut().intern_uri(&format!("w{i}"));
            let o = db.dict_mut().intern_uri(&format!("w{}", (i + 1) % 8));
            triples.push([s, knows, o]);
            if i % 2 == 0 {
                let site = db.dict_mut().intern_uri(&format!("site{i}"));
                triples.push([s, works_at, site]);
            }
        }
        for &t in &triples {
            if db.store_mut().insert(t) {
                view.apply_insert(db.store(), t);
            }
            assert_consistent(&view, db.store());
        }
        for &t in triples.iter().rev().step_by(2) {
            delete_triple(&mut view, &mut db, t);
            assert_consistent(&view, db.store());
        }
    }

    #[test]
    fn self_join_view_maintenance() {
        // v(X) :- t(X, p, Y), t(Y, p, X): one new triple can complete a
        // pair in both directions.
        let mut db = Dataset::new();
        let q = parse_query("v(X) :- t(X, <p>, Y), t(Y, <p>, X)", db.dict_mut())
            .unwrap()
            .query;
        let p = db.dict().lookup_uri("p").unwrap();
        let a = db.dict_mut().intern_uri("a");
        let b = db.dict_mut().intern_uri("b");
        db.store_mut().insert([a, p, b]);
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 0);
        let t = [b, p, a];
        db.store_mut().insert(t);
        view.apply_insert(db.store(), t);
        assert_eq!(view.len(), 2); // a and b
        assert_consistent(&view, db.store());
    }
}
