//! Incremental view maintenance, set-at-a-time.
//!
//! The paper's VMC cost term models exactly this work: "the addition of a
//! triple t⁺ causes the addition of f₁·f₂·…·f_len(v) tuples to v" — the
//! delta of each view under an update. This module implements the delta
//! rule for select-project-join views **one batch at a time** (semi-naive):
//!
//! ```text
//! Δv(Δ) = ⋃_i  π_head( atom_1 ⋈ … ⋈ Δatom_i ⋈ … ⋈ atom_n )
//! ```
//!
//! where `Δatom_i` binds atom `i` to the *whole* update set Δ, materialized
//! as a small 3-column table and probed through on-demand hash indexes
//! (see [`crate::evaluate_mixed`]). One join pass per atom position
//! replaces the |Δ| passes of the classic per-triple rule; the per-triple
//! entry points are thin delegates over singleton batches.
//!
//! For insertions the base store must already contain Δ⁺ when the deltas
//! are applied (insert first, then maintain), which makes repeated
//! application converge to the same table as rematerialization. Deletions
//! are two-phase (delete-and-rederive): candidates are collected while Δ⁻
//! is still stored, the triples leave the store, and each candidate is
//! re-derived against the shrunken store.

use rdf_model::{FxHashMap, FxHashSet, Id, Triple, TripleStore};
use rdf_query::{ConjunctiveQuery, QTerm, Var};

use crate::answers::Answers;
use crate::eval::{evaluate, evaluate_mixed, MixedAtom, ViewAtom};
use crate::view_table::ViewTable;

/// A maintainable materialized view: the definition plus its rows.
#[derive(Debug, Clone)]
pub struct MaintainedView {
    def: ConjunctiveQuery,
    rows: FxHashSet<Vec<Id>>,
}

/// Counters for one maintenance operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Distinct delta tuples derived for the batch — |Δv|, deduplicated
    /// across atom positions and batch triples, before deduplication
    /// against the table. This is the measured counterpart of the paper's
    /// VMC estimate.
    pub delta_tuples: usize,
    /// Rows actually added to the view.
    pub added: usize,
    /// Rows actually removed from the view.
    pub removed: usize,
    /// Set-at-a-time maintenance passes executed. The deployment layer
    /// stamps one per batch that reached the delta joins, so a caller can
    /// verify that an n-triple feed ran one fixpoint — not n.
    pub batches: usize,
}

impl MaintenanceStats {
    /// Accumulates another operation's counters.
    pub fn merge(&mut self, other: MaintenanceStats) {
        self.delta_tuples += other.delta_tuples;
        self.added += other.added;
        self.removed += other.removed;
        self.batches += other.batches;
    }
}

/// An update batch snapshotted for delta joins: the triples plus their
/// 3-column table representation. Built **once** per batch and shared
/// across every maintained view (a deployment maintains several), so the
/// batch is not re-copied per view branch.
#[derive(Debug, Clone)]
pub struct DeltaSet {
    triples: Vec<Triple>,
    table: ViewTable,
}

impl DeltaSet {
    /// Snapshots `batch` (duplicates are folded by the table).
    pub fn new(batch: &[Triple]) -> Self {
        Self {
            triples: batch.to_vec(),
            table: ViewTable::from_rows(3, batch.iter().map(|t| t.to_vec())),
        }
    }

    /// The batch triples, as given.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The batch as a 3-column table. Exposed so callers (and tests) can
    /// watch its resident hash-index cache: one delta join per atom
    /// position probes this same table, and [`ViewTable::index_builds`]
    /// proves each bound-column mask is indexed once per batch, not once
    /// per join.
    pub fn table(&self) -> &ViewTable {
        &self.table
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

/// The prepared phase of a deletion batch: candidate rows whose
/// derivations may have used a deleted triple. Produced by
/// [`MaintainedView::prepare_delete_batch`] *before* the triples leave the
/// store, consumed by [`MaintainedView::commit_delete_batch`] *after*.
#[derive(Debug, Clone)]
pub struct DeleteDelta {
    /// Kept only to debug-check the commit-after-removal protocol; release
    /// builds carry just the candidates.
    #[cfg(debug_assertions)]
    triples: Vec<Triple>,
    candidates: Vec<Vec<Id>>,
}

impl DeleteDelta {
    /// Candidate rows identified in the prepare phase (deduplicated across
    /// atom positions and batch triples).
    pub fn candidates(&self) -> &[Vec<Id>] {
        &self.candidates
    }
}

impl MaintainedView {
    /// Materializes the view over the current store.
    pub fn new(store: &TripleStore, def: ConjunctiveQuery) -> Self {
        let rows: FxHashSet<Vec<Id>> = evaluate(store, &def).into_tuples().into_iter().collect();
        Self { def, rows }
    }

    /// Reassembles a maintained view from persisted parts without
    /// re-evaluating the definition — the rows are trusted to be exactly
    /// the view's extension at the store version they were serialized
    /// with. Recovery relies on this: a snapshot restores tables directly,
    /// then replays the write-ahead log through the normal delta joins.
    pub fn from_parts(def: ConjunctiveQuery, rows: impl IntoIterator<Item = Vec<Id>>) -> Self {
        Self {
            def,
            rows: rows.into_iter().collect(),
        }
    }

    /// The materialized rows, in arbitrary order. Serializers must impose
    /// their own canonical order.
    pub fn rows(&self) -> impl Iterator<Item = &Vec<Id>> {
        self.rows.iter()
    }

    /// The view definition.
    pub fn definition(&self) -> &ConjunctiveQuery {
        &self.def
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Snapshot as a [`ViewTable`].
    pub fn to_table(&self) -> ViewTable {
        ViewTable::from_rows(self.def.head.len(), self.rows.iter().cloned())
    }

    /// Snapshot as sorted [`Answers`].
    pub fn to_answers(&self) -> Answers {
        Answers::from_tuples(self.def.head.len(), self.rows.iter().cloned())
    }

    /// The delta-set join: Δv = ⋃_i π_head(a₁ ⋈ … ⋈ Δaᵢ ⋈ … ⋈ aₙ), with Δ
    /// materialized as a 3-column table whose hash indexes are built on
    /// demand per bound-column set — one join pass per atom position.
    /// Returns the distinct delta tuples.
    fn delta_join(&self, store: &TripleStore, delta: &DeltaSet) -> FxHashSet<Vec<Id>> {
        let mut delta_set: FxHashSet<Vec<Id>> = FxHashSet::default();
        if delta.is_empty() {
            return delta_set;
        }
        for i in 0..self.def.atoms.len() {
            let atoms: Vec<MixedAtom> = self
                .def
                .atoms
                .iter()
                .enumerate()
                .map(|(j, a)| {
                    if j == i {
                        MixedAtom::View(ViewAtom {
                            table: &delta.table,
                            args: a.terms().to_vec(),
                        })
                    } else {
                        MixedAtom::Store(*a)
                    }
                })
                .collect();
            delta_set.extend(evaluate_mixed(store, &atoms, &self.def.head).into_tuples());
        }
        delta_set
    }

    /// Applies a batch of insertions (already present in `store`) from a
    /// prebuilt [`DeltaSet`]: one delta-set join pass per atom position,
    /// merged into the table. Deployments maintaining several views build
    /// the delta set once and share it here.
    pub fn apply_insert_delta(
        &mut self,
        store: &TripleStore,
        delta: &DeltaSet,
    ) -> MaintenanceStats {
        let mut stats = MaintenanceStats::default();
        for tuple in self.delta_join(store, delta) {
            stats.delta_tuples += 1;
            if self.rows.insert(tuple) {
                stats.added += 1;
            }
        }
        stats
    }

    /// Applies a batch of insertions (already present in `store`),
    /// snapshotting the batch itself: a delegate over
    /// [`MaintainedView::apply_insert_delta`].
    pub fn apply_insert_batch(
        &mut self,
        store: &TripleStore,
        batch: &[Triple],
    ) -> MaintenanceStats {
        self.apply_insert_delta(store, &DeltaSet::new(batch))
    }

    /// Applies the insertion of one `triple` (already present in `store`):
    /// a thin delegate over a singleton [`MaintainedView::apply_insert_batch`].
    pub fn apply_insert(&mut self, store: &TripleStore, triple: Triple) -> MaintenanceStats {
        self.apply_insert_batch(store, std::slice::from_ref(&triple))
    }

    /// Phase 1 of a deletion batch (delete-and-rederive) from a prebuilt
    /// [`DeltaSet`]: collects the rows whose derivations may involve any
    /// triple of the batch, in one delta-set join pass per atom position.
    /// Must run while the batch is still in `store` — once the triples are
    /// gone, derivations that used several of them at once can no longer
    /// be enumerated.
    pub fn prepare_delete_delta(&self, store: &TripleStore, delta: &DeltaSet) -> DeleteDelta {
        DeleteDelta {
            #[cfg(debug_assertions)]
            triples: delta.triples.clone(),
            candidates: self.delta_join(store, delta).into_iter().collect(),
        }
    }

    /// Phase 1 of a deletion batch, snapshotting the batch itself: a
    /// delegate over [`MaintainedView::prepare_delete_delta`].
    pub fn prepare_delete_batch(&self, store: &TripleStore, batch: &[Triple]) -> DeleteDelta {
        self.prepare_delete_delta(store, &DeltaSet::new(batch))
    }

    /// Phase 2 of a deletion batch: re-derives each candidate over the
    /// store *after* the batch was removed, and drops the rows that no
    /// longer have a derivation.
    pub fn commit_delete_batch(
        &mut self,
        store: &TripleStore,
        delta: &DeleteDelta,
    ) -> MaintenanceStats {
        #[cfg(debug_assertions)]
        debug_assert!(
            delta.triples.iter().all(|&t| !store.contains(t)),
            "commit_delete_batch runs after the batch leaves the store"
        );
        let mut stats = MaintenanceStats::default();
        for row in &delta.candidates {
            stats.delta_tuples += 1;
            if !self.rows.contains(row.as_slice()) {
                continue;
            }
            if !self.rederivable(store, row) {
                self.rows.remove(row.as_slice());
                stats.removed += 1;
            }
        }
        stats
    }

    /// Phase 1 of a single-triple deletion: a thin delegate over a
    /// singleton [`MaintainedView::prepare_delete_batch`].
    pub fn prepare_delete(&self, store: &TripleStore, triple: Triple) -> DeleteDelta {
        self.prepare_delete_batch(store, std::slice::from_ref(&triple))
    }

    /// Phase 2 of a single-triple deletion: identical to
    /// [`MaintainedView::commit_delete_batch`].
    pub fn commit_delete(&mut self, store: &TripleStore, delta: &DeleteDelta) -> MaintenanceStats {
        self.commit_delete_batch(store, delta)
    }

    /// Whether `row` still has a derivation over `store`: evaluates the
    /// definition with its head bound to the row's values.
    fn rederivable(&self, store: &TripleStore, row: &[Id]) -> bool {
        let mut subst: FxHashMap<Var, QTerm> = FxHashMap::default();
        for (term, &value) in self.def.head.iter().zip(row.iter()) {
            match term {
                QTerm::Const(c) => {
                    if *c != value {
                        return false;
                    }
                }
                QTerm::Var(v) => match subst.get(v) {
                    Some(QTerm::Const(prev)) => {
                        if *prev != value {
                            return false;
                        }
                    }
                    _ => {
                        subst.insert(*v, QTerm::Const(value));
                    }
                },
            }
        }
        !evaluate(store, &self.def.substitute(&subst)).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;

    fn setup() -> (Dataset, ConjunctiveQuery) {
        let mut db = Dataset::new();
        let t = |db: &mut Dataset, s: &str, p: &str, o: &str| {
            db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
        };
        t(&mut db, "a", "knows", "b");
        t(&mut db, "b", "knows", "c");
        t(&mut db, "c", "worksAt", "acme");
        let q = parse_query(
            "v(X, W) :- t(X, <knows>, Y), t(Y, <worksAt>, W)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        (db, q)
    }

    /// The invariant behind every test: after maintenance, the view equals
    /// a from-scratch rematerialization.
    fn assert_consistent(view: &MaintainedView, store: &TripleStore) {
        let fresh = evaluate(store, view.definition());
        assert_eq!(view.to_answers(), fresh);
    }

    #[test]
    fn insert_extends_join_views() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 1); // (b, acme)

        // d knows c  → (d, acme) must appear.
        let d = db.dict_mut().intern_uri("d");
        let knows = db.dict_mut().intern_uri("knows");
        let c = db.dict_mut().intern_uri("c");
        let triple = [d, knows, c];
        db.store_mut().insert(triple);
        let stats = view.apply_insert(db.store(), triple);
        assert_eq!(stats.added, 1);
        assert_eq!(view.len(), 2);
        assert_consistent(&view, db.store());
    }

    #[test]
    fn insert_matching_second_atom() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        // a works at initech → (X=?, W=initech) via Y=a… wait: needs
        // t(X, knows, a); nothing knows a, so no delta. Then e knows a.
        let a = db.dict().lookup_uri("a").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let initech = db.dict_mut().intern_uri("initech");
        let t1 = [a, works_at, initech];
        db.store_mut().insert(t1);
        let s1 = view.apply_insert(db.store(), t1);
        assert_eq!(s1.added, 0);
        assert_consistent(&view, db.store());

        let e = db.dict_mut().intern_uri("e");
        let knows = db.dict().lookup_uri("knows").unwrap();
        let t2 = [e, knows, a];
        db.store_mut().insert(t2);
        let s2 = view.apply_insert(db.store(), t2);
        assert_eq!(s2.added, 1); // (e, initech)
        assert_consistent(&view, db.store());
    }

    #[test]
    fn irrelevant_triples_cost_nothing() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        let x = db.dict_mut().intern_uri("x");
        let likes = db.dict_mut().intern_uri("likes");
        let y = db.dict_mut().intern_uri("y");
        let t = [x, likes, y];
        db.store_mut().insert(t);
        let stats = view.apply_insert(db.store(), t);
        assert_eq!(stats, MaintenanceStats::default());
        assert_consistent(&view, db.store());
    }

    #[test]
    fn duplicate_delta_not_double_counted() {
        let (db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        // Re-inserting an existing triple adds no rows (store dedups, but
        // even a forced maintenance call must not add).
        let triple = db.store().triples()[0];
        let stats = view.apply_insert(db.store(), triple);
        assert_eq!(stats.added, 0);
        assert_consistent(&view, db.store());
    }

    #[test]
    fn batch_maintenance_matches_rematerialization() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        let knows = db.dict().lookup_uri("knows").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let mut batch = Vec::new();
        for i in 0..10 {
            let s = db.dict_mut().intern_uri(&format!("p{i}"));
            let o = db.dict_mut().intern_uri(&format!("p{}", (i + 1) % 10));
            batch.push([s, knows, o]);
            if i % 3 == 0 {
                let site = db.dict_mut().intern_uri(&format!("site{i}"));
                batch.push([s, works_at, site]);
            }
        }
        let added = db.store_mut().insert_batch(&batch);
        assert_eq!(added.len(), batch.len());
        view.apply_insert_batch(db.store(), &batch);
        assert_consistent(&view, db.store());
    }

    /// The one-pass-per-atom batch delta agrees — tuple for tuple — with
    /// per-triple application, and never computes *more* delta tuples.
    #[test]
    fn batch_delta_matches_per_triple_and_saves_work() {
        let (mut db, q) = setup();
        let knows = db.dict().lookup_uri("knows").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let mut batch = Vec::new();
        for i in 0..12 {
            let s = db.dict_mut().intern_uri(&format!("n{i}"));
            let o = db.dict_mut().intern_uri(&format!("n{}", (i + 1) % 12));
            batch.push([s, knows, o]);
            let site = db.dict_mut().intern_uri(&format!("site{}", i % 2));
            batch.push([s, works_at, site]);
        }
        let mut batched = MaintainedView::new(db.store(), q.clone());
        let mut per_triple = MaintainedView::new(db.store(), q);

        db.store_mut().insert_batch(&batch);
        let bstats = batched.apply_insert_batch(db.store(), &batch);
        let mut pstats = MaintenanceStats::default();
        for &t in &batch {
            pstats.merge(per_triple.apply_insert(db.store(), t));
        }
        assert_eq!(batched.to_answers(), per_triple.to_answers());
        assert_eq!(bstats.added, pstats.added);
        assert!(
            bstats.delta_tuples <= pstats.delta_tuples,
            "batched {} vs per-triple {}",
            bstats.delta_tuples,
            pstats.delta_tuples
        );
        assert_consistent(&batched, db.store());
    }

    #[test]
    fn single_atom_view_maintenance() {
        let mut db = Dataset::new();
        db.insert_terms(Term::uri("a"), Term::uri("p"), Term::uri("b"));
        let q = parse_query("v(X, Y) :- t(X, <p>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 1);
        let p = db.dict().lookup_uri("p").unwrap();
        let c = db.dict_mut().intern_uri("c");
        let d = db.dict_mut().intern_uri("d");
        let t = [c, p, d];
        db.store_mut().insert(t);
        let stats = view.apply_insert(db.store(), t);
        assert_eq!(stats.added, 1);
        assert_consistent(&view, db.store());
    }

    /// The deployment-side deletion protocol: prepare while the triple is
    /// still stored, remove it, commit against the shrunken store.
    fn delete_triple(view: &mut MaintainedView, db: &mut Dataset, t: Triple) -> MaintenanceStats {
        let delta = view.prepare_delete(db.store(), t);
        assert!(db.store_mut().remove(t));
        view.commit_delete(db.store(), &delta)
    }

    #[test]
    fn delete_shrinks_join_views() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 1); // (b, acme)
        let c = db.dict().lookup_uri("c").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let acme = db.dict().lookup_uri("acme").unwrap();
        let stats = delete_triple(&mut view, &mut db, [c, works_at, acme]);
        assert_eq!(stats.removed, 1);
        assert!(view.is_empty());
        assert_consistent(&view, db.store());
    }

    #[test]
    fn delete_keeps_rederivable_rows() {
        // (b, acme) is derivable through two "knows" paths; removing one
        // must keep the row.
        let (mut db, _) = setup();
        let a2 = db.dict_mut().intern_uri("a2");
        let knows = db.dict().lookup_uri("knows").unwrap();
        let b = db.dict().lookup_uri("b").unwrap();
        db.store_mut().insert([a2, knows, b]);
        let q2 = parse_query(
            "v(W) :- t(X, <knows>, Y), t(Y, <worksAt>, W)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let mut view = MaintainedView::new(db.store(), q2);
        assert_eq!(view.len(), 1); // (acme) via b←a and b←a2
        let a = db.dict().lookup_uri("a").unwrap();
        let stats = delete_triple(&mut view, &mut db, [a, knows, b]);
        assert_eq!(stats.removed, 0, "still derivable via a2");
        assert_eq!(view.len(), 1);
        assert_consistent(&view, db.store());
    }

    #[test]
    fn delete_of_irrelevant_triple_is_cheap() {
        let (mut db, q) = setup();
        let x = db.dict_mut().intern_uri("x");
        let likes = db.dict_mut().intern_uri("likes");
        let y = db.dict_mut().intern_uri("y");
        db.store_mut().insert([x, likes, y]);
        let mut view = MaintainedView::new(db.store(), q);
        let stats = delete_triple(&mut view, &mut db, [x, likes, y]);
        assert_eq!(stats, MaintenanceStats::default());
        assert_consistent(&view, db.store());
    }

    #[test]
    fn delete_with_triple_in_two_atoms() {
        // v(X) :- t(X, p, Y), t(Y, p, X): the pair (a,b),(b,a) derives both
        // a and b; deleting (b,p,a) must drop both rows.
        let mut db = Dataset::new();
        let q = parse_query("v(X) :- t(X, <p>, Y), t(Y, <p>, X)", db.dict_mut())
            .unwrap()
            .query;
        let p = db.dict().lookup_uri("p").unwrap();
        let a = db.dict_mut().intern_uri("a");
        let b = db.dict_mut().intern_uri("b");
        db.store_mut().insert([a, p, b]);
        db.store_mut().insert([b, p, a]);
        db.store_mut().insert([a, p, a]); // self-loop keeps a derivable
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 2);
        let stats = delete_triple(&mut view, &mut db, [b, p, a]);
        assert_eq!(stats.removed, 1, "b gone, a survives via its self-loop");
        assert_consistent(&view, db.store());
    }

    #[test]
    fn batched_delete_matches_sequential_deletes() {
        let (mut db, q) = setup();
        let knows = db.dict().lookup_uri("knows").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let mut extra = Vec::new();
        for i in 0..10 {
            let s = db.dict_mut().intern_uri(&format!("d{i}"));
            let o = db.dict_mut().intern_uri(&format!("d{}", (i + 1) % 10));
            extra.push([s, knows, o]);
            let site = db.dict_mut().intern_uri(&format!("site{}", i % 3));
            extra.push([s, works_at, site]);
        }
        db.store_mut().insert_batch(&extra);
        let doomed: Vec<Triple> = extra.iter().copied().step_by(2).collect();

        // Batched: one prepare/commit pair for the whole set.
        let mut batched = MaintainedView::new(db.store(), q.clone());
        let mut batched_store = db.store().clone();
        let delta = batched.prepare_delete_batch(&batched_store, &doomed);
        batched_store.remove_batch(&doomed);
        let bstats = batched.commit_delete_batch(&batched_store, &delta);

        // Sequential per-triple deletes over an identical copy.
        let mut seq = MaintainedView::new(db.store(), q.clone());
        let mut seq_store = db.store().clone();
        let mut pstats = MaintenanceStats::default();
        for &t in &doomed {
            let d = seq.prepare_delete(&seq_store, t);
            seq_store.remove(t);
            pstats.merge(seq.commit_delete(&seq_store, &d));
        }
        assert_eq!(batched.to_answers(), seq.to_answers());
        assert_eq!(bstats.removed, pstats.removed);
        assert!(
            bstats.delta_tuples <= pstats.delta_tuples,
            "batched {} vs per-triple {}",
            bstats.delta_tuples,
            pstats.delta_tuples
        );
        assert_eq!(
            batched.to_answers(),
            evaluate(&batched_store, batched.definition())
        );
    }

    #[test]
    fn interleaved_inserts_and_deletes_converge() {
        let (mut db, q) = setup();
        let mut view = MaintainedView::new(db.store(), q);
        let knows = db.dict().lookup_uri("knows").unwrap();
        let works_at = db.dict().lookup_uri("worksAt").unwrap();
        let mut triples = Vec::new();
        for i in 0..8 {
            let s = db.dict_mut().intern_uri(&format!("w{i}"));
            let o = db.dict_mut().intern_uri(&format!("w{}", (i + 1) % 8));
            triples.push([s, knows, o]);
            if i % 2 == 0 {
                let site = db.dict_mut().intern_uri(&format!("site{i}"));
                triples.push([s, works_at, site]);
            }
        }
        for &t in &triples {
            if db.store_mut().insert(t) {
                view.apply_insert(db.store(), t);
            }
            assert_consistent(&view, db.store());
        }
        for &t in triples.iter().rev().step_by(2) {
            delete_triple(&mut view, &mut db, t);
            assert_consistent(&view, db.store());
        }
    }

    #[test]
    fn self_join_view_maintenance() {
        // v(X) :- t(X, p, Y), t(Y, p, X): one new triple can complete a
        // pair in both directions.
        let mut db = Dataset::new();
        let q = parse_query("v(X) :- t(X, <p>, Y), t(Y, <p>, X)", db.dict_mut())
            .unwrap()
            .query;
        let p = db.dict().lookup_uri("p").unwrap();
        let a = db.dict_mut().intern_uri("a");
        let b = db.dict_mut().intern_uri("b");
        db.store_mut().insert([a, p, b]);
        let mut view = MaintainedView::new(db.store(), q);
        assert_eq!(view.len(), 0);
        let t = [b, p, a];
        db.store_mut().insert(t);
        view.apply_insert(db.store(), t);
        assert_eq!(view.len(), 2); // a and b
        assert_consistent(&view, db.store());
    }
}
