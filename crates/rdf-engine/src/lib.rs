//! # rdf-engine
//!
//! Select-project-join evaluation over the triple table and over
//! materialized views.
//!
//! The paper's platform requirement is deliberately modest: "an execution
//! framework capable of evaluating our simple select-project-join
//! rewritings" (Section 7). This crate provides exactly that:
//!
//! * [`evaluate`] / [`evaluate_union`] — conjunctive queries and UCQs over
//!   the triple table, answered with index-backed nested-loop joins using
//!   the store's six permutation indexes (the "heavily indexed triple
//!   table" configurations of Figure 8);
//! * [`materialize`] / [`materialize_union`] — view materialization,
//!   producing [`ViewTable`]s (Section 6.6 materializes both plain and
//!   reformulated views);
//! * [`evaluate_over_views`] — rewritings, i.e. conjunctive queries whose
//!   atoms range over view tables (selections encoded by constants in the
//!   arguments, joins by repeated variables), with hash-indexes built on
//!   demand per bound-column set;
//! * [`evaluate_mixed`] — atoms mixing store scans and table scans: the
//!   delta-join shape of set-at-a-time view maintenance ([`maintain`]),
//!   where one atom position is bound to the whole update batch.
//!
//! Answers use **set semantics**, matching the conjunctive-query formalism
//! of the paper (equivalence is defined through containment mappings).
//!
//! ## Evaluation internals
//!
//! All entry points funnel into one backtracking join core. The default
//! engine is the **compiled index-native core** (`eval::compiled`):
//!
//! * each query is compiled once — variables get dense slot numbers, so
//!   the bindings frame is a flat vector plus an undo trail instead of a
//!   hash map, and every atom becomes a pre-resolved access path;
//! * store atoms iterate directly over `Arc`-shared sorted permutation
//!   index ranges ([`rdf_model::TripleStore::pattern_range`]) — no
//!   per-node match materialization — and the chosen permutation covers
//!   all bound columns as a sort prefix, so bound columns need no per-row
//!   re-check;
//! * view atoms probe [`ViewIndex`]es resident in their [`ViewTable`]
//!   (built once per bound-column mask, `Arc`-shared, surviving across
//!   evaluator calls — see [`ViewTable::index_for_mask`]);
//! * the join order is chosen adaptively at each depth from bound-prefix
//!   match counts, pruning any subtree with a zero-extent atom;
//! * all working memory comes from a thread-local scratch pool, so the
//!   inner loop performs no per-row heap allocation.
//!
//! The pre-compiled collect-per-node core survives in `eval::legacy` as a
//! measured baseline, selectable via [`EvalOptions::legacy_indexed`]
//! (indexed) and [`EvalOptions::scan_baseline`] (full scans — the "plain
//! clustered triple table" configuration of the paper's Figure 8);
//! differential property tests hold all three engines to identical
//! answers.
//!
//! ```
//! use rdf_model::{Dataset, Term};
//! use rdf_query::parser::parse_query;
//! use rdf_engine::evaluate;
//!
//! let mut db = Dataset::new();
//! db.insert_terms(Term::uri("a"), Term::uri("knows"), Term::uri("b"));
//! db.insert_terms(Term::uri("b"), Term::uri("knows"), Term::uri("c"));
//!
//! let q = parse_query("q(X, Z) :- t(X, <knows>, Y), t(Y, <knows>, Z)", db.dict_mut()).unwrap();
//! let answers = evaluate(db.store(), &q.query);
//! assert_eq!(answers.len(), 1); // (a, c)
//! ```

mod answers;
mod eval;
pub mod maintain;
mod view_table;

pub use answers::Answers;
pub use eval::{
    evaluate, evaluate_mixed, evaluate_over_views, evaluate_union, evaluate_with, EvalOptions,
    MixedAtom, ViewAtom,
};
pub use maintain::{DeleteDelta, DeltaSet, MaintainedView, MaintenanceStats};
pub use view_table::{ViewIndex, ViewTable};

use rdf_model::TripleStore;
use rdf_query::{ConjunctiveQuery, UnionQuery};

/// Materializes a view (a CQ over the triple table) into a table whose
/// columns follow the view's head.
pub fn materialize(store: &TripleStore, view: &ConjunctiveQuery) -> ViewTable {
    ViewTable::from_answers(view.head.len(), evaluate(store, view))
}

/// Materializes a union view — e.g. a reformulated view in the
/// post-reformulation pipeline (Section 4.3): the union of the branch
/// results, deduplicated.
pub fn materialize_union(store: &TripleStore, view: &UnionQuery) -> ViewTable {
    let arity = view.branches().first().map_or(0, |b| b.head.len());
    ViewTable::from_answers(arity, evaluate_union(store, view))
}
