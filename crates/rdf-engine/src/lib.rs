//! # rdf-engine
//!
//! Select-project-join evaluation over the triple table and over
//! materialized views.
//!
//! The paper's platform requirement is deliberately modest: "an execution
//! framework capable of evaluating our simple select-project-join
//! rewritings" (Section 7). This crate provides exactly that:
//!
//! * [`evaluate`] / [`evaluate_union`] — conjunctive queries and UCQs over
//!   the triple table, answered with index-backed nested-loop joins using
//!   the store's six permutation indexes (the "heavily indexed triple
//!   table" configurations of Figure 8);
//! * [`materialize`] / [`materialize_union`] — view materialization,
//!   producing [`ViewTable`]s (Section 6.6 materializes both plain and
//!   reformulated views);
//! * [`evaluate_over_views`] — rewritings, i.e. conjunctive queries whose
//!   atoms range over view tables (selections encoded by constants in the
//!   arguments, joins by repeated variables), with hash-indexes built on
//!   demand per bound-column set;
//! * [`evaluate_mixed`] — atoms mixing store scans and table scans: the
//!   delta-join shape of set-at-a-time view maintenance ([`maintain`]),
//!   where one atom position is bound to the whole update batch.
//!
//! Answers use **set semantics**, matching the conjunctive-query formalism
//! of the paper (equivalence is defined through containment mappings).
//!
//! ## Evaluation internals
//!
//! All entry points funnel into one backtracking join core. The default
//! engine is the **compiled index-native core** (`eval::compiled`):
//!
//! * each query is compiled once — variables get dense slot numbers, so
//!   the bindings frame is a flat vector plus an undo trail instead of a
//!   hash map, and every atom becomes a pre-resolved access path;
//! * store atoms iterate directly over `Arc`-shared sorted permutation
//!   index ranges ([`rdf_model::TripleStore::pattern_range`]) — no
//!   per-node match materialization — and the chosen permutation covers
//!   all bound columns as a sort prefix, so bound columns need no per-row
//!   re-check;
//! * view atoms probe [`ViewIndex`]es resident in their [`ViewTable`]
//!   (built once per bound-column mask, `Arc`-shared, surviving across
//!   evaluator calls — see [`ViewTable::index_for_mask`]);
//! * the join order is chosen adaptively at each depth from bound-prefix
//!   match counts, pruning any subtree with a zero-extent atom;
//! * all working memory comes from a thread-local scratch pool, so the
//!   inner loop performs no per-row heap allocation; output deduplication
//!   is a generation-tagged open-addressing table whose clear is O(1), so
//!   a pooled scratch that once served a million-answer query costs a
//!   microsecond-scale query nothing.
//!
//! **Cyclic queries run a worst-case-optimal leapfrog triejoin instead**
//! (`eval::wcoj`). The compiled core expands one *atom* at a time, so on a
//! triangle it enumerates binary-join intermediates the output never
//! needs; the leapfrog mode joins one *variable* at a time:
//!
//! * a global variable order is fixed up front — highest atom degree
//!   first, smallest containing-atom extent as tie-break — and every atom
//!   exposes its matches as a trie in that order: store atoms through the
//!   permutation index whose sort sequence lists constants, then each
//!   variable's column(s) consecutively
//!   ([`rdf_model::IndexOrder::for_groups`]), view atoms through a cached
//!   sorted-row projection ([`ViewTable::sorted_index_for_order`], built
//!   once per column sequence like the hash indexes);
//! * each level intersects the participating cursors by leapfrog:
//!   galloping (exponential-probe + binary-search) seeks to the current
//!   maximum until all agree, then bind, narrow each cursor to its
//!   value-run, descend;
//! * the selector ([`EngineChoice::Auto`], the default) runs a GYO
//!   ear-removal acyclicity test on the atom hypergraph per query: cyclic
//!   shapes (triangles, diamonds, k-cycles) route to leapfrog, acyclic
//!   ones keep the compiled core, and [`EvalStats::engine`] (from
//!   [`evaluate_with_stats`] / [`evaluate_mixed_stats`]) records the
//!   decision along with seek/emit counters.
//!
//! The pre-compiled collect-per-node core survives in `eval::legacy` as a
//! measured baseline, selectable via [`EvalOptions::legacy_indexed`]
//! (indexed) and [`EvalOptions::scan_baseline`] (full scans — the "plain
//! clustered triple table" configuration of the paper's Figure 8);
//! differential property tests hold all four engines to identical
//! answers.
//!
//! ```
//! use rdf_model::{Dataset, Term};
//! use rdf_query::parser::parse_query;
//! use rdf_engine::evaluate;
//!
//! let mut db = Dataset::new();
//! db.insert_terms(Term::uri("a"), Term::uri("knows"), Term::uri("b"));
//! db.insert_terms(Term::uri("b"), Term::uri("knows"), Term::uri("c"));
//!
//! let q = parse_query("q(X, Z) :- t(X, <knows>, Y), t(Y, <knows>, Z)", db.dict_mut()).unwrap();
//! let answers = evaluate(db.store(), &q.query);
//! assert_eq!(answers.len(), 1); // (a, c)
//! ```

mod answers;
mod eval;
pub mod maintain;
mod view_table;

pub use answers::Answers;
pub use eval::{
    evaluate, evaluate_mixed, evaluate_mixed_stats, evaluate_over_views, evaluate_union,
    evaluate_with, evaluate_with_stats, Engine, EngineChoice, EvalOptions, EvalStats, MixedAtom,
    ViewAtom,
};
pub use maintain::{DeleteDelta, DeltaSet, MaintainedView, MaintenanceStats};
pub use view_table::{ViewIndex, ViewSortedIndex, ViewTable};

use rdf_model::TripleStore;
use rdf_query::{ConjunctiveQuery, UnionQuery};

/// Materializes a view (a CQ over the triple table) into a table whose
/// columns follow the view's head.
pub fn materialize(store: &TripleStore, view: &ConjunctiveQuery) -> ViewTable {
    ViewTable::from_answers(view.head.len(), evaluate(store, view))
}

/// Materializes a union view — e.g. a reformulated view in the
/// post-reformulation pipeline (Section 4.3): the union of the branch
/// results, deduplicated.
pub fn materialize_union(store: &TripleStore, view: &UnionQuery) -> ViewTable {
    let arity = view.branches().first().map_or(0, |b| b.head.len());
    ViewTable::from_answers(arity, evaluate_union(store, view))
}
