//! The conjunctive-query evaluator.
//!
//! A single backtracking join core serves both query shapes the paper
//! needs: CQs over the triple table (atoms answered through the store's six
//! permutation indexes) and rewritings over materialized views (atoms
//! answered through on-demand hash indexes on the bound columns). Atoms are
//! ordered once, greedily — fewest new variables first, then smallest
//! estimated extent — which is the textbook index-nested-loop strategy the
//! paper's PostgreSQL baseline would also pick for these star/chain shapes.

use rdf_model::{FxHashMap, FxHashSet, Id, StorePattern, TripleStore};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, UnionQuery, Var};

use crate::answers::Answers;
use crate::view_table::ViewTable;

/// One rewriting atom: a view table applied to argument terms. Constants
/// encode selections; repeated variables encode joins.
#[derive(Debug, Clone)]
pub struct ViewAtom<'a> {
    /// The materialized view being scanned.
    pub table: &'a ViewTable,
    /// One term per view head column.
    pub args: Vec<QTerm>,
}

/// Evaluation options.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// When false, triple-table atoms are answered by filtering full scans
    /// instead of index range lookups — the "plain clustered triple table"
    /// baseline of the paper's Figure 8 configurations.
    pub use_indexes: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self { use_indexes: true }
    }
}

/// Evaluates a conjunctive query over the triple table.
pub fn evaluate(store: &TripleStore, q: &ConjunctiveQuery) -> Answers {
    evaluate_with(store, q, &EvalOptions::default())
}

/// Evaluates a conjunctive query with explicit options.
pub fn evaluate_with(store: &TripleStore, q: &ConjunctiveQuery, opts: &EvalOptions) -> Answers {
    let atoms: Vec<EvalAtom> = q
        .atoms
        .iter()
        .map(|a| EvalAtom::Store { atom: *a })
        .collect();
    run_with(store, atoms, &q.head, opts)
}

/// Evaluates a union of conjunctive queries (set-union of branch answers).
pub fn evaluate_union(store: &TripleStore, ucq: &UnionQuery) -> Answers {
    let arity = ucq.branches().first().map_or(0, |b| b.head.len());
    let mut set: FxHashSet<Vec<Id>> = FxHashSet::default();
    for branch in ucq.branches() {
        set.extend(evaluate(store, branch).into_tuples());
    }
    Answers::from_set(arity, set)
}

/// One atom of a mixed evaluation: a triple-table atom or a view scan.
///
/// This is the shape of a set-at-a-time delta join (`rdf_engine::maintain`):
/// one atom position ranges over the Δ set — materialized as a small
/// 3-column [`ViewTable`] and probed through its on-demand hash indexes —
/// while every other atom ranges over the store.
#[derive(Debug, Clone)]
pub enum MixedAtom<'a> {
    /// An atom answered from the triple store's permutation indexes.
    Store(Atom),
    /// An atom answered from a materialized table.
    View(ViewAtom<'a>),
}

/// Evaluates a conjunctive query whose atoms mix triple-table scans and
/// view-table scans, sharing the single backtracking join core.
pub fn evaluate_mixed(store: &TripleStore, atoms: &[MixedAtom<'_>], head: &[QTerm]) -> Answers {
    let eval_atoms: Vec<EvalAtom> = atoms
        .iter()
        .map(|ma| match ma {
            MixedAtom::Store(atom) => EvalAtom::Store { atom: *atom },
            MixedAtom::View(va) => {
                assert_eq!(va.args.len(), va.table.arity(), "view atom arity mismatch");
                EvalAtom::View {
                    table: va.table,
                    args: va.args.clone(),
                }
            }
        })
        .collect();
    run(store, eval_atoms, head)
}

/// Evaluates a rewriting: a conjunctive query whose atoms are view scans.
pub fn evaluate_over_views(atoms: &[ViewAtom<'_>], head: &[QTerm]) -> Answers {
    let eval_atoms: Vec<EvalAtom> = atoms
        .iter()
        .map(|va| {
            assert_eq!(va.args.len(), va.table.arity(), "view atom arity mismatch");
            EvalAtom::View {
                table: va.table,
                args: va.args.clone(),
            }
        })
        .collect();
    // The store is unused for pure view rewritings; an empty one satisfies
    // the evaluator's signature.
    thread_local! {
        static EMPTY: TripleStore = TripleStore::new();
    }
    EMPTY.with(|store| run(store, eval_atoms, head))
}

enum EvalAtom<'a> {
    Store {
        atom: Atom,
    },
    View {
        table: &'a ViewTable,
        args: Vec<QTerm>,
    },
}

impl EvalAtom<'_> {
    fn args(&self) -> Vec<QTerm> {
        match self {
            EvalAtom::Store { atom } => atom.terms().to_vec(),
            EvalAtom::View { args, .. } => args.clone(),
        }
    }

    /// Extent estimate ignoring variable bindings, used by the static
    /// ordering.
    fn base_count(&self, store: &TripleStore) -> usize {
        match self {
            EvalAtom::Store { atom } => {
                let [s, p, o] = atom.terms();
                let pat = StorePattern::new(s.as_const(), p.as_const(), o.as_const());
                store.match_count(&pat)
            }
            EvalAtom::View { table, .. } => table.len(),
        }
    }
}

fn run(store: &TripleStore, atoms: Vec<EvalAtom>, head: &[QTerm]) -> Answers {
    run_with(store, atoms, head, &EvalOptions::default())
}

fn run_with(
    store: &TripleStore,
    atoms: Vec<EvalAtom>,
    head: &[QTerm],
    opts: &EvalOptions,
) -> Answers {
    let order = plan_order(store, &atoms);
    let mut ctx = Ctx {
        store,
        atoms,
        order,
        head,
        bindings: FxHashMap::default(),
        out: FxHashSet::default(),
        view_indexes: FxHashMap::default(),
        use_indexes: opts.use_indexes,
    };
    ctx.recurse(0);
    Answers::from_set(head.len(), ctx.out)
}

/// Greedy static join order: fewest unbound variables first, breaking ties
/// by estimated extent.
fn plan_order(store: &TripleStore, atoms: &[EvalAtom]) -> Vec<usize> {
    let n = atoms.len();
    let counts: Vec<usize> = atoms.iter().map(|a| a.base_count(store)).collect();
    let mut chosen = vec![false; n];
    let mut bound: FxHashSet<Var> = FxHashSet::default();
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(usize, (usize, usize))> = None;
        for (i, atom) in atoms.iter().enumerate() {
            if chosen[i] {
                continue;
            }
            let unbound = atom
                .args()
                .iter()
                .filter_map(|t| t.as_var())
                .collect::<FxHashSet<_>>()
                .iter()
                .filter(|v| !bound.contains(v))
                .count();
            let key = (unbound, counts[i]);
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((i, key));
            }
        }
        let (i, _) = best.expect("atom available");
        chosen[i] = true;
        for t in atoms[i].args() {
            if let QTerm::Var(v) = t {
                bound.insert(v);
            }
        }
        order.push(i);
    }
    order
}

struct Ctx<'a, 'h> {
    store: &'a TripleStore,
    atoms: Vec<EvalAtom<'a>>,
    order: Vec<usize>,
    head: &'h [QTerm],
    bindings: FxHashMap<Var, Id>,
    out: FxHashSet<Vec<Id>>,
    /// Cache of view hash-indexes, keyed by atom index and bound-column
    /// mask (the mask is fixed per atom under the static order).
    view_indexes: FxHashMap<(usize, u64), FxHashMap<Vec<Id>, Vec<usize>>>,
    /// Whether triple-table atoms may use the permutation indexes.
    use_indexes: bool,
}

impl Ctx<'_, '_> {
    fn recurse(&mut self, depth: usize) {
        if depth == self.order.len() {
            let tuple: Vec<Id> = self
                .head
                .iter()
                .map(|t| match t {
                    QTerm::Const(c) => *c,
                    QTerm::Var(v) => *self
                        .bindings
                        .get(v)
                        .expect("unsafe query: unbound head variable"),
                })
                .collect();
            self.out.insert(tuple);
            return;
        }
        let atom_idx = self.order[depth];
        match &self.atoms[atom_idx] {
            EvalAtom::Store { atom } => {
                let atom = *atom;
                let [s, p, o] = atom.terms();
                let slot = |t: &QTerm| match t {
                    QTerm::Const(c) => Some(*c),
                    QTerm::Var(v) => self.bindings.get(v).copied(),
                };
                let pat = StorePattern::new(slot(s), slot(p), slot(o));
                // Collect matches first: the borrow of `store` is fine, but
                // `for_each_match` borrowing `self` while recursing is not.
                let matches = if self.use_indexes {
                    self.store.matching(&pat)
                } else {
                    self.store
                        .triples()
                        .iter()
                        .copied()
                        .filter(|&t| pat.matches(t))
                        .collect()
                };
                for triple in matches {
                    let mut trail: Vec<Var> = Vec::new();
                    if self.unify(&atom.terms()[..], &triple[..], &mut trail) {
                        self.recurse(depth + 1);
                    }
                    for v in trail {
                        self.bindings.remove(&v);
                    }
                }
            }
            EvalAtom::View { table, args } => {
                let table = *table;
                let args = args.clone();
                let mut bound_cols: Vec<usize> = Vec::new();
                let mut key: Vec<Id> = Vec::new();
                let mut mask = 0u64;
                for (c, t) in args.iter().enumerate() {
                    let val = match t {
                        QTerm::Const(cst) => Some(*cst),
                        QTerm::Var(v) => self.bindings.get(v).copied(),
                    };
                    if let Some(val) = val {
                        bound_cols.push(c);
                        key.push(val);
                        mask |= 1 << c;
                    }
                }
                let row_ids: Vec<usize> = if bound_cols.is_empty() {
                    (0..table.len()).collect()
                } else {
                    let idx = self
                        .view_indexes
                        .entry((atom_idx, mask))
                        .or_insert_with(|| table.build_index(&bound_cols));
                    idx.get(&key).cloned().unwrap_or_default()
                };
                for r in row_ids {
                    let row: Vec<Id> = table.row(r).to_vec();
                    let mut trail: Vec<Var> = Vec::new();
                    if self.unify(&args, &row, &mut trail) {
                        self.recurse(depth + 1);
                    }
                    for v in trail {
                        self.bindings.remove(&v);
                    }
                }
            }
        }
    }

    /// Extends the bindings so that `args` matches `values`; handles
    /// repeated variables within the atom. Newly bound vars go on `trail`.
    fn unify(&mut self, args: &[QTerm], values: &[Id], trail: &mut Vec<Var>) -> bool {
        for (t, &val) in args.iter().zip(values.iter()) {
            match t {
                QTerm::Const(c) => {
                    if *c != val {
                        return false;
                    }
                }
                QTerm::Var(v) => match self.bindings.get(v) {
                    Some(&prev) => {
                        if prev != val {
                            return false;
                        }
                    }
                    None => {
                        self.bindings.insert(*v, val);
                        trail.push(*v);
                    }
                },
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;

    fn family() -> Dataset {
        let mut db = Dataset::new();
        let t = |db: &mut Dataset, s: &str, p: &str, o: &str| {
            db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
        };
        // rembrandt painted nightWatch; picasso painted guernica;
        // rembrandt parentOf titus; titus painted portrait.
        t(&mut db, "rembrandt", "hasPainted", "nightWatch");
        t(&mut db, "picasso", "hasPainted", "guernica");
        t(&mut db, "rembrandt", "isParentOf", "titus");
        t(&mut db, "titus", "hasPainted", "portrait");
        db
    }

    #[test]
    fn single_atom_with_constant() {
        let mut db = family();
        let q = parse_query("q(X) :- t(X, <hasPainted>, <guernica>)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
        let picasso = db.dict().lookup_uri("picasso").unwrap();
        assert!(a.contains(&[picasso]));
    }

    #[test]
    fn join_across_atoms() {
        let mut db = family();
        let q = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
        let rembrandt = db.dict().lookup_uri("rembrandt").unwrap();
        let portrait = db.dict().lookup_uri("portrait").unwrap();
        assert!(a.contains(&[rembrandt, portrait]));
    }

    #[test]
    fn running_example_q1() {
        // Painters of a specific painting with a painter child.
        let mut db = family();
        let q = parse_query(
            "q1(X, Z) :- t(X, <hasPainted>, <nightWatch>), t(X, <isParentOf>, Y), \
             t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = family();
        db.insert_terms(
            Term::uri("narciss"),
            Term::uri("admires"),
            Term::uri("narciss"),
        );
        db.insert_terms(Term::uri("a"), Term::uri("admires"), Term::uri("b"));
        let q = parse_query("q(X) :- t(X, <admires>, X)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn variable_property() {
        let mut db = family();
        let q = parse_query("q(P) :- t(<rembrandt>, P, Y)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 2); // hasPainted, isParentOf
    }

    #[test]
    fn boolean_query_semantics() {
        let mut db = family();
        let yes = parse_query("q() :- t(X, <hasPainted>, Y)", db.dict_mut()).unwrap();
        assert_eq!(evaluate(db.store(), &yes.query).len(), 1);
        let no = parse_query("q() :- t(X, <hasEaten>, Y)", db.dict_mut()).unwrap();
        assert!(evaluate(db.store(), &no.query).is_empty());
    }

    #[test]
    fn set_semantics_dedup() {
        let mut db = family();
        // X has painted something: picasso appears once despite join paths.
        let q = parse_query("q(X) :- t(X, <hasPainted>, Y)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 3); // rembrandt, picasso, titus
    }

    #[test]
    fn union_evaluation() {
        let mut db = family();
        let q1 = parse_query("q(X) :- t(X, <hasPainted>, <guernica>)", db.dict_mut()).unwrap();
        let q2 = parse_query("q(X) :- t(X, <isParentOf>, Y)", db.dict_mut()).unwrap();
        let mut u = UnionQuery::new();
        u.push(q1.query);
        u.push(q2.query);
        let a = evaluate_union(db.store(), &u);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn view_rewriting_equals_direct() {
        use crate::materialize;
        let mut db = family();
        // Views: v1(X,Y) = parentOf pairs; v2(Y,Z) = painted pairs.
        let v1 = parse_query("v1(X, Y) :- t(X, <isParentOf>, Y)", db.dict_mut()).unwrap();
        let v2 = parse_query("v2(Y, Z) :- t(Y, <hasPainted>, Z)", db.dict_mut()).unwrap();
        let t1 = materialize(db.store(), &v1.query);
        let t2 = materialize(db.store(), &v2.query);
        // Rewriting r(X,Z) :- v1(X,Y), v2(Y,Z).
        let x = Var(0);
        let y = Var(1);
        let z = Var(2);
        let atoms = vec![
            ViewAtom {
                table: &t1,
                args: vec![x.into(), y.into()],
            },
            ViewAtom {
                table: &t2,
                args: vec![y.into(), z.into()],
            },
        ];
        let via_views = evaluate_over_views(&atoms, &[x.into(), z.into()]);
        let direct = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        assert_eq!(via_views, evaluate(db.store(), &direct.query));
    }

    #[test]
    fn view_rewriting_with_selection_constant() {
        use crate::materialize;
        let mut db = family();
        let v = parse_query("v(X, Y) :- t(X, <hasPainted>, Y)", db.dict_mut()).unwrap();
        let t = materialize(db.store(), &v.query);
        let guernica = db.dict().lookup_uri("guernica").unwrap();
        let x = Var(0);
        let atoms = vec![ViewAtom {
            table: &t,
            args: vec![x.into(), guernica.into()],
        }];
        let a = evaluate_over_views(&atoms, &[x.into()]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn mixed_atoms_equal_direct_evaluation() {
        // One atom answered from a 3-column delta-style table, the other
        // from the store: the mix must agree with pure store evaluation.
        let mut db = family();
        let q = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let delta = ViewTable::from_rows(3, db.store().triples().iter().map(|t| t.to_vec()));
        for i in 0..q.atoms.len() {
            let atoms: Vec<MixedAtom> = q
                .atoms
                .iter()
                .enumerate()
                .map(|(j, a)| {
                    if j == i {
                        MixedAtom::View(ViewAtom {
                            table: &delta,
                            args: a.terms().to_vec(),
                        })
                    } else {
                        MixedAtom::Store(*a)
                    }
                })
                .collect();
            let mixed = evaluate_mixed(db.store(), &atoms, &q.head);
            assert_eq!(mixed, evaluate(db.store(), &q), "delta at atom {i}");
        }
    }

    #[test]
    fn scan_only_matches_indexed() {
        let mut db = family();
        let q = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        let indexed = evaluate(db.store(), &q.query);
        let scanned = evaluate_with(db.store(), &q.query, &EvalOptions { use_indexes: false });
        assert_eq!(indexed, scanned);
    }

    #[test]
    fn cartesian_product_rewriting() {
        use crate::materialize;
        let mut db = family();
        let v = parse_query("v(X) :- t(X, <isParentOf>, Y)", db.dict_mut()).unwrap();
        let t = materialize(db.store(), &v.query);
        let a = Var(0);
        let b = Var(1);
        let atoms = vec![
            ViewAtom {
                table: &t,
                args: vec![a.into()],
            },
            ViewAtom {
                table: &t,
                args: vec![b.into()],
            },
        ];
        let ans = evaluate_over_views(&atoms, &[a.into(), b.into()]);
        assert_eq!(ans.len(), 1); // 1×1 product
    }
}
