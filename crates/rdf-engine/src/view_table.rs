//! Materialized view tables.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks an index-cache `RwLock`, recovering from poison. The caches are
/// insert-only maps of completed `Arc` entries: a thread that panics
/// mid-build can at worst leave an entry unwritten, never half-written,
/// so a recovered guard always observes a valid cache.
fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock counterpart of [`read_unpoisoned`].
fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

use rdf_model::{FxHashMap, Id};

use crate::answers::Answers;

/// A hash index over one column subset of a [`ViewTable`]: maps the key
/// values (in ascending column order) to the matching row numbers.
///
/// Indexes are built once per `(table, column mask)` and `Arc`-shared —
/// the join core probes them without holding any table lock.
#[derive(Debug)]
pub struct ViewIndex {
    cols: Vec<usize>,
    map: FxHashMap<Vec<Id>, Vec<u32>>,
}

impl ViewIndex {
    /// The indexed columns, ascending.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The row numbers whose key columns equal `key` (values in the same
    /// order as [`ViewIndex::cols`]); empty when no row matches.
    #[inline]
    pub fn rows_for(&self, key: &[Id]) -> &[u32] {
        self.map.get(key).map_or(&[], |rows| rows.as_slice())
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

/// A sorted projection of a [`ViewTable`]: all row numbers, ordered
/// lexicographically by the values of a fixed column sequence (ties broken
/// by row number, so the order is total and deterministic).
///
/// This is the view-table analogue of the triple store's permutation
/// indexes: the leapfrog join walks `rows` as a trie whose level `k` is
/// column `cols[k]`, narrowing `[lo, hi)` windows by galloping binary
/// search. Built once per `(table, column sequence)` and `Arc`-shared,
/// under the same build-counter discipline as [`ViewTable::index_for_mask`].
#[derive(Debug)]
pub struct ViewSortedIndex {
    cols: Vec<usize>,
    rows: Vec<u32>,
}

impl ViewSortedIndex {
    /// The sort-column sequence (outermost first).
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// All row numbers in sort order.
    #[inline]
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// The `[lo, hi)` window of rows whose first `key.len()` sort columns
    /// equal `key` — the trie descent for a constant prefix.
    pub fn prefix_range(&self, table: &ViewTable, key: &[Id]) -> (usize, usize) {
        debug_assert!(key.len() <= self.cols.len());
        let cmp = |r: u32| -> std::cmp::Ordering {
            let row = table.row(r as usize);
            for (k, want) in key.iter().enumerate() {
                match row[self.cols[k]].cmp(want) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        };
        let lo = self
            .rows
            .partition_point(|&r| cmp(r) == std::cmp::Ordering::Less);
        let hi = self.rows[lo..].partition_point(|&r| cmp(r) != std::cmp::Ordering::Greater) + lo;
        (lo, hi)
    }
}

/// The per-table index cache: one [`ViewIndex`] per bound-column mask,
/// built on first probe and reused for the table's whole lifetime. A
/// `ViewTable` is immutable after construction, so the cache never goes
/// stale: maintenance produces *new* tables (the deployment layer's
/// version-stamped rebuild), and each fresh table starts a fresh cache —
/// one build per `(table, mask, version)`, mirroring the triple store's
/// `IndexSnapshot` idiom.
#[derive(Debug, Default)]
struct IndexCache {
    by_mask: RwLock<FxHashMap<u64, Arc<ViewIndex>>>,
    by_order: RwLock<FxHashMap<Vec<usize>, Arc<ViewSortedIndex>>>,
    builds: AtomicUsize,
}

impl Clone for IndexCache {
    fn clone(&self) -> Self {
        // The data is identical in the clone, so the built indexes remain
        // valid; sharing them keeps a cloned deployment warm.
        let masks = read_unpoisoned(&self.by_mask);
        let orders = read_unpoisoned(&self.by_order);
        Self {
            by_mask: RwLock::new(masks.clone()),
            by_order: RwLock::new(orders.clone()),
            builds: AtomicUsize::new(self.builds.load(Ordering::Relaxed)),
        }
    }
}

/// A materialized view: a fixed-arity table of id tuples, stored flat.
///
/// Hash indexes over arbitrary column subsets are built on demand, cached
/// inside the table (interior mutability), and shared via `Arc`; rewriting
/// evaluation and maintenance delta joins probe them for join lookups.
#[derive(Debug, Clone, Default)]
pub struct ViewTable {
    arity: usize,
    /// Row-major storage: `data[r * arity .. (r + 1) * arity]` is row `r`.
    data: Vec<Id>,
    cache: IndexCache,
}

impl ViewTable {
    /// Builds a table from answers (already deduplicated).
    pub fn from_answers(arity: usize, answers: Answers) -> Self {
        let tuples = answers.into_tuples();
        let mut data = Vec::with_capacity(tuples.len() * arity);
        for t in &tuples {
            debug_assert_eq!(t.len(), arity);
            data.extend_from_slice(t);
        }
        Self {
            arity,
            data,
            cache: IndexCache::default(),
        }
    }

    /// Builds a table from raw rows (deduplicating).
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Vec<Id>>) -> Self {
        Self::from_answers(arity, Answers::from_tuples(arity, rows))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows. A zero-arity table (boolean view) cannot encode its
    /// row count in `data` and reports 0; such views are degenerate and not
    /// produced by the selection pipeline.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `r`-th row.
    pub fn row(&self, r: usize) -> &[Id] {
        &self.data[r * self.arity..(r + 1) * self.arity]
    }

    /// Iterates rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Id]> {
        self.data.chunks_exact(self.arity.max(1))
    }

    /// Size in tuples × columns (a proxy for storage bytes before width
    /// weighting).
    pub fn cell_count(&self) -> usize {
        self.data.len()
    }

    /// The cached hash index for the column set `mask` (bit `c` set ⇔
    /// column `c` is a key column). Built on first use, then shared — a
    /// maintenance batch or a repeated `answer_query` probing the same
    /// table with the same bound columns pays the build exactly once.
    pub fn index_for_mask(&self, mask: u64) -> Arc<ViewIndex> {
        debug_assert!(self.arity <= 64, "mask-indexed tables cap at 64 columns");
        {
            let guard = read_unpoisoned(&self.cache.by_mask);
            if let Some(idx) = guard.get(&mask) {
                return Arc::clone(idx);
            }
        }
        let cols: Vec<usize> = (0..self.arity).filter(|c| mask & (1 << c) != 0).collect();
        let mut map: FxHashMap<Vec<Id>, Vec<u32>> = FxHashMap::default();
        for r in 0..self.len() {
            let row = self.row(r);
            let key: Vec<Id> = cols.iter().map(|&c| row[c]).collect();
            map.entry(key).or_default().push(r as u32);
        }
        let idx = Arc::new(ViewIndex { cols, map });
        let mut guard = write_unpoisoned(&self.cache.by_mask);
        // Two threads may race to build the same mask; keep the first.
        let entry = guard.entry(mask).or_insert_with(|| {
            self.cache.builds.fetch_add(1, Ordering::Relaxed);
            Arc::clone(&idx)
        });
        Arc::clone(entry)
    }

    /// The cached sorted projection for the column sequence `cols` — the
    /// leapfrog join's trie view of the table (constant columns first, then
    /// one column per join variable in global order). Built on first use
    /// and `Arc`-shared, exactly like [`ViewTable::index_for_mask`]:
    /// repeated evaluations over the same table pay each sort once, and
    /// every build ticks the same [`ViewTable::index_builds`] counter.
    pub fn sorted_index_for_order(&self, cols: &[usize]) -> Arc<ViewSortedIndex> {
        debug_assert!(cols.iter().all(|&c| c < self.arity), "column out of range");
        {
            let guard = read_unpoisoned(&self.cache.by_order);
            if let Some(idx) = guard.get(cols) {
                return Arc::clone(idx);
            }
        }
        let mut rows: Vec<u32> = (0..self.len() as u32).collect();
        rows.sort_unstable_by(|&a, &b| {
            let (ra, rb) = (self.row(a as usize), self.row(b as usize));
            for &c in cols {
                match ra[c].cmp(&rb[c]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            a.cmp(&b)
        });
        let idx = Arc::new(ViewSortedIndex {
            cols: cols.to_vec(),
            rows,
        });
        let mut guard = write_unpoisoned(&self.cache.by_order);
        // Two threads may race to build the same order; keep the first.
        let entry = guard.entry(cols.to_vec()).or_insert_with(|| {
            self.cache.builds.fetch_add(1, Ordering::Relaxed);
            Arc::clone(&idx)
        });
        Arc::clone(entry)
    }

    /// How many resident indexes this table has built so far — one per
    /// probed hash mask or sorted column sequence, **not** one per
    /// evaluator call. Tests and benches use this to assert that the
    /// caches actually carry across calls.
    pub fn index_builds(&self) -> usize {
        self.cache.builds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ViewTable {
        ViewTable::from_rows(
            2,
            vec![
                vec![Id(1), Id(10)],
                vec![Id(2), Id(10)],
                vec![Id(1), Id(20)],
                vec![Id(1), Id(10)], // dup
            ],
        )
    }

    #[test]
    fn construction_dedups() {
        let t = table();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell_count(), 6);
    }

    #[test]
    fn row_access_and_iteration() {
        let t = table();
        let rows: Vec<&[Id]> = t.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(t.row(0), rows[0]);
    }

    #[test]
    fn index_groups_rows() {
        let t = table();
        let idx = t.index_for_mask(1 << 1);
        assert_eq!(idx.cols(), &[1]);
        assert_eq!(idx.rows_for(&[Id(10)]).len(), 2);
        assert_eq!(idx.rows_for(&[Id(20)]).len(), 1);
        assert!(idx.rows_for(&[Id(99)]).is_empty());
        let idx2 = t.index_for_mask(0b11);
        assert_eq!(idx2.key_count(), 3);
    }

    #[test]
    fn index_cache_builds_once_per_mask() {
        let t = table();
        assert_eq!(t.index_builds(), 0);
        let a = t.index_for_mask(1);
        let b = t.index_for_mask(1);
        assert!(Arc::ptr_eq(&a, &b), "same mask shares one index");
        assert_eq!(t.index_builds(), 1);
        t.index_for_mask(0b10);
        assert_eq!(t.index_builds(), 2);
        t.index_for_mask(1);
        assert_eq!(t.index_builds(), 2, "cache hit is not a build");
    }

    #[test]
    fn sorted_index_orders_and_narrows() {
        let t = table();
        let idx = t.sorted_index_for_order(&[1, 0]);
        assert_eq!(idx.cols(), &[1, 0]);
        let sorted: Vec<Vec<Id>> = idx
            .rows()
            .iter()
            .map(|&r| {
                let row = t.row(r as usize);
                vec![row[1], row[0]]
            })
            .collect();
        let mut want = sorted.clone();
        want.sort();
        assert_eq!(sorted, want, "rows come out in column order");
        let (lo, hi) = idx.prefix_range(&t, &[Id(10)]);
        assert_eq!(hi - lo, 2);
        let (lo, hi) = idx.prefix_range(&t, &[Id(10), Id(2)]);
        assert_eq!(hi - lo, 1);
        let (lo, hi) = idx.prefix_range(&t, &[Id(99)]);
        assert_eq!(lo, hi);
    }

    #[test]
    fn sorted_index_builds_once_per_order() {
        let t = table();
        let a = t.sorted_index_for_order(&[0, 1]);
        let b = t.sorted_index_for_order(&[0, 1]);
        assert!(Arc::ptr_eq(&a, &b), "same order shares one index");
        assert_eq!(t.index_builds(), 1);
        t.sorted_index_for_order(&[1, 0]);
        assert_eq!(t.index_builds(), 2);
        t.index_for_mask(1);
        assert_eq!(
            t.index_builds(),
            3,
            "hash and sorted builds share a counter"
        );
    }

    #[test]
    fn clone_keeps_cache_warm() {
        let t = table();
        t.index_for_mask(1);
        let cl = t.clone();
        assert_eq!(cl.index_builds(), 1);
        cl.index_for_mask(1);
        assert_eq!(cl.index_builds(), 1, "clone reuses the built index");
    }
}
