//! Materialized view tables.

use rdf_model::{FxHashMap, Id};

use crate::answers::Answers;

/// A materialized view: a fixed-arity table of id tuples, stored flat.
///
/// Hash indexes over arbitrary column subsets are built on demand and
/// cached; rewriting evaluation probes them for join lookups.
#[derive(Debug, Clone, Default)]
pub struct ViewTable {
    arity: usize,
    /// Row-major storage: `data[r * arity .. (r + 1) * arity]` is row `r`.
    data: Vec<Id>,
}

impl ViewTable {
    /// Builds a table from answers (already deduplicated).
    pub fn from_answers(arity: usize, answers: Answers) -> Self {
        let tuples = answers.into_tuples();
        let mut data = Vec::with_capacity(tuples.len() * arity);
        for t in &tuples {
            debug_assert_eq!(t.len(), arity);
            data.extend_from_slice(t);
        }
        Self { arity, data }
    }

    /// Builds a table from raw rows (deduplicating).
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Vec<Id>>) -> Self {
        Self::from_answers(arity, Answers::from_tuples(arity, rows))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows. A zero-arity table (boolean view) cannot encode its
    /// row count in `data` and reports 0; such views are degenerate and not
    /// produced by the selection pipeline.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `r`-th row.
    pub fn row(&self, r: usize) -> &[Id] {
        &self.data[r * self.arity..(r + 1) * self.arity]
    }

    /// Iterates rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Id]> {
        self.data.chunks_exact(self.arity.max(1))
    }

    /// Size in tuples × columns (a proxy for storage bytes before width
    /// weighting).
    pub fn cell_count(&self) -> usize {
        self.data.len()
    }

    /// Builds a hash index mapping the values of `cols` to row numbers.
    pub fn build_index(&self, cols: &[usize]) -> FxHashMap<Vec<Id>, Vec<usize>> {
        let mut idx: FxHashMap<Vec<Id>, Vec<usize>> = FxHashMap::default();
        for r in 0..self.len() {
            let row = self.row(r);
            let key: Vec<Id> = cols.iter().map(|&c| row[c]).collect();
            idx.entry(key).or_default().push(r);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ViewTable {
        ViewTable::from_rows(
            2,
            vec![
                vec![Id(1), Id(10)],
                vec![Id(2), Id(10)],
                vec![Id(1), Id(20)],
                vec![Id(1), Id(10)], // dup
            ],
        )
    }

    #[test]
    fn construction_dedups() {
        let t = table();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell_count(), 6);
    }

    #[test]
    fn row_access_and_iteration() {
        let t = table();
        let rows: Vec<&[Id]> = t.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(t.row(0), rows[0]);
    }

    #[test]
    fn index_groups_rows() {
        let t = table();
        let idx = t.build_index(&[1]);
        assert_eq!(idx[&vec![Id(10)]].len(), 2);
        assert_eq!(idx[&vec![Id(20)]].len(), 1);
        let idx2 = t.build_index(&[0, 1]);
        assert_eq!(idx2.len(), 3);
    }
}
