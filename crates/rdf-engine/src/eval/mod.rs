//! The conjunctive-query evaluator.
//!
//! A single join core serves both query shapes the paper needs: CQs over
//! the triple table (atoms answered through the store's six permutation
//! indexes) and rewritings over materialized views (atoms answered through
//! the tables' cached hash indexes). The default engine is the *compiled*
//! core in [`compiled`]: each query is compiled once into dense
//! variable slots and per-atom access paths, atoms iterate directly over
//! `Arc`-shared sorted index ranges, the join order is picked adaptively
//! per depth from bound-prefix `match_count`s, and all working memory
//! (bindings frame, trail, key buffers, output staging) comes from a
//! thread-local [`scratch`] pool so the inner loop performs no per-row
//! heap allocation.
//!
//! Cyclic queries (triangles, diamonds, k-cycles) are routed to the
//! worst-case-optimal leapfrog triejoin in [`wcoj`] instead: it joins one
//! *variable* at a time by multi-way sorted intersection over the same
//! permutation indexes, never materializing the binary-join intermediates
//! that blow up on cyclic shapes. The routing decision — a GYO
//! ear-removal acyclicity test — is adaptive per query
//! ([`EngineChoice::Auto`], the default) and observable through
//! [`EvalStats::engine`]; [`EvalOptions::wcoj`] and
//! [`EvalOptions::compiled`] force either core.
//!
//! The pre-compiled backtracking core — which collected a fresh
//! `Vec<Triple>` of matches at every recursion node and kept bindings in a
//! hash map — is preserved verbatim in [`legacy`] as the comparison
//! baseline: benches report the compiled core's speedup against it, and
//! differential tests check answer equality against its full-scan mode
//! (the "plain clustered triple table" baseline of the paper's Figure 8).

mod compiled;
mod legacy;
pub(crate) mod scratch;
mod wcoj;

use rdf_model::{FxHashSet, Id, TripleStore};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, UnionQuery};

use crate::answers::Answers;
use crate::view_table::ViewTable;

/// One rewriting atom: a view table applied to argument terms. Constants
/// encode selections; repeated variables encode joins.
#[derive(Debug, Clone)]
pub struct ViewAtom<'a> {
    /// The materialized view being scanned.
    pub table: &'a ViewTable,
    /// One term per view head column.
    pub args: Vec<QTerm>,
}

/// Which join core actually answered a query (recorded in [`EvalStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Pre-compiled core over full scans (the Figure-8 baseline).
    Scan,
    /// Pre-compiled collect-per-node core with index lookups.
    Legacy,
    /// Compiled index-native backtracking core.
    Compiled,
    /// Worst-case-optimal leapfrog triejoin.
    Wcoj,
}

impl Engine {
    /// Stable lowercase name (bench/CI labels).
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Scan => "scan",
            Engine::Legacy => "legacy",
            Engine::Compiled => "compiled",
            Engine::Wcoj => "wcoj",
        }
    }
}

/// Per-call evaluation statistics: which engine ran, and — for the
/// leapfrog engine — how many galloping seeks it performed and how many
/// (pre-dedup) head tuples it emitted. Benches and routing tests assert
/// against these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// The core that answered the call.
    pub engine: Engine,
    /// Leapfrog galloping seeks (0 for the other engines).
    pub lf_seeks: u64,
    /// Head tuples emitted by the leapfrog executor before deduplication
    /// (0 for the other engines).
    pub lf_emitted: u64,
}

impl EvalStats {
    fn new(engine: Engine) -> Self {
        Self {
            engine,
            lf_seeks: 0,
            lf_emitted: 0,
        }
    }
}

/// Engine choice for the index-native path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// Adaptive (the default): cyclic queries (GYO ear-removal test on the
    /// atom hypergraph) run the leapfrog triejoin, acyclic ones the
    /// backtracking core.
    #[default]
    Auto,
    /// Always the compiled backtracking core.
    Compiled,
    /// Always the leapfrog triejoin.
    Wcoj,
}

/// Evaluation options: which join core answers the query.
///
/// | `use_indexes` | `legacy` | engine |
/// |---|---|---|
/// | `true`  | `false` | index-native: [`EngineChoice`] picks compiled vs leapfrog |
/// | `true`  | `true`  | pre-compiled collect-per-node core, indexed |
/// | `false` | any     | pre-compiled core over full scans (Figure 8 baseline) |
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// When false, triple-table atoms are answered by filtering full scans
    /// instead of index range lookups — the "plain clustered triple table"
    /// baseline of the paper's Figure 8 configurations.
    pub use_indexes: bool,
    /// When true, run the pre-compiled backtracking core (hash-map
    /// bindings, matches collected per recursion node). Kept as the
    /// measured baseline the compiled core's speedup is reported against.
    pub legacy: bool,
    /// Which index-native core runs when `use_indexes && !legacy`:
    /// adaptive by default, forceable for benches and differential tests.
    pub engine: EngineChoice,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            use_indexes: true,
            legacy: false,
            engine: EngineChoice::Auto,
        }
    }
}

impl EvalOptions {
    /// The full-scan baseline: the pre-compiled core filtering linear
    /// scans (no permutation-index lookups at match time).
    pub fn scan_baseline() -> Self {
        Self {
            use_indexes: false,
            legacy: true,
            engine: EngineChoice::Auto,
        }
    }

    /// The pre-compiled collect-per-node core with index lookups — the
    /// engine every hot path ran through before the compiled core landed.
    pub fn legacy_indexed() -> Self {
        Self {
            use_indexes: true,
            legacy: true,
            engine: EngineChoice::Auto,
        }
    }

    /// Force the compiled backtracking core (no adaptive routing).
    pub fn compiled() -> Self {
        Self {
            engine: EngineChoice::Compiled,
            ..Self::default()
        }
    }

    /// Force the worst-case-optimal leapfrog triejoin.
    pub fn wcoj() -> Self {
        Self {
            engine: EngineChoice::Wcoj,
            ..Self::default()
        }
    }
}

/// Evaluates a conjunctive query over the triple table.
pub fn evaluate(store: &TripleStore, q: &ConjunctiveQuery) -> Answers {
    evaluate_with(store, q, &EvalOptions::default())
}

/// Evaluates a conjunctive query with explicit options.
pub fn evaluate_with(store: &TripleStore, q: &ConjunctiveQuery, opts: &EvalOptions) -> Answers {
    evaluate_with_stats(store, q, opts).0
}

/// Evaluates a conjunctive query with explicit options, also returning
/// which engine ran (and its leapfrog counters) — the observable the
/// adaptive-routing tests and the cyclic bench tier assert on.
pub fn evaluate_with_stats(
    store: &TripleStore,
    q: &ConjunctiveQuery,
    opts: &EvalOptions,
) -> (Answers, EvalStats) {
    let atoms: Vec<EvalAtom> = q
        .atoms
        .iter()
        .map(|a| EvalAtom::Store { atom: *a })
        .collect();
    run_with(store, atoms, &q.head, opts)
}

/// Evaluates a union of conjunctive queries (set-union of branch answers).
pub fn evaluate_union(store: &TripleStore, ucq: &UnionQuery) -> Answers {
    let arity = ucq.branches().first().map_or(0, |b| b.head.len());
    let mut set: FxHashSet<Vec<Id>> = FxHashSet::default();
    for branch in ucq.branches() {
        set.extend(evaluate(store, branch).into_tuples());
    }
    Answers::from_set(arity, set)
}

/// One atom of a mixed evaluation: a triple-table atom or a view scan.
///
/// This is the shape of a set-at-a-time delta join (`rdf_engine::maintain`):
/// one atom position ranges over the Δ set — materialized as a small
/// 3-column [`ViewTable`] and probed through its cached hash indexes —
/// while every other atom ranges over the store.
#[derive(Debug, Clone)]
pub enum MixedAtom<'a> {
    /// An atom answered from the triple store's permutation indexes.
    Store(Atom),
    /// An atom answered from a materialized table.
    View(ViewAtom<'a>),
}

/// Evaluates a conjunctive query whose atoms mix triple-table scans and
/// view-table scans, sharing the single join core. View tables are probed
/// through their resident hash-index caches, so repeated calls against the
/// same tables (a maintenance batch's per-atom-position delta joins, a
/// served workload's repeated plans) build each index **once**.
pub fn evaluate_mixed(store: &TripleStore, atoms: &[MixedAtom<'_>], head: &[QTerm]) -> Answers {
    evaluate_mixed_stats(store, atoms, head).0
}

/// [`evaluate_mixed`] with the engine decision and leapfrog counters
/// surfaced — what the deployment layer records per executed plan branch.
pub fn evaluate_mixed_stats(
    store: &TripleStore,
    atoms: &[MixedAtom<'_>],
    head: &[QTerm],
) -> (Answers, EvalStats) {
    let eval_atoms: Vec<EvalAtom> = atoms
        .iter()
        .map(|ma| match ma {
            MixedAtom::Store(atom) => EvalAtom::Store { atom: *atom },
            MixedAtom::View(va) => {
                assert_eq!(va.args.len(), va.table.arity(), "view atom arity mismatch");
                EvalAtom::View {
                    table: va.table,
                    args: va.args.clone(),
                }
            }
        })
        .collect();
    run_with(store, eval_atoms, head, &EvalOptions::default())
}

/// Evaluates a rewriting: a conjunctive query whose atoms are view scans.
pub fn evaluate_over_views(atoms: &[ViewAtom<'_>], head: &[QTerm]) -> Answers {
    let eval_atoms: Vec<EvalAtom> = atoms
        .iter()
        .map(|va| {
            assert_eq!(va.args.len(), va.table.arity(), "view atom arity mismatch");
            EvalAtom::View {
                table: va.table,
                args: va.args.clone(),
            }
        })
        .collect();
    // The store is unused for pure view rewritings; an empty one satisfies
    // the evaluator's signature.
    thread_local! {
        static EMPTY: TripleStore = TripleStore::new();
    }
    EMPTY.with(|store| run_with(store, eval_atoms, head, &EvalOptions::default()).0)
}

/// The evaluator-internal atom form shared by both cores.
pub(crate) enum EvalAtom<'a> {
    Store {
        atom: Atom,
    },
    View {
        table: &'a ViewTable,
        args: Vec<QTerm>,
    },
}

fn run_with(
    store: &TripleStore,
    atoms: Vec<EvalAtom>,
    head: &[QTerm],
    opts: &EvalOptions,
) -> (Answers, EvalStats) {
    if opts.legacy || !opts.use_indexes {
        let engine = if opts.use_indexes {
            Engine::Legacy
        } else {
            Engine::Scan
        };
        let answers = legacy::run(store, atoms, head, opts.use_indexes);
        return (answers, EvalStats::new(engine));
    }
    let plan = compiled::compile(atoms, head);
    let use_wcoj = match opts.engine {
        EngineChoice::Compiled => false,
        EngineChoice::Wcoj => true,
        // The adaptive selector: cyclic atom hypergraphs are where the
        // backtracking core enumerates intermediates a worst-case-optimal
        // join avoids; acyclic/selective shapes keep the compiled core.
        EngineChoice::Auto => wcoj::is_cyclic(&plan),
    };
    if use_wcoj {
        let mut stats = EvalStats::new(Engine::Wcoj);
        let answers = wcoj::execute(store, &plan, &mut stats);
        (answers, stats)
    } else {
        (
            compiled::execute(store, &plan),
            EvalStats::new(Engine::Compiled),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Dataset, Term};
    use rdf_query::parser::parse_query;
    use rdf_query::Var;

    fn family() -> Dataset {
        let mut db = Dataset::new();
        let t = |db: &mut Dataset, s: &str, p: &str, o: &str| {
            db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
        };
        // rembrandt painted nightWatch; picasso painted guernica;
        // rembrandt parentOf titus; titus painted portrait.
        t(&mut db, "rembrandt", "hasPainted", "nightWatch");
        t(&mut db, "picasso", "hasPainted", "guernica");
        t(&mut db, "rembrandt", "isParentOf", "titus");
        t(&mut db, "titus", "hasPainted", "portrait");
        db
    }

    #[test]
    fn single_atom_with_constant() {
        let mut db = family();
        let q = parse_query("q(X) :- t(X, <hasPainted>, <guernica>)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
        let picasso = db.dict().lookup_uri("picasso").unwrap();
        assert!(a.contains(&[picasso]));
    }

    #[test]
    fn join_across_atoms() {
        let mut db = family();
        let q = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
        let rembrandt = db.dict().lookup_uri("rembrandt").unwrap();
        let portrait = db.dict().lookup_uri("portrait").unwrap();
        assert!(a.contains(&[rembrandt, portrait]));
    }

    #[test]
    fn running_example_q1() {
        // Painters of a specific painting with a painter child.
        let mut db = family();
        let q = parse_query(
            "q1(X, Z) :- t(X, <hasPainted>, <nightWatch>), t(X, <isParentOf>, Y), \
             t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = family();
        db.insert_terms(
            Term::uri("narciss"),
            Term::uri("admires"),
            Term::uri("narciss"),
        );
        db.insert_terms(Term::uri("a"), Term::uri("admires"), Term::uri("b"));
        let q = parse_query("q(X) :- t(X, <admires>, X)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn variable_property() {
        let mut db = family();
        let q = parse_query("q(P) :- t(<rembrandt>, P, Y)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 2); // hasPainted, isParentOf
    }

    #[test]
    fn boolean_query_semantics() {
        let mut db = family();
        let yes = parse_query("q() :- t(X, <hasPainted>, Y)", db.dict_mut()).unwrap();
        assert_eq!(evaluate(db.store(), &yes.query).len(), 1);
        let no = parse_query("q() :- t(X, <hasEaten>, Y)", db.dict_mut()).unwrap();
        assert!(evaluate(db.store(), &no.query).is_empty());
    }

    #[test]
    fn set_semantics_dedup() {
        let mut db = family();
        // X has painted something: picasso appears once despite join paths.
        let q = parse_query("q(X) :- t(X, <hasPainted>, Y)", db.dict_mut()).unwrap();
        let a = evaluate(db.store(), &q.query);
        assert_eq!(a.len(), 3); // rembrandt, picasso, titus
    }

    #[test]
    fn union_evaluation() {
        let mut db = family();
        let q1 = parse_query("q(X) :- t(X, <hasPainted>, <guernica>)", db.dict_mut()).unwrap();
        let q2 = parse_query("q(X) :- t(X, <isParentOf>, Y)", db.dict_mut()).unwrap();
        let mut u = UnionQuery::new();
        u.push(q1.query);
        u.push(q2.query);
        let a = evaluate_union(db.store(), &u);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn view_rewriting_equals_direct() {
        use crate::materialize;
        let mut db = family();
        // Views: v1(X,Y) = parentOf pairs; v2(Y,Z) = painted pairs.
        let v1 = parse_query("v1(X, Y) :- t(X, <isParentOf>, Y)", db.dict_mut()).unwrap();
        let v2 = parse_query("v2(Y, Z) :- t(Y, <hasPainted>, Z)", db.dict_mut()).unwrap();
        let t1 = materialize(db.store(), &v1.query);
        let t2 = materialize(db.store(), &v2.query);
        // Rewriting r(X,Z) :- v1(X,Y), v2(Y,Z).
        let x = Var(0);
        let y = Var(1);
        let z = Var(2);
        let atoms = vec![
            ViewAtom {
                table: &t1,
                args: vec![x.into(), y.into()],
            },
            ViewAtom {
                table: &t2,
                args: vec![y.into(), z.into()],
            },
        ];
        let via_views = evaluate_over_views(&atoms, &[x.into(), z.into()]);
        let direct = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        assert_eq!(via_views, evaluate(db.store(), &direct.query));
    }

    #[test]
    fn view_rewriting_with_selection_constant() {
        use crate::materialize;
        let mut db = family();
        let v = parse_query("v(X, Y) :- t(X, <hasPainted>, Y)", db.dict_mut()).unwrap();
        let t = materialize(db.store(), &v.query);
        let guernica = db.dict().lookup_uri("guernica").unwrap();
        let x = Var(0);
        let atoms = vec![ViewAtom {
            table: &t,
            args: vec![x.into(), guernica.into()],
        }];
        let a = evaluate_over_views(&atoms, &[x.into()]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn mixed_atoms_equal_direct_evaluation() {
        // One atom answered from a 3-column delta-style table, the other
        // from the store: the mix must agree with pure store evaluation.
        let mut db = family();
        let q = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let delta = ViewTable::from_rows(3, db.store().triples().iter().map(|t| t.to_vec()));
        for i in 0..q.atoms.len() {
            let atoms: Vec<MixedAtom> = q
                .atoms
                .iter()
                .enumerate()
                .map(|(j, a)| {
                    if j == i {
                        MixedAtom::View(ViewAtom {
                            table: &delta,
                            args: a.terms().to_vec(),
                        })
                    } else {
                        MixedAtom::Store(*a)
                    }
                })
                .collect();
            let mixed = evaluate_mixed(db.store(), &atoms, &q.head);
            assert_eq!(mixed, evaluate(db.store(), &q), "delta at atom {i}");
        }
    }

    #[test]
    fn repeated_mixed_calls_reuse_view_indexes() {
        // The acceptance contract for the view-index caches: a
        // maintenance-style batch (several evaluate_mixed calls probing the
        // same delta table) builds each (mask, version) index once — not
        // once per call.
        let mut db = family();
        let q = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap()
        .query;
        let delta = ViewTable::from_rows(3, db.store().triples().iter().map(|t| t.to_vec()));
        let atoms: Vec<MixedAtom> = vec![
            MixedAtom::Store(q.atoms[0]),
            MixedAtom::View(ViewAtom {
                table: &delta,
                args: q.atoms[1].terms().to_vec(),
            }),
        ];
        let first = evaluate_mixed(db.store(), &atoms, &q.head);
        let builds_after_first = delta.index_builds();
        assert!(builds_after_first >= 1, "the probed mask built an index");
        for _ in 0..5 {
            assert_eq!(evaluate_mixed(db.store(), &atoms, &q.head), first);
        }
        assert_eq!(
            delta.index_builds(),
            builds_after_first,
            "repeated calls reuse the cached view indexes"
        );
    }

    #[test]
    fn scan_only_matches_indexed() {
        let mut db = family();
        let q = parse_query(
            "q(X, Z) :- t(X, <isParentOf>, Y), t(Y, <hasPainted>, Z)",
            db.dict_mut(),
        )
        .unwrap();
        let indexed = evaluate(db.store(), &q.query);
        let scanned = evaluate_with(db.store(), &q.query, &EvalOptions::scan_baseline());
        let legacy = evaluate_with(db.store(), &q.query, &EvalOptions::legacy_indexed());
        assert_eq!(indexed, scanned);
        assert_eq!(indexed, legacy);
    }

    #[test]
    fn cartesian_product_rewriting() {
        use crate::materialize;
        let mut db = family();
        let v = parse_query("v(X) :- t(X, <isParentOf>, Y)", db.dict_mut()).unwrap();
        let t = materialize(db.store(), &v.query);
        let a = Var(0);
        let b = Var(1);
        let atoms = vec![
            ViewAtom {
                table: &t,
                args: vec![a.into()],
            },
            ViewAtom {
                table: &t,
                args: vec![b.into()],
            },
        ];
        let ans = evaluate_over_views(&atoms, &[a.into(), b.into()]);
        assert_eq!(ans.len(), 1); // 1×1 product
    }

    fn triangle_db() -> Dataset {
        let mut db = Dataset::new();
        let edge = |db: &mut Dataset, p: &str, s: &str, o: &str| {
            db.insert_terms(Term::uri(s), Term::uri(p), Term::uri(o));
        };
        // Two triangles sharing the edge b->c, plus dead-end edges.
        edge(&mut db, "e", "a", "b");
        edge(&mut db, "e", "b", "c");
        edge(&mut db, "e", "c", "a");
        edge(&mut db, "e", "a2", "b");
        edge(&mut db, "e", "c", "a2");
        edge(&mut db, "e", "a", "x");
        edge(&mut db, "e", "x", "y");
        db
    }

    fn triangle_query(db: &mut Dataset) -> ConjunctiveQuery {
        parse_query(
            "q(X, Y, Z) :- t(X, <e>, Y), t(Y, <e>, Z), t(Z, <e>, X)",
            db.dict_mut(),
        )
        .unwrap()
        .query
    }

    #[test]
    fn adaptive_selector_routes_cyclic_to_wcoj() {
        let mut db = triangle_db();
        let q = triangle_query(&mut db);
        let (a, stats) = evaluate_with_stats(db.store(), &q, &EvalOptions::default());
        assert_eq!(stats.engine, Engine::Wcoj, "triangle routes to leapfrog");
        assert!(stats.lf_seeks > 0, "leapfrog actually sought");
        assert_eq!(stats.lf_emitted, a.len() as u64, "distinct emits");
        assert_eq!(a.len(), 6, "two triangles, three rotations each");
    }

    #[test]
    fn adaptive_selector_routes_acyclic_to_compiled() {
        let mut db = triangle_db();
        let q = parse_query("q(X, Z) :- t(X, <e>, Y), t(Y, <e>, Z)", db.dict_mut())
            .unwrap()
            .query;
        let (_, stats) = evaluate_with_stats(db.store(), &q, &EvalOptions::default());
        assert_eq!(
            stats.engine,
            Engine::Compiled,
            "chain keeps the compiled core"
        );
        assert_eq!((stats.lf_seeks, stats.lf_emitted), (0, 0));
    }

    #[test]
    fn forced_engines_report_themselves() {
        let mut db = triangle_db();
        let q = parse_query("q(X, Z) :- t(X, <e>, Y), t(Y, <e>, Z)", db.dict_mut())
            .unwrap()
            .query;
        let engines = [
            (EvalOptions::wcoj(), Engine::Wcoj),
            (EvalOptions::compiled(), Engine::Compiled),
            (EvalOptions::legacy_indexed(), Engine::Legacy),
            (EvalOptions::scan_baseline(), Engine::Scan),
        ];
        let want = evaluate(db.store(), &q);
        for (opts, engine) in engines {
            let (a, stats) = evaluate_with_stats(db.store(), &q, &opts);
            assert_eq!(stats.engine, engine);
            assert_eq!(a, want, "{} agrees on the chain", engine.as_str());
        }
    }

    #[test]
    fn wcoj_matches_other_engines_on_cyclic_shapes() {
        let mut db = triangle_db();
        let q = triangle_query(&mut db);
        let want = evaluate_with(db.store(), &q, &EvalOptions::scan_baseline());
        assert_eq!(evaluate_with(db.store(), &q, &EvalOptions::wcoj()), want);
        assert_eq!(
            evaluate_with(db.store(), &q, &EvalOptions::compiled()),
            want
        );
        assert_eq!(
            evaluate_with(db.store(), &q, &EvalOptions::legacy_indexed()),
            want
        );
    }

    #[test]
    fn wcoj_handles_constants_repeats_and_products() {
        let mut db = triangle_db();
        db.insert_terms(Term::uri("n"), Term::uri("e"), Term::uri("n"));
        let queries = [
            // Anchored triangle corner.
            "q(Y, Z) :- t(<a>, <e>, Y), t(Y, <e>, Z), t(Z, <e>, <a>)",
            // Repeated variable inside an atom.
            "q(X) :- t(X, <e>, X)",
            // Cartesian product of two edges.
            "q(X, Y, U, V) :- t(X, <e>, Y), t(U, <e>, V)",
            // Boolean triangle.
            "q() :- t(X, <e>, Y), t(Y, <e>, Z), t(Z, <e>, X)",
            // Ground atom.
            "q(X) :- t(<a>, <e>, <b>), t(X, <e>, X)",
        ];
        for text in queries {
            let q = parse_query(text, db.dict_mut()).unwrap().query;
            let want = evaluate_with(db.store(), &q, &EvalOptions::scan_baseline());
            assert_eq!(
                evaluate_with(db.store(), &q, &EvalOptions::wcoj()),
                want,
                "wcoj parity on {text}"
            );
        }
    }

    #[test]
    fn wcoj_over_view_tables_matches_compiled() {
        use crate::materialize;
        let mut db = triangle_db();
        let v = parse_query("v(X, Y) :- t(X, <e>, Y)", db.dict_mut()).unwrap();
        let t = materialize(db.store(), &v.query);
        let e = db.dict().lookup_uri("e").unwrap();
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let atoms: Vec<MixedAtom> = vec![
            MixedAtom::View(ViewAtom {
                table: &t,
                args: vec![x.into(), y.into()],
            }),
            MixedAtom::View(ViewAtom {
                table: &t,
                args: vec![y.into(), z.into()],
            }),
            MixedAtom::Store(Atom([z.into(), QTerm::Const(e), x.into()])),
        ];
        let head = [x.into(), y.into(), z.into()];
        let (a, stats) = evaluate_mixed_stats(db.store(), &atoms, &head);
        assert_eq!(stats.engine, Engine::Wcoj, "mixed triangle routes to wcoj");
        let direct = {
            let mut db2 = triangle_db();
            let q = triangle_query(&mut db2);
            evaluate(db2.store(), &q)
        };
        assert_eq!(a, direct);
        assert!(
            t.index_builds() >= 1,
            "view atoms built sorted trie projections"
        );
        let builds = t.index_builds();
        let (b, _) = evaluate_mixed_stats(db.store(), &atoms, &head);
        assert_eq!(b, direct);
        assert_eq!(t.index_builds(), builds, "sorted projections are reused");
    }

    #[test]
    fn constant_head_terms_survive_compilation() {
        let mut db = family();
        let titus = db.dict().lookup_uri("titus").unwrap();
        // Head mixes a constant (reformulation rules 5–6 produce these)
        // with a variable.
        let q = parse_query("q(X) :- t(X, <isParentOf>, Y)", db.dict_mut())
            .unwrap()
            .query;
        let head = vec![QTerm::Const(titus), q.head[0]];
        let q2 = ConjunctiveQuery::new(head, q.atoms);
        let a = evaluate(db.store(), &q2);
        assert_eq!(a.len(), 1);
        let rembrandt = db.dict().lookup_uri("rembrandt").unwrap();
        assert!(a.contains(&[titus, rembrandt]));
    }
}
