//! The worst-case-optimal leapfrog-triejoin executor.
//!
//! The backtracking core ([`super::compiled`]) expands one *atom* at a
//! time: at each depth it iterates every tuple of the chosen atom's range,
//! binding all of that atom's fresh variables at once. On cyclic queries
//! (triangles, diamonds, k-cycles) that enumerates intermediate joins a
//! worst-case-optimal algorithm never materializes. This module joins one
//! *variable* at a time instead — leapfrog triejoin:
//!
//! * a **global variable order** is fixed up front (highest atom degree
//!   first, smallest atom extent as the tie-break), giving every atom a
//!   trie view of its matches: constants first, then its variables in
//!   global order;
//! * store atoms get that trie for free from a permutation index —
//!   [`IndexOrder::for_groups`] picks the order whose sort sequence lists
//!   the constant columns and then each variable's column(s) consecutively,
//!   and [`TripleStore::range`] narrows to the constant prefix; view atoms
//!   use a cached sorted-row projection
//!   ([`ViewTable::sorted_index_for_order`]) the same way;
//! * at each level, every atom containing the variable exposes a sorted
//!   run of candidate values; the **leapfrog** loop repeatedly galloping-
//!   seeks the lagging cursors up to the current maximum until all agree,
//!   binds the value, narrows each participant's window to its value-run,
//!   and descends — multi-way sorted intersection with `O(log n)` seeks;
//! * an atom whose variable occurs in several columns (`t(X, p, X)`) is
//!   pre-filtered once into an owned buffer (the chosen permutation keeps
//!   the filtered rows sorted on the shared value), and a fully-ground
//!   atom degenerates to a setup-time membership test.
//!
//! All mutable cursor state — the per-cursor `[lo, hi)` range stacks and
//! positions — lives in the pooled [`EvalScratch`], so the seek loop
//! allocates nothing.
//!
//! [`is_cyclic`] is the adaptive selector's test: a GYO ear-removal pass
//! over the atoms' variable sets. Acyclic queries keep the backtracking
//! core (its adaptive ordering is strictly better on selective chains);
//! cyclic ones route here.

use std::sync::Arc;

use rdf_model::{Id, IndexOrder, IndexRange, StorePattern, Triple, TripleStore};

use super::compiled::{CAtom, CTerm, CompiledPlan};
use super::scratch::EvalScratch;
use super::EvalStats;
use crate::answers::Answers;
use crate::view_table::{ViewSortedIndex, ViewTable};

/// GYO ear-removal α-acyclicity test over the plan's atom variable sets:
/// repeatedly drop variables occurring in a single atom and atoms whose
/// variable set is contained in another's; the query is cyclic iff a core
/// survives. (Triangles, diamonds and k-cycles survive; chains, stars and
/// every ≤2-atom query reduce to nothing.)
pub(super) fn is_cyclic(plan: &CompiledPlan) -> bool {
    let mut sets: Vec<Vec<u32>> = plan
        .atoms
        .iter()
        .map(|a| {
            let mut s: Vec<u32> = a
                .terms()
                .iter()
                .filter_map(|t| match t {
                    CTerm::Slot(v) => Some(*v),
                    CTerm::Const(_) => None,
                })
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .filter(|s| !s.is_empty())
        .collect();
    loop {
        let mut changed = false;
        // Drop variables that occur in exactly one atom.
        let mut occ: rdf_model::FxHashMap<u32, u32> = rdf_model::FxHashMap::default();
        for s in &sets {
            for &v in s {
                *occ.entry(v).or_insert(0) += 1;
            }
        }
        for s in &mut sets {
            let before = s.len();
            s.retain(|v| occ[v] > 1);
            changed |= s.len() != before;
        }
        let before = sets.len();
        sets.retain(|s| !s.is_empty());
        changed |= sets.len() != before;
        // Drop atoms subsumed by another atom (one survivor per duplicate
        // set: equal sets only remove the higher index).
        for i in (0..sets.len()).rev() {
            let subsumed = sets
                .iter()
                .enumerate()
                .any(|(j, t)| j != i && subset(&sets[i], t) && (sets[i] != *t || j < i));
            if subsumed {
                sets.remove(i);
                changed = true;
            }
        }
        if !changed {
            return !sets.is_empty();
        }
    }
}

/// Whether sorted `a` ⊆ sorted `b`.
fn subset(a: &[u32], b: &[u32]) -> bool {
    let mut bi = b.iter();
    a.iter().all(|x| bi.any(|y| y == x))
}

/// Where one trie cursor reads its rows from.
enum CursorData<'a> {
    /// A store atom's permutation-index range (positions are
    /// range-relative).
    Tri(IndexRange),
    /// A store atom with an intra-atom repeated variable, pre-filtered.
    TriOwned(Vec<Triple>),
    /// A view atom's sorted-row projection (positions are absolute into
    /// the projection; the constant prefix fixes the initial window).
    Rows {
        table: &'a ViewTable,
        idx: Arc<ViewSortedIndex>,
    },
    /// A view atom with an intra-atom repeated variable, pre-filtered.
    RowsOwned { table: &'a ViewTable, ids: Vec<u32> },
}

/// One atom's trie cursor: its data source, its (level, value-column)
/// sequence in global variable order, and where its range stack lives in
/// the scratch pool.
struct Cursor<'a> {
    data: CursorData<'a>,
    /// `(global level, value column)` per trie depth, level-ascending.
    levels: Vec<(u32, usize)>,
    /// Offset of this cursor's `[lo, hi)` stack in `EvalScratch::lf_ranges`
    /// (entry `roff + d` is the window at trie depth `d`).
    roff: usize,
    /// The depth-0 window.
    init: [u32; 2],
}

/// Immutable per-call context: cursors, per-level participants, the
/// variable order and the head template.
struct Ctx<'a, 'p> {
    cursors: Vec<Cursor<'a>>,
    /// Per level: `(cursor, trie depth)` of every atom containing the
    /// level's variable.
    parts: Vec<Vec<(u32, u32)>>,
    /// The variable slot joined at each level.
    slots: Vec<u32>,
    head: &'p [CTerm],
}

impl Ctx<'_, '_> {
    /// The value at `pos` in cursor `c`'s column `col`.
    #[inline]
    fn value(&self, c: usize, col: usize, pos: u32) -> Id {
        match &self.cursors[c].data {
            CursorData::Tri(r) => r.as_slice()[pos as usize][col],
            CursorData::TriOwned(v) => v[pos as usize][col],
            CursorData::Rows { table, idx } => table.row(idx.rows()[pos as usize] as usize)[col],
            CursorData::RowsOwned { table, ids } => table.row(ids[pos as usize] as usize)[col],
        }
    }

    /// Galloping seek: the first position in `[from, hi)` whose value is
    /// `>= target` (`strict` = false) or `> target` (`strict` = true).
    /// Exponential probe out of `from`, then binary search the bracket —
    /// `O(log d)` in the distance `d` advanced, the leapfrog guarantee.
    fn seek(&self, c: usize, col: usize, from: u32, hi: u32, target: Id, strict: bool) -> u32 {
        let below = |v: Id| if strict { v <= target } else { v < target };
        if from >= hi || !below(self.value(c, col, from)) {
            return from;
        }
        let mut lo = from; // invariant: value(lo) is below target
        let mut bound = hi;
        let mut step = 1u32;
        while let Some(p) = lo.checked_add(step).filter(|&p| p < hi) {
            if below(self.value(c, col, p)) {
                lo = p;
                step = step.saturating_mul(2);
            } else {
                bound = p;
                break;
            }
        }
        let mut l = lo + 1;
        let mut h = bound;
        while l < h {
            let m = l + (h - l) / 2;
            if below(self.value(c, col, m)) {
                l = m + 1;
            } else {
                h = m;
            }
        }
        l
    }
}

/// `StorePattern` of an atom's constant columns only.
fn const_pattern(terms: &[CTerm; 3]) -> StorePattern {
    let get = |t: CTerm| match t {
        CTerm::Const(c) => Some(c),
        CTerm::Slot(_) => None,
    };
    StorePattern::new(get(terms[0]), get(terms[1]), get(terms[2]))
}

fn empty(plan: &CompiledPlan) -> Answers {
    Answers::from_distinct(plan.head.len(), Vec::new())
}

/// Runs a compiled plan with the leapfrog executor. `stats.engine` is set
/// by the caller; seek and emit counters accumulate here.
pub(super) fn execute(store: &TripleStore, plan: &CompiledPlan, stats: &mut EvalStats) -> Answers {
    // -- Global variable order: degree desc, extent asc, slot asc. --------
    let n_slots = plan.n_slots;
    let mut degree = vec![0u32; n_slots];
    let mut extent = vec![usize::MAX; n_slots];
    // Per atom: its distinct slots with their column positions.
    let mut atom_groups: Vec<Vec<(u32, Vec<usize>)>> = Vec::with_capacity(plan.atoms.len());
    for atom in &plan.atoms {
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        for (col, t) in atom.terms().iter().enumerate() {
            if let CTerm::Slot(v) = t {
                match groups.iter_mut().find(|(s, _)| s == v) {
                    Some((_, cols)) => cols.push(col),
                    None => groups.push((*v, vec![col])),
                }
            }
        }
        let ext = match atom {
            CAtom::Store { terms } => store.match_count(&const_pattern(terms)),
            CAtom::View { table, .. } => table.len(),
        };
        for (v, _) in &groups {
            degree[*v as usize] += 1;
            extent[*v as usize] = extent[*v as usize].min(ext);
        }
        atom_groups.push(groups);
    }
    let mut slots: Vec<u32> = (0..n_slots as u32)
        .filter(|&v| degree[v as usize] > 0)
        .collect();
    slots.sort_by(|&a, &b| {
        degree[b as usize]
            .cmp(&degree[a as usize])
            .then(extent[a as usize].cmp(&extent[b as usize]))
            .then(a.cmp(&b))
    });
    let mut level_of = vec![u32::MAX; n_slots];
    for (l, &v) in slots.iter().enumerate() {
        level_of[v as usize] = l as u32;
    }

    // -- One trie cursor per non-ground atom. ------------------------------
    let mut cursors: Vec<Cursor> = Vec::new();
    for (ai, atom) in plan.atoms.iter().enumerate() {
        let mut groups = std::mem::take(&mut atom_groups[ai]);
        groups.sort_by_key(|(v, _)| level_of[*v as usize]);
        let needs_filter = groups.iter().any(|(_, cols)| cols.len() > 1);
        match atom {
            CAtom::Store { terms } => {
                if groups.is_empty() {
                    // Ground atom: a setup-time membership test.
                    if store.match_count(&const_pattern(terms)) == 0 {
                        return empty(plan);
                    }
                    continue;
                }
                let consts: Vec<usize> = (0..3)
                    .filter(|&c| matches!(terms[c], CTerm::Const(_)))
                    .collect();
                let mut order_groups: Vec<&[usize]> = Vec::new();
                if !consts.is_empty() {
                    order_groups.push(&consts);
                }
                for (_, cols) in &groups {
                    order_groups.push(cols.as_slice());
                }
                let idx_order = IndexOrder::for_groups(&order_groups)
                    // xlint: allow(X001, reason = "all six s/p/o column partitions have permutation indexes")
                    .expect("every ordered column partition has a permutation index");
                let perm = idx_order.perm();
                let key: Vec<Id> = perm[..consts.len()]
                    .iter()
                    .map(|&c| match terms[c] {
                        CTerm::Const(id) => id,
                        // xlint: allow(X001, reason = "perm lists the consts partition first by construction")
                        CTerm::Slot(_) => unreachable!("prefix columns are constants"),
                    })
                    .collect();
                let range = store.range(idx_order, &key);
                let mut levels = Vec::with_capacity(groups.len());
                let mut pos = consts.len();
                for (v, cols) in &groups {
                    levels.push((level_of[*v as usize], perm[pos]));
                    pos += cols.len();
                }
                let (data, init) = if needs_filter {
                    let rows: Vec<Triple> = range
                        .as_slice()
                        .iter()
                        .copied()
                        .filter(|t| {
                            groups
                                .iter()
                                .all(|(_, cols)| cols.iter().all(|&c| t[c] == t[cols[0]]))
                        })
                        .collect();
                    let len = rows.len() as u32;
                    (CursorData::TriOwned(rows), [0, len])
                } else {
                    let len = range.len() as u32;
                    (CursorData::Tri(range), [0, len])
                };
                cursors.push(Cursor {
                    data,
                    levels,
                    roff: 0,
                    init,
                });
            }
            CAtom::View { table, terms } => {
                let consts: Vec<(usize, Id)> = terms
                    .iter()
                    .enumerate()
                    .filter_map(|(c, t)| match t {
                        CTerm::Const(id) => Some((c, *id)),
                        CTerm::Slot(_) => None,
                    })
                    .collect();
                if groups.is_empty() {
                    let mut mask = 0u64;
                    let mut key = Vec::new();
                    for (c, id) in &consts {
                        mask |= 1 << c;
                        key.push(*id);
                    }
                    let present = if mask == 0 {
                        !table.is_empty()
                    } else {
                        !table.index_for_mask(mask).rows_for(&key).is_empty()
                    };
                    if !present {
                        return empty(plan);
                    }
                    continue;
                }
                let mut seq: Vec<usize> = consts.iter().map(|(c, _)| *c).collect();
                let mut levels = Vec::with_capacity(groups.len());
                for (v, cols) in &groups {
                    levels.push((level_of[*v as usize], cols[0]));
                    seq.extend(cols.iter().copied());
                }
                let idx = table.sorted_index_for_order(&seq);
                let key: Vec<Id> = consts.iter().map(|(_, id)| *id).collect();
                let (lo, hi) = idx.prefix_range(table, &key);
                let (data, init) = if needs_filter {
                    let ids: Vec<u32> = idx.rows()[lo..hi]
                        .iter()
                        .copied()
                        .filter(|&r| {
                            let row = table.row(r as usize);
                            groups
                                .iter()
                                .all(|(_, cols)| cols.iter().all(|&c| row[c] == row[cols[0]]))
                        })
                        .collect();
                    let len = ids.len() as u32;
                    (CursorData::RowsOwned { table, ids }, [0, len])
                } else {
                    (CursorData::Rows { table, idx }, [lo as u32, hi as u32])
                };
                cursors.push(Cursor {
                    data,
                    levels,
                    roff: 0,
                    init,
                });
            }
        }
    }
    if cursors.iter().any(|c| c.init[0] == c.init[1]) {
        return empty(plan);
    }

    // -- Range-stack offsets and per-level participants. -------------------
    let mut roff = 0usize;
    for cur in &mut cursors {
        cur.roff = roff;
        roff += cur.levels.len() + 1;
    }
    let mut parts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); slots.len()];
    for (ci, cur) in cursors.iter().enumerate() {
        for (d, &(lvl, _)) in cur.levels.iter().enumerate() {
            parts[lvl as usize].push((ci as u32, d as u32));
        }
    }
    debug_assert!(parts.iter().all(|p| !p.is_empty()));

    let mut s = EvalScratch::take(n_slots, plan.atoms.len());
    s.lf_ranges.clear();
    s.lf_ranges.resize(roff, [0, 0]);
    s.lf_pos.clear();
    s.lf_pos.resize(cursors.len(), 0);
    for cur in &cursors {
        s.lf_ranges[cur.roff] = cur.init;
    }
    let ctx = Ctx {
        cursors,
        parts,
        slots,
        head: &plan.head,
    };
    join(&ctx, &mut s, stats, 0);
    let answers = Answers::from_distinct(plan.head.len(), s.drain_out());
    s.release();
    answers
}

/// Joins one variable level: leapfrog the participants to agreement, bind,
/// narrow, descend, advance — until any participant exhausts its window.
fn join(ctx: &Ctx, s: &mut EvalScratch, stats: &mut EvalStats, level: usize) {
    if level == ctx.slots.len() {
        emit(ctx.head, s, stats);
        return;
    }
    let slot = ctx.slots[level] as usize;
    let parts = &ctx.parts[level];
    // Open every participant's window; the intersection starts at the
    // largest first value.
    let mut max = Id(0);
    for &(c, d) in parts {
        let cur = &ctx.cursors[c as usize];
        let [lo, hi] = s.lf_ranges[cur.roff + d as usize];
        if lo == hi {
            return;
        }
        s.lf_pos[c as usize] = lo;
        let v = ctx.value(c as usize, cur.levels[d as usize].1, lo);
        if v > max {
            max = v;
        }
    }
    loop {
        // Leapfrog: seek every lagging cursor up to `max`; a full pass
        // with no raise means all participants sit on `max`.
        let mut raised = false;
        for &(c, d) in parts {
            let cu = c as usize;
            let cur = &ctx.cursors[cu];
            let col = cur.levels[d as usize].1;
            let pos = s.lf_pos[cu];
            if ctx.value(cu, col, pos) < max {
                let hi = s.lf_ranges[cur.roff + d as usize][1];
                stats.lf_seeks += 1;
                let np = ctx.seek(cu, col, pos, hi, max, false);
                if np == hi {
                    return;
                }
                s.lf_pos[cu] = np;
                let v = ctx.value(cu, col, np);
                if v > max {
                    max = v;
                    raised = true;
                }
            }
        }
        if raised {
            continue;
        }
        // Agreement: bind the value, narrow each participant to its run.
        s.frame[slot] = Some(max);
        for &(c, d) in parts {
            let cu = c as usize;
            let cur = &ctx.cursors[cu];
            let roff = cur.roff + d as usize;
            let hi = s.lf_ranges[roff][1];
            stats.lf_seeks += 1;
            let end = ctx.seek(cu, cur.levels[d as usize].1, s.lf_pos[cu], hi, max, true);
            s.lf_ranges[roff + 1] = [s.lf_pos[cu], end];
        }
        join(ctx, s, stats, level + 1);
        s.frame[slot] = None;
        // Advance past the run; any exhaustion ends the level.
        max = Id(0);
        for &(c, d) in parts {
            let cu = c as usize;
            let cur = &ctx.cursors[cu];
            let roff = cur.roff + d as usize;
            let next = s.lf_ranges[roff + 1][1];
            if next == s.lf_ranges[roff][1] {
                return;
            }
            s.lf_pos[cu] = next;
            let v = ctx.value(cu, cur.levels[d as usize].1, next);
            if v > max {
                max = v;
            }
        }
    }
}

/// Emits the current head tuple into the output staging set.
fn emit(head: &[CTerm], s: &mut EvalScratch, stats: &mut EvalStats) {
    stats.lf_emitted += 1;
    s.tuple.clear();
    for t in head {
        s.tuple.push(match t {
            CTerm::Const(c) => *c,
            CTerm::Slot(slot) => {
                // xlint: allow(X001, reason = "compile() rejects unsafe queries, so head slots are bound at emit depth")
                s.frame[*slot as usize].expect("unsafe query: unbound head variable")
            }
        });
    }
    s.out.insert(&s.tuple);
}

#[cfg(test)]
mod tests {
    use super::super::compiled;
    use super::super::EvalAtom;
    use super::*;
    use rdf_query::{Atom, QTerm, Var};

    fn store_atoms(shape: &[[i64; 3]]) -> Vec<EvalAtom<'static>> {
        // Negative entries are constants, non-negative are variables.
        shape
            .iter()
            .map(|t| {
                let term = |x: i64| {
                    if x < 0 {
                        QTerm::Const(Id((-x) as u32))
                    } else {
                        QTerm::Var(Var(x as u32))
                    }
                };
                EvalAtom::Store {
                    atom: Atom([term(t[0]), term(t[1]), term(t[2])]),
                }
            })
            .collect()
    }

    fn cyclic(shape: &[[i64; 3]]) -> bool {
        let plan = compiled::compile(store_atoms(shape), &[]);
        is_cyclic(&plan)
    }

    #[test]
    fn gyo_classifies_shapes() {
        // Triangle: cyclic.
        assert!(cyclic(&[[0, -1, 1], [1, -2, 2], [2, -3, 0]]));
        // 4-cycle: cyclic.
        assert!(cyclic(&[[0, -1, 1], [1, -2, 2], [2, -3, 3], [3, -4, 0]]));
        // Diamond (two parallel 2-paths): cyclic.
        assert!(cyclic(&[[0, -1, 1], [1, -2, 3], [0, -3, 2], [2, -4, 3]]));
        // Chain: acyclic.
        assert!(!cyclic(&[[0, -1, 1], [1, -2, 2], [2, -3, 3]]));
        // Star: acyclic.
        assert!(!cyclic(&[[0, -1, 1], [0, -2, 2], [0, -3, 3]]));
        // Single atom, even with a repeated variable: acyclic.
        assert!(!cyclic(&[[0, -1, 0]]));
        // Two atoms always form an acyclic hypergraph.
        assert!(!cyclic(&[[0, -1, 1], [1, -2, 0]]));
        // Duplicate triangle atoms stay cyclic.
        assert!(cyclic(&[[0, -1, 1], [1, -2, 2], [2, -3, 0], [0, -1, 1],]));
        // Triangle with a pendant edge: still cyclic.
        assert!(cyclic(&[[0, -1, 1], [1, -2, 2], [2, -3, 0], [0, -4, 3],]));
        // Cartesian product of two edges: acyclic.
        assert!(!cyclic(&[[0, -1, 1], [2, -2, 3]]));
    }

    #[test]
    fn subset_on_sorted_slices() {
        assert!(subset(&[], &[1, 2]));
        assert!(subset(&[2], &[1, 2, 3]));
        assert!(subset(&[1, 3], &[1, 2, 3]));
        assert!(!subset(&[1, 4], &[1, 2, 3]));
        assert!(!subset(&[0], &[]));
    }
}
