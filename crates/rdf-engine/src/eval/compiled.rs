//! The compiled, index-native join core.
//!
//! [`compile`] turns a query into a [`CompiledPlan`] once: variables get
//! dense slot numbers (so the bindings frame is a flat vector plus an undo
//! trail, not a hash map) and every atom becomes a pre-resolved access
//! path. [`execute`] then runs a backtracking join in which
//!
//! * store atoms iterate **directly** over `Arc`-shared sorted index
//!   ranges ([`TripleStore::pattern_range`]) — no per-node `Vec<Triple>`
//!   materialization;
//! * view atoms probe the table's cached hash indexes
//!   ([`ViewTable::index_for_mask`]) and iterate row ids in place; a fully
//!   unbound view atom walks rows directly instead of collecting row ids;
//! * the atom order is chosen **adaptively per depth**: the atom with the
//!   smallest bound-prefix extent (`match_count` / index-bucket length)
//!   under the current bindings runs next, and a zero-extent atom prunes
//!   the subtree immediately;
//! * per-column bind/check ops are computed once per recursion node, so
//!   the per-row work is a handful of array reads — **no heap allocation
//!   in the inner loop** (frame, trail, keys and output staging all come
//!   from the pooled [`EvalScratch`]).

use rdf_model::{FxHashMap, Id, StorePattern, TripleStore};
use rdf_query::{QTerm, Var};

use super::scratch::{ColAction, EvalScratch};
use super::EvalAtom;
use crate::answers::Answers;
use crate::view_table::ViewTable;

/// A compiled term: a constant or a dense variable slot.
#[derive(Debug, Clone, Copy)]
pub(super) enum CTerm {
    Const(Id),
    Slot(u32),
}

/// A compiled atom: its access-path kind plus slot-resolved terms.
pub(super) enum CAtom<'a> {
    Store {
        terms: [CTerm; 3],
    },
    View {
        table: &'a ViewTable,
        terms: Vec<CTerm>,
    },
}

impl CAtom<'_> {
    /// The atom's terms as a slice, whichever access path it uses.
    pub(super) fn terms(&self) -> &[CTerm] {
        match self {
            CAtom::Store { terms } => terms,
            CAtom::View { terms, .. } => terms,
        }
    }
}

/// A query compiled for the index-native core — shared by the backtracking
/// executor here and the leapfrog executor in [`super::wcoj`].
pub(super) struct CompiledPlan<'a> {
    pub(super) atoms: Vec<CAtom<'a>>,
    pub(super) head: Vec<CTerm>,
    pub(super) n_slots: usize,
}

/// Compiles atoms and head into dense slots and access paths.
pub(super) fn compile<'a>(atoms: Vec<EvalAtom<'a>>, head: &[QTerm]) -> CompiledPlan<'a> {
    let mut slots: FxHashMap<Var, u32> = FxHashMap::default();
    let mut cterm = |t: &QTerm| -> CTerm {
        match t {
            QTerm::Const(c) => CTerm::Const(*c),
            QTerm::Var(v) => {
                let next = slots.len() as u32;
                CTerm::Slot(*slots.entry(*v).or_insert(next))
            }
        }
    };
    let atoms = atoms
        .into_iter()
        .map(|a| match a {
            EvalAtom::Store { atom } => CAtom::Store {
                terms: [
                    cterm(&atom.terms()[0]),
                    cterm(&atom.terms()[1]),
                    cterm(&atom.terms()[2]),
                ],
            },
            EvalAtom::View { table, args } => CAtom::View {
                table,
                terms: args.iter().map(&mut cterm).collect(),
            },
        })
        .collect();
    // Head variables missing from the body get fresh (never-bound) slots;
    // emitting then panics with the same "unsafe query" contract as the
    // legacy core.
    let head = head.iter().map(&mut cterm).collect();
    CompiledPlan {
        atoms,
        head,
        n_slots: slots.len(),
    }
}

/// Runs a compiled plan with pooled scratch memory.
pub(super) fn execute(store: &TripleStore, plan: &CompiledPlan) -> Answers {
    let mut scratch = EvalScratch::take(plan.n_slots, plan.atoms.len());
    recurse(store, plan, &mut scratch, 0);
    let answers = Answers::from_distinct(plan.head.len(), scratch.drain_out());
    scratch.release();
    answers
}

#[inline]
fn value_of(t: CTerm, frame: &[Option<Id>]) -> Option<Id> {
    match t {
        CTerm::Const(c) => Some(c),
        CTerm::Slot(s) => frame[s as usize],
    }
}

#[inline]
fn store_pattern(terms: &[CTerm; 3], frame: &[Option<Id>]) -> StorePattern {
    StorePattern::new(
        value_of(terms[0], frame),
        value_of(terms[1], frame),
        value_of(terms[2], frame),
    )
}

fn recurse(store: &TripleStore, plan: &CompiledPlan, s: &mut EvalScratch, depth: usize) {
    let n = plan.atoms.len();
    if depth == n {
        emit(plan, s);
        return;
    }
    if depth + 1 < n {
        // Adaptive per-depth ordering: pick the remaining atom with the
        // smallest extent under the current bindings. With one atom left
        // the pick is forced and the estimate would duplicate the access
        // path's own lookup, so this block is skipped.
        let mut key = std::mem::take(&mut s.keys[depth]);
        let mut best_pos = depth;
        let mut best_est = usize::MAX;
        for pos in depth..n {
            let est = match &plan.atoms[s.order[pos] as usize] {
                CAtom::Store { terms } => store.match_count(&store_pattern(terms, &s.frame)),
                CAtom::View { table, terms } => {
                    key.clear();
                    let mut mask = 0u64;
                    for (c, t) in terms.iter().enumerate() {
                        if let Some(v) = value_of(*t, &s.frame) {
                            mask |= 1 << c;
                            key.push(v);
                        }
                    }
                    if mask == 0 {
                        table.len()
                    } else {
                        table.index_for_mask(mask).rows_for(&key).len()
                    }
                }
            };
            if est < best_est {
                best_est = est;
                best_pos = pos;
                if est == 0 {
                    break;
                }
            }
        }
        s.keys[depth] = key;
        if best_est == 0 {
            // Some atom has no matches under the current bindings: the
            // whole subtree is dead, whatever order the others run in.
            return;
        }
        s.order.swap(depth, best_pos);
    }
    match &plan.atoms[s.order[depth] as usize] {
        CAtom::Store { terms } => iter_store(store, plan, s, depth, terms),
        CAtom::View { table, terms } => iter_view(store, plan, s, depth, table, terms),
    }
}

/// Iterates a store atom over the matching sorted-index range. The range
/// guarantees every bound column, so per-row work is only binding fresh
/// slots (plus intra-atom repeated-variable checks).
fn iter_store(
    store: &TripleStore,
    plan: &CompiledPlan,
    s: &mut EvalScratch,
    depth: usize,
    terms: &[CTerm; 3],
) {
    let pat = store_pattern(terms, &s.frame);
    let range = store.pattern_range(&pat);
    let mut acts = [ColAction::Skip; 3];
    for c in 0..3 {
        if let CTerm::Slot(slot) = terms[c] {
            if s.frame[slot as usize].is_none() {
                let bound_earlier = acts[..c]
                    .iter()
                    .any(|a| matches!(a, ColAction::Bind(b) if *b == slot));
                acts[c] = if bound_earlier {
                    ColAction::Check(slot)
                } else {
                    ColAction::Bind(slot)
                };
            }
        }
    }
    for t in range.as_slice() {
        apply_row(store, plan, s, depth, &acts, t);
    }
}

/// Iterates a view atom over the cached hash index for its bound-column
/// mask — or directly over the rows when nothing is bound yet.
fn iter_view(
    store: &TripleStore,
    plan: &CompiledPlan,
    s: &mut EvalScratch,
    depth: usize,
    table: &ViewTable,
    terms: &[CTerm],
) {
    let mut key = std::mem::take(&mut s.keys[depth]);
    let mut acts = std::mem::take(&mut s.actions[depth]);
    key.clear();
    acts.clear();
    let mut mask = 0u64;
    for (c, t) in terms.iter().enumerate() {
        if let Some(v) = value_of(*t, &s.frame) {
            mask |= 1 << c;
            key.push(v);
            acts.push(ColAction::Skip);
        } else if let CTerm::Slot(slot) = *t {
            let bound_earlier = acts
                .iter()
                .any(|a| matches!(a, ColAction::Bind(b) if *b == slot));
            acts.push(if bound_earlier {
                ColAction::Check(slot)
            } else {
                ColAction::Bind(slot)
            });
        }
    }
    if mask == 0 {
        // Fully unbound scan: walk the rows directly — no `(0..len)`
        // row-id collection, no hash index.
        for r in 0..table.len() {
            apply_row(store, plan, s, depth, &acts, table.row(r));
        }
    } else {
        let idx = table.index_for_mask(mask);
        for &r in idx.rows_for(&key) {
            apply_row(store, plan, s, depth, &acts, table.row(r as usize));
        }
    }
    s.keys[depth] = key;
    s.actions[depth] = acts;
}

/// Applies one row under the node's precomputed column ops, recursing on
/// success and unwinding the trail either way. No allocation.
#[inline]
fn apply_row(
    store: &TripleStore,
    plan: &CompiledPlan,
    s: &mut EvalScratch,
    depth: usize,
    acts: &[ColAction],
    values: &[Id],
) {
    let mark = s.trail.len();
    let mut ok = true;
    for (c, act) in acts.iter().enumerate() {
        match *act {
            ColAction::Skip => {}
            ColAction::Bind(slot) => {
                s.frame[slot as usize] = Some(values[c]);
                s.trail.push(slot);
            }
            ColAction::Check(slot) => {
                if s.frame[slot as usize] != Some(values[c]) {
                    ok = false;
                    break;
                }
            }
        }
    }
    if ok {
        recurse(store, plan, s, depth + 1);
    }
    while s.trail.len() > mark {
        // xlint: allow(X001, reason = "mark was captured from this trail's len before the pushes")
        let slot = s.trail.pop().expect("trail mark within bounds");
        s.frame[slot as usize] = None;
    }
}

/// Emits the current head tuple into the output staging set.
fn emit(plan: &CompiledPlan, s: &mut EvalScratch) {
    s.tuple.clear();
    for t in &plan.head {
        s.tuple.push(match t {
            CTerm::Const(c) => *c,
            CTerm::Slot(slot) => {
                // xlint: allow(X001, reason = "compile() rejects unsafe queries, so head slots are bound at emit depth")
                s.frame[*slot as usize].expect("unsafe query: unbound head variable")
            }
        });
    }
    s.out.insert(&s.tuple);
}
