//! Reusable evaluator working memory.
//!
//! A maintenance batch or a workload materialization makes thousands of
//! evaluator calls; allocating the bindings frame, trail, key buffers and
//! output staging afresh each time would dominate small joins. Instead a
//! thread-local pool hands out [`EvalScratch`] values whose buffers keep
//! their capacity across calls — the `VisitedPool` idiom: take on entry,
//! clear-and-return on exit, never shrink below the high-water mark (with
//! a cap so one pathological query cannot pin unbounded memory).
//!
//! Output deduplication uses a [`DedupSet`]: a generation-tagged
//! open-addressing table whose clear is a generation bump (O(1), never a
//! bucket sweep). A std `HashSet` here would make `clear`/`drain` cost
//! O(capacity), so a pooled scratch that once served a million-answer
//! query would tax every later microsecond-scale query with a full sweep
//! of the empty table — exactly the `anchored_chain2` regression the
//! bench guards against.

use std::cell::RefCell;
use std::hash::Hasher;

use rdf_model::{FxHasher, Id};

/// One per-column action of the inner join loop, precomputed per recursion
/// node (never per row). Bound columns need no action at all: the access
/// path (index range prefix / hash key) already guarantees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColAction {
    /// Value guaranteed by the access path (index range prefix / hash key).
    Skip,
    /// First occurrence of an unbound variable: bind the slot, trail it.
    Bind(u32),
    /// Later occurrence of a variable bound by an earlier column of this
    /// atom (repeated variable): compare against the just-bound slot.
    Check(u32),
}

/// A distinct-tuple staging set with O(1) clear.
///
/// Open addressing with linear probing; each slot stores the generation it
/// was last written in, the tuple's full hash, and its index in the staged
/// tuple list. Clearing bumps the generation (stale slots read as vacant),
/// and draining hands the staged tuples over by move — neither operation
/// touches the slot array, so a pooled set keeps a large capacity without
/// taxing small queries.
#[derive(Debug)]
pub(crate) struct DedupSet {
    /// Per-slot generation tag; a slot is occupied iff it equals `gen`
    /// (which starts at 1, so zeroed storage reads as vacant).
    gens: Vec<u64>,
    /// Per-slot tuple hash, valid while the generation matches; grows
    /// rehash from here instead of re-hashing tuples.
    hashes: Vec<u64>,
    /// Per-slot index into `tuples`, valid while the generation matches.
    idxs: Vec<u32>,
    gen: u64,
    len: usize,
    /// The staged distinct tuples, in insertion order.
    tuples: Vec<Vec<Id>>,
}

impl Default for DedupSet {
    fn default() -> Self {
        Self {
            gens: Vec::new(),
            hashes: Vec::new(),
            idxs: Vec::new(),
            gen: 1,
            len: 0,
            tuples: Vec::new(),
        }
    }
}

fn hash_ids(tuple: &[Id]) -> u64 {
    let mut h = FxHasher::default();
    for id in tuple {
        h.write_u32(id.0);
    }
    h.finish()
}

impl DedupSet {
    /// Number of distinct tuples staged this generation.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is staged this generation.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a tuple, returning whether it was new this generation.
    pub fn insert(&mut self, tuple: &[Id]) -> bool {
        if (self.len + 1) * 8 >= self.gens.len() * 7 {
            self.grow();
        }
        let hash = hash_ids(tuple);
        let mask = self.gens.len() - 1;
        let mut pos = (hash as usize) & mask;
        loop {
            if self.gens[pos] != self.gen {
                self.gens[pos] = self.gen;
                self.hashes[pos] = hash;
                self.idxs[pos] = self.tuples.len() as u32;
                self.tuples.push(tuple.to_vec());
                self.len += 1;
                return true;
            }
            if self.hashes[pos] == hash && self.tuples[self.idxs[pos] as usize] == tuple {
                return false;
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Takes the staged tuples (insertion order, distinct) and clears the
    /// set by bumping the generation — no slot sweep, whatever the
    /// capacity.
    pub fn drain(&mut self) -> Vec<Vec<Id>> {
        self.gen += 1;
        self.len = 0;
        std::mem::take(&mut self.tuples)
    }

    fn grow(&mut self) {
        let new_cap = (self.gens.len() * 2).max(16);
        let old_gens = std::mem::replace(&mut self.gens, vec![0; new_cap]);
        let old_hashes = std::mem::replace(&mut self.hashes, vec![0; new_cap]);
        let old_idxs = std::mem::replace(&mut self.idxs, vec![0; new_cap]);
        let mask = new_cap - 1;
        for i in 0..old_gens.len() {
            if old_gens[i] == self.gen {
                let mut pos = (old_hashes[i] as usize) & mask;
                while self.gens[pos] == self.gen {
                    pos = (pos + 1) & mask;
                }
                self.gens[pos] = self.gen;
                self.hashes[pos] = old_hashes[i];
                self.idxs[pos] = old_idxs[i];
            }
        }
    }

    /// Slot-array capacity (for the pool's shrink cap).
    fn capacity(&self) -> usize {
        self.gens.len()
    }
}

/// The evaluator's reusable working memory.
#[derive(Debug, Default)]
pub(crate) struct EvalScratch {
    /// Flat bindings frame, indexed by dense variable slot.
    pub frame: Vec<Option<Id>>,
    /// Undo trail: slots bound since entry, unwound on backtrack.
    pub trail: Vec<u32>,
    /// Remaining-atom permutation: `order[depth..]` are the atoms not yet
    /// placed; the adaptive planner swaps its pick into `order[depth]`.
    pub order: Vec<u32>,
    /// Per-depth key buffers for view-index probes.
    pub keys: Vec<Vec<Id>>,
    /// Per-depth column-action buffers for view atoms (store atoms use a
    /// fixed-size stack array).
    pub actions: Vec<Vec<ColAction>>,
    /// Staging buffer for the current head tuple.
    pub tuple: Vec<Id>,
    /// Output staging: distinct answer tuples.
    pub out: DedupSet,
    /// Leapfrog range stacks, flat: cursor `c` keeps its per-trie-depth
    /// `[lo, hi)` windows at `roff(c) + depth` (offsets assigned at setup).
    pub lf_ranges: Vec<[u32; 2]>,
    /// Leapfrog per-cursor position within the current level's window.
    pub lf_pos: Vec<u32>,
}

/// Pooled scratch values per thread; capped so idle threads don't hoard.
const POOL_CAP: usize = 8;
/// Dedup slot arrays larger than this are dropped instead of pooled.
const OUT_SHRINK: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<EvalScratch>> = const { RefCell::new(Vec::new()) };
}

impl EvalScratch {
    /// Takes a scratch value from the thread-local pool (or a fresh one),
    /// sized for `n_slots` variables and `n_atoms` atoms.
    pub fn take(n_slots: usize, n_atoms: usize) -> Self {
        let mut s = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        s.frame.clear();
        s.frame.resize(n_slots, None);
        s.trail.clear();
        s.order.clear();
        s.order.extend(0..n_atoms as u32);
        if s.keys.len() < n_atoms {
            s.keys.resize_with(n_atoms, Vec::new);
        }
        if s.actions.len() < n_atoms {
            s.actions.resize_with(n_atoms, Vec::new);
        }
        s.tuple.clear();
        debug_assert!(s.out.is_empty(), "pooled scratch must be drained");
        s
    }

    /// Drains the staged output (an O(1) handover, not a bucket sweep).
    pub fn drain_out(&mut self) -> Vec<Vec<Id>> {
        self.out.drain()
    }

    /// Returns the scratch to the pool for the next evaluator call.
    pub fn release(mut self) {
        if self.out.capacity() > OUT_SHRINK {
            self.out = DedupSet::default();
        }
        let _ = self.out.drain();
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(self);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_release_reuses_capacity() {
        let mut s = EvalScratch::take(4, 3);
        assert_eq!(s.frame.len(), 4);
        assert_eq!(s.order, vec![0, 1, 2]);
        s.trail.reserve(1000);
        let cap = s.trail.capacity();
        s.release();
        let s2 = EvalScratch::take(2, 1);
        assert!(
            s2.trail.capacity() >= cap,
            "pooled buffers keep their capacity"
        );
        assert_eq!(s2.frame.len(), 2);
        assert_eq!(s2.order, vec![0]);
        s2.release();
    }

    #[test]
    fn drain_out_empties_but_keeps_slots() {
        let mut s = EvalScratch::take(0, 0);
        s.out.insert(&[Id(1)]);
        s.out.insert(&[Id(2)]);
        assert_eq!(s.out.len(), 2);
        let mut tuples = s.drain_out();
        tuples.sort_unstable();
        assert_eq!(tuples, vec![vec![Id(1)], vec![Id(2)]]);
        assert!(s.out.is_empty());
        s.release();
    }

    #[test]
    fn dedup_set_dedups_within_a_generation() {
        let mut d = DedupSet::default();
        assert!(d.insert(&[Id(1), Id(2)]));
        assert!(!d.insert(&[Id(1), Id(2)]));
        assert!(d.insert(&[Id(2), Id(1)]));
        assert_eq!(d.len(), 2);
        let drained = d.drain();
        assert_eq!(drained, vec![vec![Id(1), Id(2)], vec![Id(2), Id(1)]]);
        // A new generation accepts the old tuples again.
        assert!(d.insert(&[Id(1), Id(2)]));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn dedup_set_survives_growth() {
        let mut d = DedupSet::default();
        for i in 0..10_000u32 {
            assert!(d.insert(&[Id(i % 5_000), Id(i)]));
        }
        for i in 0..10_000u32 {
            assert!(!d.insert(&[Id(i % 5_000), Id(i)]), "duplicate {i} slipped");
        }
        assert_eq!(d.len(), 10_000);
        assert_eq!(d.drain().len(), 10_000);
        assert!(d.is_empty());
    }
}
