//! Reusable evaluator working memory.
//!
//! A maintenance batch or a workload materialization makes thousands of
//! evaluator calls; allocating the bindings frame, trail, key buffers and
//! output staging afresh each time would dominate small joins. Instead a
//! thread-local pool hands out [`EvalScratch`] values whose buffers keep
//! their capacity across calls — the `VisitedPool` idiom: take on entry,
//! clear-and-return on exit, never shrink below the high-water mark (with
//! a cap so one pathological query cannot pin unbounded memory).

use std::cell::RefCell;

use rdf_model::{FxHashSet, Id};

/// One per-column action of the inner join loop, precomputed per recursion
/// node (never per row). Bound columns need no action at all: the access
/// path (index range prefix / hash key) already guarantees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColAction {
    /// Value guaranteed by the access path (index range prefix / hash key).
    Skip,
    /// First occurrence of an unbound variable: bind the slot, trail it.
    Bind(u32),
    /// Later occurrence of a variable bound by an earlier column of this
    /// atom (repeated variable): compare against the just-bound slot.
    Check(u32),
}

/// The evaluator's reusable working memory.
#[derive(Debug, Default)]
pub(crate) struct EvalScratch {
    /// Flat bindings frame, indexed by dense variable slot.
    pub frame: Vec<Option<Id>>,
    /// Undo trail: slots bound since entry, unwound on backtrack.
    pub trail: Vec<u32>,
    /// Remaining-atom permutation: `order[depth..]` are the atoms not yet
    /// placed; the adaptive planner swaps its pick into `order[depth]`.
    pub order: Vec<u32>,
    /// Per-depth key buffers for view-index probes.
    pub keys: Vec<Vec<Id>>,
    /// Per-depth column-action buffers for view atoms (store atoms use a
    /// fixed-size stack array).
    pub actions: Vec<Vec<ColAction>>,
    /// Staging buffer for the current head tuple.
    pub tuple: Vec<Id>,
    /// Output staging: distinct answer tuples.
    pub out: FxHashSet<Vec<Id>>,
}

/// Pooled scratch values per thread; capped so idle threads don't hoard.
const POOL_CAP: usize = 8;
/// Output sets larger than this are dropped instead of pooled.
const OUT_SHRINK: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<EvalScratch>> = const { RefCell::new(Vec::new()) };
}

impl EvalScratch {
    /// Takes a scratch value from the thread-local pool (or a fresh one),
    /// sized for `n_slots` variables and `n_atoms` atoms.
    pub fn take(n_slots: usize, n_atoms: usize) -> Self {
        let mut s = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        s.frame.clear();
        s.frame.resize(n_slots, None);
        s.trail.clear();
        s.order.clear();
        s.order.extend(0..n_atoms as u32);
        if s.keys.len() < n_atoms {
            s.keys.resize_with(n_atoms, Vec::new);
        }
        if s.actions.len() < n_atoms {
            s.actions.resize_with(n_atoms, Vec::new);
        }
        s.tuple.clear();
        debug_assert!(s.out.is_empty(), "pooled scratch must be drained");
        s
    }

    /// Drains the staged output (keeping the set's capacity for reuse).
    pub fn drain_out(&mut self) -> Vec<Vec<Id>> {
        self.out.drain().collect()
    }

    /// Returns the scratch to the pool for the next evaluator call.
    pub fn release(mut self) {
        if self.out.capacity() > OUT_SHRINK {
            self.out = FxHashSet::default();
        }
        self.out.clear();
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(self);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_release_reuses_capacity() {
        let mut s = EvalScratch::take(4, 3);
        assert_eq!(s.frame.len(), 4);
        assert_eq!(s.order, vec![0, 1, 2]);
        s.trail.reserve(1000);
        let cap = s.trail.capacity();
        s.release();
        let s2 = EvalScratch::take(2, 1);
        assert!(
            s2.trail.capacity() >= cap,
            "pooled buffers keep their capacity"
        );
        assert_eq!(s2.frame.len(), 2);
        assert_eq!(s2.order, vec![0]);
        s2.release();
    }

    #[test]
    fn drain_out_empties_but_keeps_set() {
        let mut s = EvalScratch::take(0, 0);
        s.out.insert(vec![Id(1)]);
        s.out.insert(vec![Id(2)]);
        let mut tuples = s.drain_out();
        tuples.sort_unstable();
        assert_eq!(tuples, vec![vec![Id(1)], vec![Id(2)]]);
        assert!(s.out.is_empty());
        s.release();
    }
}
