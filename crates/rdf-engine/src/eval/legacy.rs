//! The pre-compiled backtracking join core, preserved as a baseline.
//!
//! This is the evaluator every hot path ran through before the compiled
//! index-native core ([`super::compiled`]) landed: a static greedy atom
//! order, bindings in a `FxHashMap<Var, Id>`, matches **collected into a
//! fresh `Vec<Triple>` at every recursion node**, per-row `unify`
//! dispatch, and view hash indexes rebuilt per evaluator call. It is kept
//! for two jobs:
//!
//! * `use_indexes: false` is the paper's Figure-8 "plain clustered triple
//!   table" baseline (filtering full scans), and doubles as the
//!   structurally-independent reference the differential proptests compare
//!   the compiled core against;
//! * `use_indexes: true` is the collect-per-node core the
//!   `join_throughput` bench reports the compiled core's speedup over.

use rdf_model::{FxHashMap, FxHashSet, Id, StorePattern, TripleStore};
use rdf_query::{QTerm, Var};

use super::EvalAtom;
use crate::answers::Answers;

impl EvalAtom<'_> {
    fn args(&self) -> Vec<QTerm> {
        match self {
            EvalAtom::Store { atom } => atom.terms().to_vec(),
            EvalAtom::View { args, .. } => args.clone(),
        }
    }

    /// Extent estimate ignoring variable bindings, used by the static
    /// ordering.
    fn base_count(&self, store: &TripleStore) -> usize {
        match self {
            EvalAtom::Store { atom } => {
                let [s, p, o] = atom.terms();
                let pat = StorePattern::new(s.as_const(), p.as_const(), o.as_const());
                store.match_count(&pat)
            }
            EvalAtom::View { table, .. } => table.len(),
        }
    }
}

pub(super) fn run(
    store: &TripleStore,
    atoms: Vec<EvalAtom>,
    head: &[QTerm],
    use_indexes: bool,
) -> Answers {
    let order = plan_order(store, &atoms);
    let mut ctx = Ctx {
        store,
        atoms,
        order,
        head,
        bindings: FxHashMap::default(),
        out: FxHashSet::default(),
        view_indexes: FxHashMap::default(),
        use_indexes,
    };
    ctx.recurse(0);
    Answers::from_set(head.len(), ctx.out)
}

/// Greedy static join order: fewest unbound variables first, breaking ties
/// by estimated extent.
fn plan_order(store: &TripleStore, atoms: &[EvalAtom]) -> Vec<usize> {
    let n = atoms.len();
    let counts: Vec<usize> = atoms.iter().map(|a| a.base_count(store)).collect();
    let mut chosen = vec![false; n];
    let mut bound: FxHashSet<Var> = FxHashSet::default();
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(usize, (usize, usize))> = None;
        for (i, atom) in atoms.iter().enumerate() {
            if chosen[i] {
                continue;
            }
            let unbound = atom
                .args()
                .iter()
                .filter_map(|t| t.as_var())
                .collect::<FxHashSet<_>>()
                .iter()
                .filter(|v| !bound.contains(v))
                .count();
            let key = (unbound, counts[i]);
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((i, key));
            }
        }
        // xlint: allow(X001, reason = "the loop runs while unchosen atoms remain, so a best always exists")
        let (i, _) = best.expect("atom available");
        chosen[i] = true;
        for t in atoms[i].args() {
            if let QTerm::Var(v) = t {
                bound.insert(v);
            }
        }
        order.push(i);
    }
    order
}

struct Ctx<'a, 'h> {
    store: &'a TripleStore,
    atoms: Vec<EvalAtom<'a>>,
    order: Vec<usize>,
    head: &'h [QTerm],
    bindings: FxHashMap<Var, Id>,
    out: FxHashSet<Vec<Id>>,
    /// Cache of view hash-indexes, keyed by atom index and bound-column
    /// mask — rebuilt per evaluator call, exactly as the pre-compiled core
    /// did (the resident `ViewTable` caches did not exist yet).
    view_indexes: FxHashMap<(usize, u64), FxHashMap<Vec<Id>, Vec<usize>>>,
    /// Whether triple-table atoms may use the permutation indexes.
    use_indexes: bool,
}

impl Ctx<'_, '_> {
    fn recurse(&mut self, depth: usize) {
        if depth == self.order.len() {
            let tuple: Vec<Id> = self
                .head
                .iter()
                .map(|t| match t {
                    QTerm::Const(c) => *c,
                    QTerm::Var(v) => *self
                        .bindings
                        .get(v)
                        // xlint: allow(X001, reason = "callers evaluate safe queries whose head vars occur in the body")
                        .expect("unsafe query: unbound head variable"),
                })
                .collect();
            self.out.insert(tuple);
            return;
        }
        let atom_idx = self.order[depth];
        match &self.atoms[atom_idx] {
            EvalAtom::Store { atom } => {
                let atom = *atom;
                let [s, p, o] = atom.terms();
                let slot = |t: &QTerm| match t {
                    QTerm::Const(c) => Some(*c),
                    QTerm::Var(v) => self.bindings.get(v).copied(),
                };
                let pat = StorePattern::new(slot(s), slot(p), slot(o));
                // Collect matches first: the borrow of `store` is fine, but
                // `for_each_match` borrowing `self` while recursing is not.
                let matches = if self.use_indexes {
                    self.store.matching(&pat)
                } else {
                    self.store
                        .triples()
                        .iter()
                        .copied()
                        .filter(|&t| pat.matches(t))
                        .collect()
                };
                for triple in matches {
                    let mut trail: Vec<Var> = Vec::new();
                    if self.unify(&atom.terms()[..], &triple[..], &mut trail) {
                        self.recurse(depth + 1);
                    }
                    for v in trail {
                        self.bindings.remove(&v);
                    }
                }
            }
            EvalAtom::View { table, args } => {
                let table = *table;
                let args = args.clone();
                let mut bound_cols: Vec<usize> = Vec::new();
                let mut key: Vec<Id> = Vec::new();
                let mut mask = 0u64;
                for (c, t) in args.iter().enumerate() {
                    let val = match t {
                        QTerm::Const(cst) => Some(*cst),
                        QTerm::Var(v) => self.bindings.get(v).copied(),
                    };
                    if let Some(val) = val {
                        bound_cols.push(c);
                        key.push(val);
                        mask |= 1 << c;
                    }
                }
                let row_ids: Vec<usize> = if bound_cols.is_empty() {
                    (0..table.len()).collect()
                } else {
                    let idx = self
                        .view_indexes
                        .entry((atom_idx, mask))
                        .or_insert_with(|| {
                            let mut idx: FxHashMap<Vec<Id>, Vec<usize>> = FxHashMap::default();
                            for r in 0..table.len() {
                                let row = table.row(r);
                                let key: Vec<Id> = bound_cols.iter().map(|&c| row[c]).collect();
                                idx.entry(key).or_default().push(r);
                            }
                            idx
                        });
                    idx.get(&key).cloned().unwrap_or_default()
                };
                for r in row_ids {
                    let row: Vec<Id> = table.row(r).to_vec();
                    let mut trail: Vec<Var> = Vec::new();
                    if self.unify(&args, &row, &mut trail) {
                        self.recurse(depth + 1);
                    }
                    for v in trail {
                        self.bindings.remove(&v);
                    }
                }
            }
        }
    }

    /// Extends the bindings so that `args` matches `values`; handles
    /// repeated variables within the atom. Newly bound vars go on `trail`.
    fn unify(&mut self, args: &[QTerm], values: &[Id], trail: &mut Vec<Var>) -> bool {
        for (t, &val) in args.iter().zip(values.iter()) {
            match t {
                QTerm::Const(c) => {
                    if *c != val {
                        return false;
                    }
                }
                QTerm::Var(v) => match self.bindings.get(v) {
                    Some(&prev) => {
                        if prev != val {
                            return false;
                        }
                    }
                    None => {
                        self.bindings.insert(*v, val);
                        trail.push(*v);
                    }
                },
            }
        }
        true
    }
}
