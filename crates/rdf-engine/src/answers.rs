//! Query answers under set semantics.

use rdf_model::{FxHashSet, Id};

/// A set of answer tuples, kept sorted for deterministic iteration and
/// cheap equality.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Answers {
    arity: usize,
    tuples: Vec<Vec<Id>>,
}

impl Answers {
    /// Builds from a deduplicated set of tuples.
    pub fn from_set(arity: usize, set: FxHashSet<Vec<Id>>) -> Self {
        let mut tuples: Vec<Vec<Id>> = set.into_iter().collect();
        tuples.sort_unstable();
        Self { arity, tuples }
    }

    /// Builds from possibly-duplicated tuples.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Vec<Id>>) -> Self {
        let set: FxHashSet<Vec<Id>> = tuples.into_iter().collect();
        Self::from_set(arity, set)
    }

    /// Builds from tuples the caller guarantees are already distinct
    /// (e.g. drained from a dedup set) — skips the re-hashing pass that
    /// [`Answers::from_tuples`] would pay.
    pub fn from_distinct(arity: usize, mut tuples: Vec<Vec<Id>>) -> Self {
        tuples.sort_unstable();
        debug_assert!(
            tuples.windows(2).all(|w| w[0] != w[1]),
            "from_distinct caller passed duplicates"
        );
        Self { arity, tuples }
    }

    /// Number of head columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no answers.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, sorted.
    pub fn tuples(&self) -> &[Vec<Id>] {
        &self.tuples
    }

    /// Membership test (binary search).
    pub fn contains(&self, tuple: &[Id]) -> bool {
        self.tuples
            .binary_search_by(|t| t.as_slice().cmp(tuple))
            .is_ok()
    }

    /// Merges two answer sets (set union); arities must agree.
    pub fn union(self, other: Answers) -> Answers {
        debug_assert_eq!(self.arity, other.arity);
        let mut set: FxHashSet<Vec<Id>> = self.tuples.into_iter().collect();
        set.extend(other.tuples);
        Answers::from_set(other.arity, set)
    }

    /// Consumes into the sorted tuple list.
    pub fn into_tuples(self) -> Vec<Vec<Id>> {
        self.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let a = Answers::from_tuples(
            2,
            vec![vec![Id(2), Id(1)], vec![Id(1), Id(1)], vec![Id(2), Id(1)]],
        );
        assert_eq!(a.len(), 2);
        assert_eq!(a.tuples()[0], vec![Id(1), Id(1)]);
        assert!(a.contains(&[Id(2), Id(1)]));
        assert!(!a.contains(&[Id(9), Id(9)]));
    }

    #[test]
    fn union_merges() {
        let a = Answers::from_tuples(1, vec![vec![Id(1)]]);
        let b = Answers::from_tuples(1, vec![vec![Id(1)], vec![Id(2)]]);
        let u = a.union(b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn boolean_answers() {
        // Arity-0: at most one tuple (the empty tuple).
        let yes = Answers::from_tuples(0, vec![vec![]]);
        let no = Answers::from_tuples(0, Vec::<Vec<Id>>::new());
        assert_eq!(yes.len(), 1);
        assert!(no.is_empty());
    }
}
