//! Property tests for the evaluation engine: the index-backed evaluator,
//! the scan-only evaluator and a reference naive join must all agree; view
//! rewritings of a decomposed query must equal direct evaluation; the
//! maintenance deltas must keep views equal to rematerialization.

use proptest::prelude::*;
use rdf_engine::maintain::MaintainedView;
use rdf_engine::{evaluate, evaluate_with, EvalOptions};
use rdf_model::{Id, TripleStore};
use rdf_query::{Atom, ConjunctiveQuery, QTerm, Var};

fn triples_strategy() -> impl Strategy<Value = Vec<[u32; 3]>> {
    prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..80)
}

/// Random 1–3 atom connected-ish queries over the same vocabulary.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (
        prop_oneof![(0u32..3).prop_map(Some), Just(None)],
        20u32..24,
        prop_oneof![
            (0u32..3).prop_map(Some),
            Just(None),
            (0u32..10).prop_map(|c| Some(c + 100))
        ],
    );
    prop::collection::vec(atom, 1..3).prop_map(|atoms| {
        let atoms: Vec<Atom> = atoms
            .into_iter()
            .enumerate()
            .map(|(i, (s, p, o))| {
                let s = match s {
                    Some(v) => QTerm::Var(Var(v)),
                    None => QTerm::Var(Var(3 + i as u32)),
                };
                let o = match o {
                    Some(c) if c >= 100 => QTerm::Const(Id(c - 100)),
                    Some(v) => QTerm::Var(Var(v)),
                    None => QTerm::Var(Var(6 + i as u32)),
                };
                Atom([s, QTerm::Const(Id(p)), o])
            })
            .collect();
        let mut head = Vec::new();
        for a in &atoms {
            for v in a.vars() {
                if !head.contains(&QTerm::Var(v)) {
                    head.push(QTerm::Var(v));
                }
            }
        }
        ConjunctiveQuery::new(head, atoms)
    })
}

fn store_from(triples: &[[u32; 3]]) -> TripleStore {
    let mut store = TripleStore::new();
    for t in triples {
        store.insert([Id(t[0]), Id(t[1]), Id(t[2])]);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexed_and_scan_only_agree(
        triples in triples_strategy(),
        q in query_strategy(),
    ) {
        let store = store_from(&triples);
        let a = evaluate(&store, &q);
        let b = evaluate_with(&store, &q, &EvalOptions { use_indexes: false });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn maintenance_equals_rematerialization(
        base in triples_strategy(),
        feed in prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..20),
        q in query_strategy(),
    ) {
        let mut store = store_from(&base);
        let mut view = MaintainedView::new(&store, q.clone());
        for t in feed {
            let t = [Id(t[0]), Id(t[1]), Id(t[2])];
            if store.insert(t) {
                view.apply_insert(&store, t);
            }
        }
        let fresh = evaluate(&store, &q);
        prop_assert_eq!(view.to_answers(), fresh);
    }

    #[test]
    fn batched_maintenance_equals_rematerialization(
        base in triples_strategy(),
        batches in prop::collection::vec(
            (any::<bool>(), prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..12)),
            1..8,
        ),
        q in query_strategy(),
    ) {
        // Random interleaved insert/delete batches through the
        // set-at-a-time delta joins: after every batch the maintained view
        // must equal a from-scratch rematerialization.
        let mut store = store_from(&base);
        let mut view = MaintainedView::new(&store, q.clone());
        for (is_delete, raw) in batches {
            let batch: Vec<[Id; 3]> = raw
                .into_iter()
                .map(|t| [Id(t[0]), Id(t[1]), Id(t[2])])
                .collect();
            if is_delete {
                // Prepare while the doomed triples are still stored (the
                // batch may contain absent triples; they are harmless).
                let delta = view.prepare_delete_batch(&store, &batch);
                store.remove_batch(&batch);
                view.commit_delete_batch(&store, &delta);
            } else {
                let added = store.insert_batch(&batch);
                view.apply_insert_batch(&store, &added);
            }
            prop_assert_eq!(view.to_answers(), evaluate(&store, &q));
        }
    }

    #[test]
    fn batched_and_per_triple_maintenance_agree(
        base in triples_strategy(),
        feed in prop::collection::vec([0u32..10, 20u32..24, 0u32..10], 1..20),
        q in query_strategy(),
    ) {
        // One delta-set join pass must produce the same view as per-triple
        // application, with no more delta tuples.
        let feed: Vec<[Id; 3]> = feed
            .into_iter()
            .map(|t| [Id(t[0]), Id(t[1]), Id(t[2])])
            .collect();

        let mut batched_store = store_from(&base);
        let mut batched = MaintainedView::new(&batched_store, q.clone());
        let added = batched_store.insert_batch(&feed);
        let bstats = batched.apply_insert_batch(&batched_store, &added);

        let mut seq_store = store_from(&base);
        let mut seq = MaintainedView::new(&seq_store, q.clone());
        let mut pstats = rdf_engine::MaintenanceStats::default();
        for &t in &feed {
            if seq_store.insert(t) {
                pstats.merge(seq.apply_insert(&seq_store, t));
            }
        }
        prop_assert_eq!(batched.to_answers(), seq.to_answers());
        prop_assert_eq!(bstats.added, pstats.added);
        prop_assert!(
            bstats.delta_tuples <= pstats.delta_tuples,
            "batched {} vs per-triple {}",
            bstats.delta_tuples,
            pstats.delta_tuples
        );
        prop_assert_eq!(batched.to_answers(), evaluate(&batched_store, &q));
    }

    #[test]
    fn answers_satisfy_the_query(
        triples in triples_strategy(),
        q in query_strategy(),
    ) {
        // Soundness spot-check: substituting each answer into the head and
        // re-evaluating the fully-bound query must succeed.
        let store = store_from(&triples);
        let answers = evaluate(&store, &q);
        for tuple in answers.tuples().iter().take(5) {
            let mut map = rdf_model::FxHashMap::default();
            for (term, value) in q.head.iter().zip(tuple.iter()) {
                if let QTerm::Var(v) = term {
                    map.insert(*v, QTerm::Const(*value));
                }
            }
            let bound = q.substitute(&map);
            let res = evaluate(&store, &bound);
            prop_assert!(!res.is_empty(), "answer {tuple:?} must satisfy the query");
        }
    }
}
